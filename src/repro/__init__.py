"""Reproduction of "An Economic Model for Self-Tuned Cloud Caching" (ICDE 2009).

The package implements the paper's self-tuned cache economy (budget-function
negotiation, per-structure regret, investment, amortised cost model) together
with every substrate the evaluation needs: a TPC-H-like catalog scaled to
2.5 TB, an SDSS-like evolving workload generator, an analytic execution cost
model, a cache manager, the bypass-yield baseline, and an event-driven
simulator.

Quickstart::

    from repro import CloudSystem, WorkloadGenerator, WorkloadSpec, run_scheme

    system = CloudSystem()
    workload = WorkloadGenerator(WorkloadSpec(query_count=500)).generate()
    result = run_scheme(system.scheme("econ-cheap"), workload)
    print(result.summary.operating_cost, result.summary.mean_response_time_s)
"""

from repro.system import CloudSystem, CloudSystemConfig
from repro.costmodel.config import CostModelConfig
from repro.pricing.catalog import ResourcePricing, ec2_2009_pricing
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query, QueryTemplate
from repro.simulator.simulation import CloudSimulation, SimulationConfig, run_scheme
from repro.simulator.results import SimulationResult
from repro.policies.factory import SCHEME_NAMES, build_scheme
from repro.sharding import ShardCoordinator, TenantPartitioner
from repro.distcache import (
    DistCacheRunner,
    StructurePartitioner,
    run_partitioned_cell,
)

__version__ = "0.2.0"

__all__ = [
    "CloudSystem",
    "CloudSystemConfig",
    "CostModelConfig",
    "ResourcePricing",
    "ec2_2009_pricing",
    "WorkloadGenerator",
    "WorkloadSpec",
    "Query",
    "QueryTemplate",
    "CloudSimulation",
    "SimulationConfig",
    "SimulationResult",
    "run_scheme",
    "build_scheme",
    "SCHEME_NAMES",
    "ShardCoordinator",
    "TenantPartitioner",
    "DistCacheRunner",
    "StructurePartitioner",
    "run_partitioned_cell",
    "__version__",
]
