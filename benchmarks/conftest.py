"""Shared fixtures for the benchmark harness.

The figure benchmarks share a single evaluation grid per session so that the
expensive simulations run once; the per-benchmark timings then measure a
single representative cell. Every benchmark also writes the table it
regenerates to ``benchmarks/output/`` so the series can be inspected after a
``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.config import ExperimentProfile  # noqa: E402
from repro.experiments.runner import run_grid  # noqa: E402

#: The profile the figure benchmarks run: large enough to show the paper's
#: qualitative shapes, small enough to finish in a couple of minutes.
FIGURE_BENCH_PROFILE = ExperimentProfile(
    name="figure-bench",
    query_count=3_000,
    interarrival_times_s=(1.0, 10.0, 30.0, 60.0),
    disk_duration_scale=10.0,
)

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")


@pytest.fixture(scope="session")
def figure_grid():
    """The shared (scheme x interval) grid for the figure benchmarks."""
    return run_grid(FIGURE_BENCH_PROFILE)


@pytest.fixture(scope="session")
def output_dir():
    """Directory where benchmark reports are written."""
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    return OUTPUT_DIR


def write_report(directory: str, filename: str, content: str) -> str:
    """Write a benchmark report file and return its path."""
    path = os.path.join(directory, filename)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(content + "\n")
    return path
