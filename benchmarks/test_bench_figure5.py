"""Benchmark: regenerate Figure 5 (average response time per scheme).

The benchmarked unit is one simulation cell (econ-cheap at the 1-second
inter-arrival time); the full series comes from the shared session grid and
is written to ``benchmarks/output/figure5.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import FIGURE_BENCH_PROFILE, write_report
from repro.experiments.figure5 import figure5_rows, figure5_table
from repro.experiments.runner import build_system, run_cell


def test_figure5_response_times(benchmark, figure_grid, output_dir):
    system = build_system(FIGURE_BENCH_PROFILE)
    cell_profile = FIGURE_BENCH_PROFILE.with_overrides(query_count=400)

    def run_one_cell():
        return run_cell(system, cell_profile, "econ-cheap", 1.0)

    cell = benchmark(run_one_cell)
    assert cell.summary.mean_response_time_s > 0

    table = figure5_table(grid=figure_grid)
    write_report(output_dir, "figure5.txt", table)
    print()
    print(table)

    rows = figure5_rows(figure_grid)
    schemes = figure_grid.profile.schemes
    by_interval = {row[0]: dict(zip(schemes, row[1:])) for row in rows}

    # Shape checks mirroring Section VII-B:
    # indexes cut econ-cheap's response time well below econ-col's.
    assert by_interval[1.0]["econ-cheap"] < 0.75 * by_interval[1.0]["econ-col"]
    # econ-fast is at least as fast as econ-cheap.
    assert by_interval[1.0]["econ-fast"] <= by_interval[1.0]["econ-cheap"] * 1.001
    # bypass and econ-col keep their response times as the interval grows.
    assert abs(by_interval[60.0]["bypass"] - by_interval[1.0]["bypass"]) \
        <= 0.25 * by_interval[1.0]["bypass"]
