"""Unit tests for the analytic query model."""

import pytest

from repro.errors import WorkloadError
from repro.workload.query import Predicate, PredicateKind, Query, QueryTemplate
from repro.workload.templates import template_by_name


def make_template(**overrides):
    defaults = dict(
        name="probe",
        table_name="lineitem",
        predicates=(
            Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 0.1),
            Predicate("lineitem", "l_shipmode", PredicateKind.EQUALITY, 0.2),
        ),
        projection_columns=("l_extendedprice", "l_discount"),
        order_by_columns=("l_shipdate",),
        aggregation_factor=0.5,
    )
    defaults.update(overrides)
    return QueryTemplate(**defaults)


class TestPredicate:
    def test_qualified_column(self):
        predicate = Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 0.1)
        assert predicate.qualified_column == "lineitem.l_shipdate"

    def test_rejects_bad_selectivity(self):
        with pytest.raises(WorkloadError):
            Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 0.0)
        with pytest.raises(WorkloadError):
            Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 1.5)

    def test_resolved_selectivity_prefers_explicit_value(self, estimator):
        predicate = Predicate("lineitem", "l_shipmode", PredicateKind.EQUALITY, 0.25)
        assert predicate.resolved_selectivity(estimator) == 0.25

    def test_resolved_selectivity_falls_back_to_estimator(self, estimator):
        predicate = Predicate("lineitem", "l_shipmode", PredicateKind.EQUALITY)
        assert predicate.resolved_selectivity(estimator) == pytest.approx(1 / 7, rel=0.01)

    def test_with_selectivity_copies(self):
        predicate = Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 0.1)
        updated = predicate.with_selectivity(0.3)
        assert updated.selectivity == 0.3
        assert predicate.selectivity == 0.1


class TestQueryTemplate:
    def test_touched_columns_deduplicate_and_preserve_order(self):
        template = make_template()
        assert template.touched_columns == (
            "l_shipdate", "l_shipmode", "l_extendedprice", "l_discount",
        )

    def test_predicate_columns_only_include_fact_table(self):
        template = make_template(predicates=(
            Predicate("lineitem", "l_shipdate", PredicateKind.RANGE, 0.1),
            Predicate("orders", "o_orderdate", PredicateKind.RANGE, 0.2),
        ))
        assert template.predicate_columns == ("l_shipdate",)

    def test_validate_against_schema(self, schema):
        make_template().validate_against(schema)

    def test_validate_rejects_unknown_column(self, schema):
        template = make_template(projection_columns=("no_such_column",))
        with pytest.raises(Exception):
            template.validate_against(schema)

    def test_rejects_empty_projection(self):
        with pytest.raises(WorkloadError):
            make_template(projection_columns=())

    def test_rejects_bad_aggregation(self):
        with pytest.raises(WorkloadError):
            make_template(aggregation_factor=0.0)

    def test_instantiate_applies_overrides(self):
        template = make_template()
        query = template.instantiate(
            query_id=7, arrival_time=12.0,
            selectivities={"lineitem.l_shipdate": 0.01},
            budget_scale=1.5,
        )
        assert query.query_id == 7
        assert query.arrival_time == 12.0
        assert query.budget_scale == 1.5
        by_column = {p.qualified_column: p.selectivity for p in query.predicates}
        assert by_column["lineitem.l_shipdate"] == 0.01
        assert by_column["lineitem.l_shipmode"] == 0.2


class TestQuery:
    def test_rejects_negative_ids_and_times(self):
        template = make_template()
        with pytest.raises(WorkloadError):
            template.instantiate(query_id=-1, arrival_time=0.0)
        with pytest.raises(WorkloadError):
            template.instantiate(query_id=0, arrival_time=-1.0)

    def test_fact_selectivity_ignores_join_predicates(self, estimator):
        query = template_by_name("q3_shipping_priority").instantiate(0, 0.0)
        fact = query.fact_selectivity(estimator)
        full = query.selectivity(estimator)
        assert full < fact  # join filters only shrink the result

    def test_result_bytes_scale_with_aggregation(self, estimator):
        template = make_template()
        heavy = template.instantiate(0, 0.0)
        light = make_template(aggregation_factor=0.05).instantiate(1, 0.0)
        assert light.result_bytes(estimator) < heavy.result_bytes(estimator)

    def test_result_bytes_positive_even_for_tiny_aggregates(self, estimator):
        query = template_by_name("q6_forecast_revenue").instantiate(0, 0.0)
        assert query.result_bytes(estimator) >= 1

    def test_scanned_bytes_includes_join_tables(self, estimator, schema):
        query = template_by_name("q14_promotion_effect").instantiate(0, 0.0)
        fact_only = estimator.scanned_bytes("lineitem", query.touched_columns)
        assert query.scanned_bytes(estimator) == fact_only + schema.table("part").size_bytes

    def test_scanned_bytes_with_column_subset(self, estimator):
        query = make_template(join_tables=()).instantiate(0, 0.0)
        subset = query.scanned_bytes(estimator, column_names=["l_shipdate"])
        full = query.scanned_bytes(estimator)
        assert subset < full

    def test_touched_column_set_matches_tuple(self):
        query = make_template().instantiate(0, 0.0)
        assert query.touched_column_set == frozenset(query.touched_columns)
