"""Plan enumeration.

For every incoming query the enumerator produces the candidate plan set
``PQ``: the back-end plan (always available), cache column-scan plans, and —
when the scheme permits — index plans and multi-node variants. Which of
these plans fall into ``PQexist`` versus ``PQpos`` is determined later by
the economy against the current cache contents; the enumerator holds no
cache state, only per-template memos of the structural hot path (which
columns a plan needs, which candidate indexes are relevant) — those
depend on the template alone, never on the cache or the instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.costmodel.execution import ExecutionCostModel
from repro.errors import PlanningError
from repro.planner.plan import PlanKind, QueryPlan, required_columns_for
from repro.structures.base import CacheStructure
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode
from repro.workload.query import Query


@dataclass(frozen=True)
class EnumeratorConfig:
    """What kinds of plans a caching scheme is allowed to consider.

    Attributes:
        allow_index_plans: whether plans may probe cached indexes
            (econ-cheap and econ-fast only).
        max_extra_nodes: how many CPU nodes beyond the always-on node plans
            may use (0 disables multi-node plans).
        allow_backend_plan: whether the back-end plan is offered; the paper
            always offers it ("the user ... accepts query execution in the
            back-end"), so disabling it is only useful in unit tests.
        max_candidate_indexes_per_query: cap on how many candidate indexes
            are turned into plans for a single query, keeping the plan set
            (and the skyline input) small.
    """

    allow_index_plans: bool = True
    max_extra_nodes: int = 2
    allow_backend_plan: bool = True
    max_candidate_indexes_per_query: int = 4

    def __post_init__(self) -> None:
        if self.max_extra_nodes < 0:
            raise PlanningError("max_extra_nodes must be non-negative")
        if self.max_candidate_indexes_per_query < 0:
            raise PlanningError(
                "max_candidate_indexes_per_query must be non-negative"
            )


class PlanEnumerator:
    """Enumerates and cost-annotates the candidate plans for a query."""

    def __init__(self, execution_model: ExecutionCostModel,
                 candidate_indexes: Sequence[CachedIndex] = (),
                 config: EnumeratorConfig = EnumeratorConfig()) -> None:
        self._execution = execution_model
        self._candidate_indexes = tuple(candidate_indexes)
        self._config = config
        # Per-template memo of the structural hot path: which columns a
        # cache-resident plan needs and which candidate indexes are relevant
        # depend only on the template (instances vary in selectivities, not
        # in the columns they touch), yet were recomputed for every query.
        # The memos are keyed by bare template name: a caller that reuses a
        # template name against a different catalog or candidate pool must
        # call :meth:`invalidate` or the stale entry wins.
        self._columns_by_template: dict = {}
        self._indexes_by_template: dict = {}
        self._generation = 0

    @property
    def config(self) -> EnumeratorConfig:
        """The enumeration capabilities."""
        return self._config

    @property
    def generation(self) -> int:
        """Monotonic counter bumped by every :meth:`invalidate` call.

        Derived caches (e.g. the per-template plan tables of
        :mod:`repro.planner.plan_table`) record the generation they were
        built against and rebuild when it moves, so one invalidation
        propagates through every layer keyed on this enumerator.
        """
        return self._generation

    def invalidate(self) -> int:
        """Drop the per-template memos and bump :attr:`generation`.

        Call after swapping the catalog, statistics, or candidate-index
        pool under a live enumerator — most commonly when a new schema
        reuses template names whose column sets changed. Returns the new
        generation so callers can stamp their own derived state.
        """
        self._columns_by_template.clear()
        self._indexes_by_template.clear()
        self._generation += 1
        return self._generation

    @property
    def candidate_indexes(self) -> Tuple[CachedIndex, ...]:
        """The candidate-index pool plans may draw from."""
        return self._candidate_indexes

    # -- enumeration -----------------------------------------------------------

    def enumerate(self, query: Query) -> List[QueryPlan]:
        """All candidate plans for ``query``, in no particular order."""
        plans: List[QueryPlan] = []
        if self._config.allow_backend_plan:
            plans.append(self._backend_plan(query))
        required_columns = self._required_columns(query)
        relevant_indexes = (self._memoized_relevant_indexes(query)
                            if self._config.allow_index_plans else ())
        for node_count in self._node_counts():
            plans.append(self._column_scan_plan(query, required_columns, node_count))
            for index in relevant_indexes:
                plans.append(
                    self._index_plan(query, required_columns, index, node_count)
                )
        return plans

    # -- plan constructors --------------------------------------------------------

    def _backend_plan(self, query: Query) -> QueryPlan:
        execution = self._execution.backend_execution(query)
        return QueryPlan(query=query, kind=PlanKind.BACKEND, execution=execution)

    def _column_scan_plan(self, query: Query,
                          required_columns: Tuple[CacheStructure, ...],
                          node_count: int) -> QueryPlan:
        execution = self._execution.cache_execution(
            query, index=None, node_count=node_count
        )
        structures = required_columns + self._node_structures(node_count)
        return QueryPlan(
            query=query,
            kind=PlanKind.CACHE_COLUMN_SCAN,
            execution=execution,
            structures=structures,
            node_count=node_count,
        )

    def _index_plan(self, query: Query,
                    required_columns: Tuple[CacheStructure, ...],
                    index: CachedIndex, node_count: int) -> QueryPlan:
        execution = self._execution.cache_execution(
            query, index=index, node_count=node_count
        )
        structures = required_columns + (index,) + self._node_structures(node_count)
        return QueryPlan(
            query=query,
            kind=PlanKind.CACHE_INDEX,
            execution=execution,
            structures=structures,
            index=index,
            node_count=node_count,
        )

    # -- helpers ---------------------------------------------------------------------

    def _node_counts(self) -> Iterable[int]:
        return range(1, self._config.max_extra_nodes + 2)

    def _required_columns(self, query: Query) -> Tuple[CacheStructure, ...]:
        """Memoized :func:`required_columns_for`, keyed by template name.

        Queries instantiated from the same template touch the same columns
        (only selectivities differ), so the column set is computed once per
        template instead of once per query.
        """
        cached = self._columns_by_template.get(query.template_name)
        if cached is None:
            cached = required_columns_for(query)
            self._columns_by_template[query.template_name] = cached
        return cached

    def _memoized_relevant_indexes(self, query: Query) -> Tuple[CachedIndex, ...]:
        """Memoized :meth:`_relevant_indexes`, keyed by template name.

        Relevance depends only on the template's predicated columns, yet
        the unmemoized path filters and sorts the whole candidate pool for
        every query.
        """
        cached = self._indexes_by_template.get(query.template_name)
        if cached is None:
            cached = tuple(self._relevant_indexes(query))
            self._indexes_by_template[query.template_name] = cached
        return cached

    def _node_structures(self, node_count: int) -> Tuple[CacheStructure, ...]:
        """Extra-node structures a plan with ``node_count`` total nodes needs."""
        return tuple(CpuNode(ordinal) for ordinal in range(1, node_count))

    def _relevant_indexes(self, query: Query) -> List[CachedIndex]:
        """Candidate indexes whose leading column is predicated by the query.

        The most selective candidates (fewest key columns first, so probing
        stays cheap) are preferred when the per-query cap truncates the list.
        """
        relevant = [
            index for index in self._candidate_indexes
            if any(index.serves_predicate_on(query.table_name, column)
                   for column in query.predicate_columns)
        ]
        relevant.sort(key=lambda index: (len(index.column_names), index.key))
        cap = self._config.max_candidate_indexes_per_query
        return relevant[:cap] if cap else []
