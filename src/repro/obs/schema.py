"""Tiny declarative schema validation for bench and report JSON.

No external schema library is used (the container pins its dependency
set); instead each document kind declares the fields it must carry as
``(name, allowed types, required)`` triples plus an optional per-kind
check. Validation is **fail-soft by design**: it returns a list of
problem strings rather than raising, so the report pipeline can ingest a
directory containing missing or legacy bench files and render what it can
with warnings — while CI, which controls its inputs, treats a non-empty
problem list as a failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple


@dataclass(frozen=True)
class SchemaField:
    """One required (or optional) field of a JSON document."""

    name: str
    types: Tuple[type, ...]
    required: bool = True

    def problems(self, document: Mapping[str, object]) -> List[str]:
        """Validation problems of this field against ``document``."""
        if self.name not in document:
            if self.required:
                return [f"missing required field {self.name!r}"]
            return []
        value = document[self.name]
        # bool is an int subclass: an int-typed field must not silently
        # accept True/False, and a bool-typed field must not accept 1/0.
        if bool not in self.types and isinstance(value, bool):
            pass
        elif isinstance(value, self.types):
            if bool in self.types and not isinstance(value, bool):
                return [f"field {self.name!r} must be a bool, got "
                        f"{type(value).__name__}"]
            return []
        expected = "/".join(t.__name__ for t in self.types)
        return [f"field {self.name!r} must be {expected}, got "
                f"{type(value).__name__}"]


#: Fields every BENCH_*.json shares, whatever the benchmark.
GENERIC_BENCH_FIELDS: Tuple[SchemaField, ...] = (
    SchemaField("benchmark", (str,)),
    SchemaField("python", (str,)),
    SchemaField("seed", (int,)),
    SchemaField("runs", (list,)),
)

#: Per-benchmark extra fields (keyed by the ``benchmark`` value).
BENCH_EXTRA_FIELDS: Dict[str, Tuple[SchemaField, ...]] = {
    "sharding": (
        SchemaField("scheme", (str,)),
        SchemaField("tenant_count", (int,)),
        SchemaField("query_count", (int,)),
        SchemaField("unsharded", (dict,)),
    ),
    "distcache": (
        SchemaField("scheme", (str,)),
        SchemaField("tenant_count", (int,)),
        SchemaField("query_count", (int,)),
        SchemaField("unsharded", (dict,)),
    ),
    "placement": (
        SchemaField("scheme", (str,)),
        SchemaField("tenant_count", (int,)),
        SchemaField("query_count", (int,)),
        SchemaField("partitions", (int,)),
        SchemaField("handoff_threshold", (int, float)),
    ),
    "planner": (
        SchemaField("scheme", (str,)),
        SchemaField("query_count", (int,)),
        SchemaField("repetitions", (int,)),
        SchemaField("outcomes_identical", (bool,)),
        SchemaField("speedup", (dict,)),
    ),
    "shocks": (
        SchemaField("tenants", (int,)),
        SchemaField("query_count", (int,)),
        SchemaField("grammar", (str,)),
        SchemaField("conservation_exact", (bool,)),
    ),
}

#: Per-benchmark gate: a predicate over the document that must hold for
#: the perf history to count as healthy (rendered in the summary table).
BENCH_GATES: Dict[str, Tuple[str, Callable[[Mapping[str, object]], bool]]] = {
    "sharding": ("byte_identical",
                 lambda doc: all(run.get("byte_identical", True)
                                 for run in doc.get("runs", ())
                                 if isinstance(run, Mapping))),
    "distcache": ("runs_recorded",
                  lambda doc: bool(doc.get("runs"))),
    "placement": ("handoffs_applied",
                  lambda doc: any(run.get("handoffs", 0) > 0
                                  for run in doc.get("runs", ())
                                  if isinstance(run, Mapping)
                                  and run.get("placement") == "adaptive")),
    "planner": ("outcomes_identical",
                lambda doc: doc.get("outcomes_identical") is True),
    "shocks": ("conservation_exact",
               lambda doc: doc.get("conservation_exact") is True),
}


def validate_fields(document: object,
                    fields: Sequence[SchemaField],
                    context: str = "document") -> List[str]:
    """Validate ``document`` against ``fields``; return problem strings."""
    if not isinstance(document, Mapping):
        return [f"{context} is not a JSON object "
                f"(got {type(document).__name__})"]
    problems: List[str] = []
    for schema_field in fields:
        problems.extend(schema_field.problems(document))
    return problems


def validate_bench(document: object,
                   expected_kind: Optional[str] = None) -> List[str]:
    """Validate one BENCH_*.json document (generic + per-kind fields).

    Args:
        document: the parsed JSON.
        expected_kind: when set, the ``benchmark`` field must equal it
            (catches a file renamed over a different benchmark's output).

    Returns:
        Problem strings; empty means the document is schema-valid.
    """
    problems = validate_fields(document, GENERIC_BENCH_FIELDS, "bench file")
    if problems:
        return problems
    kind = document["benchmark"]
    if expected_kind is not None and kind != expected_kind:
        problems.append(
            f"field 'benchmark' is {kind!r} but the file name says "
            f"{expected_kind!r}")
    extra = BENCH_EXTRA_FIELDS.get(kind)
    if extra is None:
        problems.append(f"unknown benchmark kind {kind!r}")
    else:
        problems.extend(validate_fields(document, extra, "bench file"))
    if not document["runs"]:
        problems.append("field 'runs' is empty: no runs recorded")
    return problems


#: One bench-history record (``benchmarks/history/<kind>.jsonl`` lines).
#: ``git_sha`` is nullable: records written outside a git repository are
#: valid, just unattributable.
HISTORY_RECORD_FIELDS: Tuple[SchemaField, ...] = (
    SchemaField("schema_version", (int,)),
    SchemaField("benchmark", (str,)),
    SchemaField("git_sha", (str, type(None))),
    SchemaField("config_hash", (str,)),
    SchemaField("recorded_at", (str,)),
    SchemaField("version", (str,)),
    SchemaField("python", (str,)),
    SchemaField("metrics", (dict,)),
)


def validate_history_record(document: object) -> List[str]:
    """Validate one bench-history JSONL record; return problem strings."""
    problems = validate_fields(document, HISTORY_RECORD_FIELDS,
                               "history record")
    if problems:
        return problems
    for name, value in sorted(document["metrics"].items()):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            problems.append(
                f"metric {name!r} must be a number, got "
                f"{type(value).__name__}")
    return problems


#: The report document's own schema (self-checked before writing).
#: ``baseline`` and ``grids`` are optional sections: present only when
#: the report ran with ``--baseline`` / ``--grids``.
REPORT_FIELDS: Tuple[SchemaField, ...] = (
    SchemaField("schema_version", (int,)),
    SchemaField("generator", (str,)),
    SchemaField("benches", (dict,)),
    SchemaField("summary", (list,)),
    SchemaField("traces", (list,)),
    SchemaField("warnings", (list,)),
    SchemaField("baseline", (dict,), required=False),
    SchemaField("grids", (dict,), required=False),
)

REPORT_BENCH_FIELDS: Tuple[SchemaField, ...] = (
    SchemaField("path", (str,)),
    SchemaField("valid", (bool,)),
    SchemaField("problems", (list,)),
    SchemaField("headline", (dict,)),
)


def validate_report(document: object) -> List[str]:
    """Validate a rendered report document against its own schema."""
    problems = validate_fields(document, REPORT_FIELDS, "report")
    if problems:
        return problems
    for name, entry in sorted(document["benches"].items()):
        problems.extend(validate_fields(
            entry, REPORT_BENCH_FIELDS, f"benches[{name!r}]"))
    return problems
