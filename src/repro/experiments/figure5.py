"""Figure 5: comparison of average response time for the caching schemes.

One row per query inter-arrival time, one column per scheme, values in
seconds — the same series the paper's Figure 5 plots.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.config import ExperimentProfile, PAPER_PROFILE
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentGrid, run_grid


def figure5_rows(grid: ExperimentGrid) -> List[List[object]]:
    """The Figure 5 series as table rows."""
    rows: List[List[object]] = []
    for interval in grid.profile.interarrival_times_s:
        row: List[object] = [interval]
        for scheme in grid.profile.schemes:
            row.append(grid.metric(scheme, interval,
                                   lambda summary: summary.mean_response_time_s))
        rows.append(row)
    return rows


def figure5_table(profile: Optional[ExperimentProfile] = None,
                  grid: Optional[ExperimentGrid] = None) -> str:
    """Render Figure 5 as a text table (runs the grid if needed)."""
    if grid is None:
        grid = run_grid(profile or PAPER_PROFILE)
    headers = ["interarrival_s"] + [f"{name} (s)" for name in grid.profile.schemes]
    return format_table(
        headers, figure5_rows(grid),
        title=(f"Figure 5 - average response time in seconds "
               f"({grid.profile.query_count} queries, profile {grid.profile.name!r})"),
    )


def main() -> None:
    """Command-line entry point: print the Figure 5 table."""
    print(figure5_table())


if __name__ == "__main__":
    main()
