"""Metric collection for a simulation run.

The two headline metrics are the ones Figures 4 and 5 plot — total operating
cost of the caching infrastructure (execution resources + structure builds +
storage/uptime maintenance) and average query response time — but the
collector also keeps the breakdowns and series the analysis in Section VII-B
refers to (cache hit rate, builds, evictions, per-resource spend, profit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.policies.base import SchemeStep


@dataclass(frozen=True)
class MetricsSummary:
    """Aggregated results of one simulation run."""

    scheme_name: str
    query_count: int
    duration_s: float
    operating_cost: float
    execution_cpu_dollars: float
    execution_io_dollars: float
    execution_network_dollars: float
    build_dollars: float
    maintenance_dollars: float
    mean_response_time_s: float
    median_response_time_s: float
    p95_response_time_s: float
    cache_hit_rate: float
    total_network_bytes: float
    total_charge: float
    total_profit: float
    builds: int
    evictions: int
    eviction_losses: float

    @property
    def execution_dollars(self) -> float:
        """Total execution resource spend."""
        return (self.execution_cpu_dollars + self.execution_io_dollars
                + self.execution_network_dollars)

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary form used by the experiment reports."""
        return {
            "scheme": self.scheme_name,
            "queries": self.query_count,
            "duration_s": self.duration_s,
            "operating_cost": self.operating_cost,
            "execution_cpu": self.execution_cpu_dollars,
            "execution_io": self.execution_io_dollars,
            "execution_network": self.execution_network_dollars,
            "build": self.build_dollars,
            "maintenance": self.maintenance_dollars,
            "mean_response_s": self.mean_response_time_s,
            "median_response_s": self.median_response_time_s,
            "p95_response_s": self.p95_response_time_s,
            "cache_hit_rate": self.cache_hit_rate,
            "network_bytes": self.total_network_bytes,
            "charge": self.total_charge,
            "profit": self.total_profit,
            "builds": self.builds,
            "evictions": self.evictions,
            "eviction_losses": self.eviction_losses,
        }


@dataclass(frozen=True)
class TenantBreakdown:
    """Per-tenant aggregate of one simulation run.

    Rolled up from the :class:`~repro.policies.base.SchemeStep` records of
    the queries the tenant issued; the tenant's wallet balance lives in the
    :class:`~repro.economy.tenancy.TenantRegistry` and is joined in by the
    reporting layer.
    """

    tenant_id: str
    query_count: int
    cache_hits: int
    total_charge: float
    total_profit: float
    mean_response_time_s: float

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of the tenant's queries served from the cache."""
        if self.query_count == 0:
            return 0.0
        return self.cache_hits / self.query_count


def breakdown_by_tenant(steps: Sequence[SchemeStep]) -> Dict[str, TenantBreakdown]:
    """Aggregate step records per tenant id.

    Args:
        steps: step records of one run, in any order.

    Returns:
        ``tenant_id -> TenantBreakdown`` in first-appearance order.
    """
    counts: Dict[str, int] = {}
    hits: Dict[str, int] = {}
    charges: Dict[str, float] = {}
    profits: Dict[str, float] = {}
    times: Dict[str, float] = {}
    for step in steps:
        tid = step.tenant_id
        counts[tid] = counts.get(tid, 0) + 1
        hits[tid] = hits.get(tid, 0) + (1 if step.served_in_cache else 0)
        charges[tid] = charges.get(tid, 0.0) + step.charge
        profits[tid] = profits.get(tid, 0.0) + step.profit
        times[tid] = times.get(tid, 0.0) + step.response_time_s
    return {
        tid: TenantBreakdown(
            tenant_id=tid,
            query_count=counts[tid],
            cache_hits=hits[tid],
            total_charge=charges[tid],
            total_profit=profits[tid],
            mean_response_time_s=times[tid] / counts[tid],
        )
        for tid in counts
    }


class MetricsCollector:
    """Accumulates per-query steps and time-proportional maintenance cost."""

    def __init__(self, scheme_name: str) -> None:
        if not scheme_name:
            raise SimulationError("scheme_name must not be empty")
        self._scheme_name = scheme_name
        self._steps: List[SchemeStep] = []
        self._maintenance_dollars = 0.0
        self._duration_s = 0.0
        self._kernel_evictions = 0
        self._kernel_eviction_losses = 0.0

    @property
    def steps(self) -> Tuple[SchemeStep, ...]:
        """Every recorded step, in arrival order."""
        return tuple(self._steps)

    @property
    def maintenance_dollars(self) -> float:
        """Storage and node-uptime cost accumulated so far."""
        return self._maintenance_dollars

    def record_step(self, step: SchemeStep) -> None:
        """Record one query's step."""
        self._steps.append(step)

    def record_maintenance(self, dollars: float, elapsed_s: float) -> None:
        """Record time-proportional cost accrued between events."""
        if dollars < 0 or elapsed_s < 0:
            raise SimulationError("maintenance cost and duration must be non-negative")
        self._maintenance_dollars += dollars
        self._duration_s += elapsed_s

    def record_kernel_evictions(self, records, loss_of) -> None:
        """Record evictions driven by kernel events rather than query steps.

        Scheduled structure-failure checks release structures between
        arrivals; those evictions belong to no query step, so they are
        accumulated here and folded into the summary totals.

        Args:
            records: the ``EvictionRecord`` objects the cache produced.
            loss_of: maps a record to the dollar loss the scheme books for
                it (schemes account evictions differently — pass the
                scheme's ``eviction_loss``).
        """
        for record in records:
            self._kernel_evictions += 1
            self._kernel_eviction_losses += loss_of(record)

    # -- aggregation --------------------------------------------------------------

    def response_times(self) -> np.ndarray:
        """Response times of all recorded queries."""
        return np.array([step.response_time_s for step in self._steps], dtype=float)

    def tenant_breakdowns(self) -> Dict[str, TenantBreakdown]:
        """Per-tenant aggregates of the recorded steps (see
        :func:`breakdown_by_tenant`)."""
        return breakdown_by_tenant(self._steps)

    def cumulative_cost_series(self) -> List[float]:
        """Cumulative execution+build spend after each query (no maintenance)."""
        running = 0.0
        series: List[float] = []
        for step in self._steps:
            running += step.resource_dollars
            series.append(running)
        return series

    def summary(self) -> MetricsSummary:
        """Aggregate everything recorded so far."""
        if not self._steps:
            raise SimulationError("no steps recorded; run the simulation first")
        times = self.response_times()
        execution_cpu = sum(step.execution_cpu_dollars for step in self._steps)
        execution_io = sum(step.execution_io_dollars for step in self._steps)
        execution_network = sum(step.execution_network_dollars for step in self._steps)
        build = sum(step.build_dollars for step in self._steps)
        operating = (execution_cpu + execution_io + execution_network + build
                     + self._maintenance_dollars)
        hits = sum(1 for step in self._steps if step.served_in_cache)
        return MetricsSummary(
            scheme_name=self._scheme_name,
            query_count=len(self._steps),
            duration_s=self._duration_s,
            operating_cost=operating,
            execution_cpu_dollars=execution_cpu,
            execution_io_dollars=execution_io,
            execution_network_dollars=execution_network,
            build_dollars=build,
            maintenance_dollars=self._maintenance_dollars,
            mean_response_time_s=float(times.mean()),
            median_response_time_s=float(np.median(times)),
            p95_response_time_s=float(np.percentile(times, 95)),
            cache_hit_rate=hits / len(self._steps),
            total_network_bytes=sum(step.network_bytes for step in self._steps),
            total_charge=sum(step.charge for step in self._steps),
            total_profit=sum(step.profit for step in self._steps),
            builds=sum(step.builds for step in self._steps),
            evictions=(sum(step.evictions for step in self._steps)
                       + self._kernel_evictions),
            eviction_losses=(sum(step.eviction_losses for step in self._steps)
                             + self._kernel_eviction_losses),
        )
