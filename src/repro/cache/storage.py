"""Cache entry bookkeeping objects."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CacheError
from repro.structures.base import CacheStructure


@dataclass
class CacheEntry:
    """One built structure and its accounting state.

    Attributes:
        structure: the built structure.
        size_bytes: its disk footprint (0 for CPU nodes).
        build_cost: what the cloud paid to build it.
        maintenance_rate: $ per second of keeping it (disk or uptime).
        built_at: simulation time of construction.
        last_used_at: simulation time a selected plan last used it.
        last_billed_at: simulation time up to which maintenance has been
            billed (footnote 3: each selected plan pays the maintenance
            accumulated since the previous paying plan).
        queries_served: number of selected plans that used the structure,
            which also drives amortisation.
        amortized_recovered: build cost recovered through amortised charges.
        maintenance_billed: total maintenance billed to queries so far.
    """

    structure: CacheStructure
    size_bytes: int
    build_cost: float
    maintenance_rate: float
    built_at: float
    last_used_at: float = field(default=None)  # type: ignore[assignment]
    last_billed_at: float = field(default=None)  # type: ignore[assignment]
    queries_served: int = 0
    amortized_recovered: float = 0.0
    maintenance_billed: float = 0.0

    def __post_init__(self) -> None:
        if self.size_bytes < 0:
            raise CacheError("size_bytes must be non-negative")
        if self.build_cost < 0:
            raise CacheError("build_cost must be non-negative")
        if self.maintenance_rate < 0:
            raise CacheError("maintenance_rate must be non-negative")
        if self.last_used_at is None:
            self.last_used_at = self.built_at
        if self.last_billed_at is None:
            self.last_billed_at = self.built_at

    @property
    def key(self) -> str:
        """The structure's stable key."""
        return self.structure.key

    def accrued_maintenance(self, now: float) -> float:
        """Maintenance owed since it was last billed."""
        if now < self.last_billed_at:
            raise CacheError(
                f"time went backwards: now={now} < last_billed_at={self.last_billed_at}"
            )
        return self.maintenance_rate * (now - self.last_billed_at)

    def idle_time(self, now: float) -> float:
        """Seconds since a selected plan last used the structure."""
        if now < self.last_used_at:
            raise CacheError(
                f"time went backwards: now={now} < last_used_at={self.last_used_at}"
            )
        return now - self.last_used_at

    def unrecovered_build_cost(self) -> float:
        """Build cost not yet recovered through amortised charges."""
        return max(0.0, self.build_cost - self.amortized_recovered)


@dataclass(frozen=True)
class EvictionRecord:
    """Why and when a structure left the cache, for metrics and reports."""

    key: str
    evicted_at: float
    reason: str
    unpaid_maintenance: float
    unrecovered_build_cost: float
    queries_served: int
