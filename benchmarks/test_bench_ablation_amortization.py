"""Ablation benchmark: sensitivity to the amortisation horizon ``n`` (Eq. 7)."""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.experiments.ablations import ABLATION_HEADERS, amortization_ablation
from repro.experiments.config import ExperimentProfile
from repro.experiments.reporting import format_table

ABLATION_PROFILE = ExperimentProfile(
    name="ablation-amortization", query_count=800, interarrival_times_s=(1.0,),
    disk_duration_scale=10.0,
)


def test_amortization_horizon_ablation(benchmark, output_dir):
    rows = benchmark.pedantic(
        lambda: amortization_ablation(
            horizons=(100, 1_000, 5_000, 20_000), profile=ABLATION_PROFILE,
        ),
        rounds=1, iterations=1,
    )
    assert len(rows) == 4

    table = format_table(
        ABLATION_HEADERS, rows,
        title="Ablation A2 - amortisation horizon n (econ-cheap, 1 s inter-arrival)",
    )
    write_report(output_dir, "ablation_amortization.txt", table)
    print()
    print(table)

    # Short horizons price not-yet-built plans so high that the economy
    # invests less; long horizons should serve at least as many queries
    # from the cache.
    hit_rates = {row[0]: row[3] for row in rows}
    assert hit_rates[20_000] >= hit_rates[100]
