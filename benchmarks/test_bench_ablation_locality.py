"""Ablation benchmark: workload locality (the Section VI viability argument)."""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.experiments.ablations import (
    ABLATION_HEADERS,
    bypass_budget_ablation,
    locality_ablation,
)
from repro.experiments.config import ExperimentProfile
from repro.experiments.reporting import format_table

ABLATION_PROFILE = ExperimentProfile(
    name="ablation-locality", query_count=800, interarrival_times_s=(1.0,),
    disk_duration_scale=10.0,
)


def test_locality_ablation(benchmark, output_dir):
    rows = benchmark.pedantic(
        lambda: locality_ablation(
            hot_probabilities=(0.3, 0.6, 0.85, 0.95), profile=ABLATION_PROFILE,
        ),
        rounds=1, iterations=1,
    )
    assert len(rows) == 4

    table = format_table(
        ABLATION_HEADERS, rows,
        title="Ablation A3 - temporal locality (econ-cheap, 1 s inter-arrival)",
    )
    write_report(output_dir, "ablation_locality.txt", table)
    print()
    print(table)


def test_bypass_budget_ablation(benchmark, output_dir):
    rows = benchmark.pedantic(
        lambda: bypass_budget_ablation(
            cache_fractions=(0.1, 0.3, 0.6), profile=ABLATION_PROFILE,
        ),
        rounds=1, iterations=1,
    )
    assert len(rows) == 3

    table = format_table(
        ABLATION_HEADERS, rows,
        title="Ablation A4 - bypass cache budget (fraction of the database size)",
    )
    write_report(output_dir, "ablation_bypass_budget.txt", table)
    print()
    print(table)
