"""Pytest wrapper around the adaptive-placement benchmark.

Keeps the population small so the full suite stays fast, but exercises
the real pipeline — both placement modes, handoffs, delta publication —
and pins the two acceptance gates: adaptive placement must cut the
remote-hit surcharge below the hash run's, and delta publication must
ship fewer bytes per barrier than full republication.
"""

from __future__ import annotations

import json

from bench_placement import run_benchmark, write_report


def test_placement_report(output_dir):
    report = run_benchmark(tenant_count=24, query_count=160,
                           partitions=2, settlement_period_s=20.0)
    by_mode = {run["placement"]: run for run in report["runs"]}

    # The headline claim: demand-driven handoffs convert recurring
    # remote hits into local hits.
    assert by_mode["adaptive"]["handoffs"] > 0
    assert (by_mode["adaptive"]["remote_surcharge_dollars"]
            < by_mode["hash"]["remote_surcharge_dollars"])
    assert (by_mode["adaptive"]["remote_hit_rate"]
            < by_mode["hash"]["remote_hit_rate"])

    # The barrier-cost claim: deltas (plus periodic anchors) ship fewer
    # bytes than republishing the full snapshot at every barrier.
    for run in report["runs"]:
        assert (run["directory_bytes_published"]
                < run["directory_bytes_full_republication"])
        assert run["barriers"] > 0

    path = write_report(report, f"{output_dir}/BENCH_placement.json")
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["benchmark"] == "placement"
