"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.lru import LruTracker
from repro.costmodel.amortization import DecliningAmortization, UniformAmortization
from repro.costmodel.scaling import cpu_overhead_factor, speedup_factor
from repro.economy.account import CloudAccount
from repro.economy.budget import ConcaveBudget, ConvexBudget, StepBudget
from repro.economy.regret import RegretTracker
from repro.planner.skyline import skyline_filter
from repro.pricing.catalog import ResourcePricing
from repro.structures.cached_column import CachedColumn


# --- budget functions -------------------------------------------------------------

budget_amounts = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)
budget_deadlines = st.floats(min_value=1e-3, max_value=1e5, allow_nan=False)
budget_shapes = st.sampled_from([StepBudget, ConvexBudget, ConcaveBudget])


@given(shape=budget_shapes, amount=budget_amounts, deadline=budget_deadlines,
       times=st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=2, max_size=20))
def test_budget_functions_are_non_increasing(shape, amount, deadline, times):
    budget = shape(amount, deadline)
    ordered = sorted(times)
    values = [budget.value(t) for t in ordered]
    assert all(later <= earlier + 1e-9 for earlier, later in zip(values, values[1:]))


@given(shape=budget_shapes, amount=budget_amounts, deadline=budget_deadlines,
       time=st.floats(min_value=1e-6, max_value=1e6))
def test_budget_values_are_bounded_by_the_amount(shape, amount, deadline, time):
    value = shape(amount, deadline).value(time)
    assert 0.0 <= value <= amount + 1e-9


# --- skyline filter ----------------------------------------------------------------

points = st.tuples(st.floats(min_value=0.0, max_value=1e4, allow_nan=False),
                   st.floats(min_value=0.0, max_value=1e4, allow_nan=False))


@given(st.lists(points, min_size=1, max_size=40))
def test_skyline_members_are_mutually_non_dominating(candidates):
    result = skyline_filter(candidates, time_of=lambda p: p[0], cost_of=lambda p: p[1])
    assert result, "a non-empty input always has at least one skyline point"
    for first in result:
        for second in result:
            if first is second:
                continue
            dominates = (first[0] <= second[0] and first[1] <= second[1]
                         and (first[0] < second[0] or first[1] < second[1]))
            assert not dominates


@given(st.lists(points, min_size=1, max_size=40))
def test_every_input_is_dominated_by_or_equal_to_a_skyline_point(candidates):
    result = skyline_filter(candidates, time_of=lambda p: p[0], cost_of=lambda p: p[1])
    for candidate in candidates:
        assert any(member[0] <= candidate[0] + 1e-9 and member[1] <= candidate[1] + 1e-9
                   for member in result)


# --- amortisation ---------------------------------------------------------------------

@given(build_cost=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
       horizon=st.integers(min_value=1, max_value=500))
def test_uniform_amortization_never_overcharges(build_cost, horizon):
    policy = UniformAmortization(horizon)
    total = sum(policy.charge(build_cost, served) for served in range(horizon + 50))
    assert total <= build_cost + 1e-6


@given(build_cost=st.floats(min_value=0.0, max_value=1e5, allow_nan=False),
       fraction=st.floats(min_value=0.01, max_value=0.9),
       served=st.integers(min_value=0, max_value=200))
def test_declining_amortization_charges_are_non_negative_and_decreasing(build_cost,
                                                                        fraction, served):
    policy = DecliningAmortization(fraction)
    current = policy.charge(build_cost, served)
    following = policy.charge(build_cost, served + 1)
    assert current >= 0.0
    assert following <= current + 1e-9


# --- multi-node scaling -----------------------------------------------------------------

@given(nodes=st.integers(min_value=1, max_value=16),
       fraction=st.floats(min_value=0.0, max_value=1.0))
def test_scaling_invariants(nodes, fraction):
    speedup = speedup_factor(nodes, fraction)
    overhead = cpu_overhead_factor(nodes)
    assert speedup >= 1.0 - 1e-12
    assert overhead >= 1.0
    assert speedup <= nodes + 1e-9  # never super-linear


# --- LRU tracker ---------------------------------------------------------------------------

@given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=8))
def test_lru_tracker_respects_capacity_and_recency(keys, capacity):
    lru = LruTracker(capacity=capacity)
    for key in keys:
        lru.touch(key)
    assert len(lru) <= capacity
    order = lru.in_lru_order()
    assert order[-1] == keys[-1]          # the last touched key is the most recent
    assert len(set(order)) == len(order)  # no duplicates


# --- regret tracker --------------------------------------------------------------------------

column_names = st.sampled_from(["l_shipdate", "l_discount", "l_quantity", "l_tax"])


@given(st.lists(st.tuples(column_names,
                          st.floats(min_value=0.0, max_value=100.0, allow_nan=False)),
                max_size=100))
def test_regret_total_equals_sum_of_added_amounts(events):
    tracker = RegretTracker(pool_capacity=None)
    expected = 0.0
    for name, amount in events:
        tracker.add(CachedColumn("lineitem", name), amount)
        expected += amount
    assert tracker.total() == pytest.approx(expected)


# --- cloud account -----------------------------------------------------------------------------

@given(st.lists(st.tuples(st.booleans(),
                          st.floats(min_value=0.0, max_value=1e4, allow_nan=False)),
                max_size=100),
       st.floats(min_value=0.0, max_value=1e4, allow_nan=False))
def test_account_balance_always_matches_the_ledger(operations, seed):
    account = CloudAccount(initial_credit=seed, allow_negative=True)
    for is_deposit, amount in operations:
        if is_deposit:
            account.deposit(amount, 0.0, "in")
        else:
            account.withdraw(amount, 0.0, "out")
    assert account.credit == pytest.approx(
        account.total_deposited() - account.total_withdrawn()
    )


# --- pricing ----------------------------------------------------------------------------------

@given(factor=st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
def test_scaling_prices_scales_derived_rates(factor):
    base = ResourcePricing()
    scaled = base.scaled(factor)
    assert scaled.network_byte == pytest.approx(factor * base.network_byte)
    assert scaled.disk_byte_second == pytest.approx(factor * base.disk_byte_second)


import pytest  # noqa: E402  (used by pytest.approx inside hypothesis bodies)
