"""Command-line interface.

Exposes the experiment drivers without writing any Python::

    python -m repro.cli figure4 --profile quick --jobs 4
    python -m repro.cli figure5 --profile paper
    python -m repro.cli headline
    python -m repro.cli ablation regret
    python -m repro.cli scenario --arrival diurnal --scheme econ-cheap
    python -m repro.cli scenario --arrival shocks --settlement-period 300
    python -m repro.cli tenants --n-tenants 100 --jobs 4
    python -m repro.cli tenants --n-tenants 1000 --shards 4 --jobs 4
    python -m repro.cli tenants --cache-partitions 4 --settlement-period 60
    python -m repro.cli shocks --schemes all --strict-maintenance
    python -m repro.cli shocks --cache-partitions 2 --placement adaptive
    python -m repro.cli describe

Every subcommand prints a plain-text table to stdout. ``--jobs N`` fans
independent cells out over N worker processes (grid cells for the figure
commands, scheme cells for ``tenants``); the tables are byte-identical
to the sequential run. ``scenario`` replays any scheme under one of the
scenario-diverse arrival regimes through the event kernel; ``tenants``
runs schemes over a Zipf-skewed, churning N-tenant population and
reports per-tenant credit/hit-rate aggregates. ``tenants --shards N``
additionally splits each scheme cell into N tenant shards executed
through :mod:`repro.sharding` (``--jobs`` sizes the pool those shard
tasks share); the merged tables are byte-identical to the unsharded run.
``tenants --cache-partitions N`` instead partitions the *cache and
provider economy* across N workers through :mod:`repro.distcache` —
explicitly different semantics (remote hits, epoch-consistent directory);
the report gains per-partition and divergence-vs-global sections, and
``--cache-partitions 1`` is byte-identical to the normal path. The two
modes are alternatives: ``--shards`` and ``--cache-partitions`` cannot
both exceed 1. ``--placement adaptive`` additionally lets settlement
barriers hand structure ownership to the partition deriving the most
priced benefit (hysteresis set by ``--handoff-threshold``), adding a
placement report section; the default ``--placement hash`` output stays
byte-identical to earlier releases. ``--planning batched`` (figure,
headline, scenario and tenants commands) switches the economic schemes to
the vectorized per-template planner — a pure throughput optimisation whose
tables are byte-identical to the default ``--planning scalar``.

``shocks`` runs the adversarial scenario grammar: every scheme replays
the same grammar-composed workload twice — clean and with market shocks
injected (structure invalidations, provider price shocks, tenant budget
squeezes, optionally the strict-maintenance shutdown policy) — and the
resilience table compares the two, with a bitwise conservation audit on
the shocked run. ``--shock``/``--class`` extend the stock grammar
(also accepted by ``scenario``/``tenants``); ``--shards`` and
``--cache-partitions`` rerun the shocked cells through the scaling
modes, whose own barrier audits then pin conservation under faults.
"""

from __future__ import annotations

import argparse
import glob
import os
import sys
import time
import warnings
from typing import List, Optional, Sequence

from repro import __version__
from repro.distcache import (
    PLACEMENT_MODES,
    PartitionImbalanceWarning,
    distcache_divergence_table,
    distcache_partition_table,
    distcache_placement_table,
    run_partitioned_experiment,
)
from repro.economy.engine import PLANNING_MODES, PLANNING_SCALAR, EconomyConfig
from repro.errors import ReproError
from repro.policies.economic import EconomicSchemeConfig
from repro.sharding import ShardImbalanceWarning

from repro.experiments.ablations import (
    ABLATION_HEADERS,
    amortization_ablation,
    bypass_budget_ablation,
    locality_ablation,
    regret_fraction_ablation,
)
from repro.experiments.config import (
    BENCH_PROFILE,
    PAPER_PROFILE,
    QUICK_PROFILE,
    ExperimentProfile,
)
from repro.experiments.figure4 import figure4_table
from repro.experiments.figure5 import figure5_table
from repro.experiments.headline import headline_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import run_grid
from repro.experiments.shocks import run_shock_resilience, shock_resilience_table
from repro.experiments.tenants import (
    ARRIVAL_EAGER,
    ARRIVAL_MODES,
    ARRIVAL_STREAMED,
    TenantExperimentConfig,
    run_tenant_experiment,
    tenant_aggregate_table,
    top_tenant_table,
)
from repro.obs import (
    TraceRecorder,
    build_manifest,
    write_report_artifacts,
)
from repro.policies.factory import SCHEME_NAMES
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.system import CloudSystem
from repro.workload.grammar import (
    GrammarDegeneracyWarning,
    ScenarioGrammar,
    compile_shock_events,
    default_shock_grammar,
    parse_query_class,
    parse_shock,
)
from repro.workload.scenarios import SCENARIO_NAMES, build_scenario

_PROFILES = {
    "quick": QUICK_PROFILE,
    "bench": BENCH_PROFILE,
    "paper": PAPER_PROFILE,
}

_ABLATIONS = {
    "regret": (regret_fraction_ablation,
               "Ablation A1 - regret fraction a (Eq. 3)"),
    "amortization": (amortization_ablation,
                     "Ablation A2 - amortisation horizon n (Eq. 7)"),
    "locality": (locality_ablation,
                 "Ablation A3 - workload temporal locality"),
    "bypass-budget": (bypass_budget_ablation,
                      "Ablation A4 - bypass cache budget"),
}


def _positive_int(text: str) -> int:
    """Argparse type for ``--jobs``/``--shards``/``--cache-partitions``:
    an integer >= 1.

    Raising :class:`argparse.ArgumentTypeError` makes argparse print a
    friendly ``error: argument --jobs: ...`` line and exit with code 2,
    instead of a traceback from deep inside an experiment driver.
    """
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_float(text: str) -> float:
    """Argparse type for ``--handoff-threshold``: a float >= 0.

    Exit-2 validated like the other numeric flags (``--jobs``,
    ``--shards``, ``--cache-partitions``): argparse prints a friendly
    ``error: argument --handoff-threshold: ...`` line instead of a
    traceback from inside the experiment driver.
    """
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    # `not >=` rather than `<`: NaN fails every comparison, so a plain
    # `< 0` check would wave `--handoff-threshold nan` through and every
    # hysteresis comparison downstream would silently be False.
    if not value >= 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _shock_spec(text: str):
    """Argparse type for ``--shock``: the grammar's shock DSL, exit-2
    validated (``invalidate@FRAC[:PREDICATE]``, ``price@FRAC:DUR:FACTOR``,
    ``squeeze@FRAC:DUR:FACTOR``)."""
    try:
        return parse_shock(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error))


def _query_class_spec(text: str):
    """Argparse type for ``--class``: ``NAME:WEIGHT:TPL1+TPL2``, exit-2
    validated (template names are checked eagerly)."""
    try:
        return parse_query_class(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error))


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``repro`` command-line interface."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'An Economic Model for Self-Tuned Cloud Caching'",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    for name, help_text in (
            ("figure4", "operating cost per scheme per inter-arrival time"),
            ("figure5", "average response time per scheme per inter-arrival time"),
            ("headline", "Section VII-B claims, paper versus measured")):
        sub = subparsers.add_parser(name, help=help_text)
        sub.add_argument("--profile", choices=sorted(_PROFILES), default="quick",
                         help="experiment profile (default: quick)")
        sub.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                         help="worker processes for the grid cells "
                              "(default: 1, sequential)")
        sub.add_argument("--planning", choices=PLANNING_MODES,
                         default=PLANNING_SCALAR,
                         help="query planning path: 'scalar' plans each query "
                              "on arrival, 'batched' scores whole per-template "
                              "batches vectorized; the tables are "
                              "byte-identical either way (default: scalar)")
        # Only --trace/--force here: the figure drivers' --profile is the
        # experiment profile, so the cProfile flag stays off these.
        _add_trace_arguments(sub, full=False)

    ablation = subparsers.add_parser("ablation", help="run one ablation sweep")
    ablation.add_argument("which", choices=sorted(_ABLATIONS))
    ablation.add_argument("--queries", type=int, default=400,
                          help="queries per sweep point (default: 400)")

    scenario = subparsers.add_parser(
        "scenario",
        help="run one scheme under a scenario-diverse arrival regime")
    scenario.add_argument("--arrival", choices=SCENARIO_NAMES, default="diurnal",
                          help="arrival scenario (default: diurnal)")
    scenario.add_argument("--scheme", choices=SCHEME_NAMES, default="econ-cheap",
                          help="caching scheme (default: econ-cheap)")
    scenario.add_argument("--queries", type=int, default=400,
                          help="queries to simulate (default: 400)")
    scenario.add_argument("--interarrival", type=float, default=10.0,
                          help="mean inter-arrival time in seconds (default: 10)")
    scenario.add_argument("--seed", type=int, default=0,
                          help="workload seed (default: 0)")
    scenario.add_argument("--settlement-period", type=float, default=None,
                          metavar="S",
                          help="fire a periodic maintenance settlement every "
                               "S simulated seconds")
    scenario.add_argument("--failure-check-period", type=float, default=None,
                          metavar="S",
                          help="fire a scheduled structure-failure check every "
                               "S simulated seconds")
    scenario.add_argument("--planning", choices=PLANNING_MODES,
                          default=PLANNING_SCALAR,
                          help="query planning path (scalar or batched; "
                               "byte-identical outputs, default: scalar)")
    scenario.add_argument("--shock", type=_shock_spec, action="append",
                          default=[], metavar="SPEC",
                          help="inject a market shock: invalidate@FRAC"
                               "[:PREDICATE], price@FRAC:DUR:FACTOR or "
                               "squeeze@FRAC:DUR:FACTOR (fractions of the "
                               "run span; repeatable; added to the shocks "
                               "of --arrival shocks)")
    scenario.add_argument("--strict-maintenance", action="store_true",
                          help="enable the strict-maintenance shutdown "
                               "policy: at every settlement, structures are "
                               "shut down lowest-benefit-first while accrued "
                               "maintenance exceeds query income")
    _add_trace_arguments(scenario)

    tenants = subparsers.add_parser(
        "tenants",
        help="run schemes over a Zipf-skewed N-tenant population")
    tenants.add_argument("--n-tenants", type=int, default=100, metavar="N",
                         help="tenants active at any one time (default: 100)")
    tenants.add_argument("--schemes", default="econ-cheap", metavar="LIST",
                         help="comma-separated scheme names, or 'all' "
                              "(default: econ-cheap)")
    tenants.add_argument("--queries", type=int, default=400,
                         help="queries to simulate (default: 400)")
    tenants.add_argument("--interarrival", type=float, default=10.0,
                         help="mean inter-arrival time in seconds (default: 10)")
    tenants.add_argument("--seed", type=int, default=0,
                         help="workload/population seed (default: 0)")
    tenants.add_argument("--zipf", type=float, default=1.1, metavar="S",
                         help="Zipf exponent of tenant activity (default: 1.1; "
                              "0 = uniform)")
    tenants.add_argument("--initial-credit", type=float, default=50.0,
                         metavar="D",
                         help="seed credit of every tenant wallet (default: 50)")
    tenants.add_argument("--budget-sigma", type=float, default=0.0,
                         metavar="SIGMA",
                         help="lognormal sigma of per-tenant budget "
                              "multipliers (default: 0, uniform budgets)")
    tenants.add_argument("--churn-period", type=int, default=0, metavar="Q",
                         help="replace part of the population every Q queries "
                              "(default: 0, no churn)")
    tenants.add_argument("--churn-fraction", type=float, default=0.1,
                         metavar="F",
                         help="fraction of tenants replaced per churn wave "
                              "(default: 0.1)")
    tenants.add_argument("--top", type=int, default=10, metavar="K",
                         help="busiest tenants to list individually "
                              "(default: 10)")
    tenants.add_argument("--settlement-period", type=float, default=None,
                         metavar="S",
                         help="fire a periodic maintenance settlement every "
                              "S simulated seconds (each one is a sharding "
                              "barrier when --shards > 1)")
    tenants.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                         help="worker processes shared by all cells "
                              "(default: 1, sequential)")
    tenants.add_argument("--shards", type=_positive_int, default=1,
                         metavar="N",
                         help="split each scheme cell into N tenant shards, "
                              "replayed deterministically and merged exactly; "
                              "the tables are byte-identical to --shards 1 "
                              "(default: 1, unsharded)")
    tenants.add_argument("--cache-partitions", type=_positive_int, default=1,
                         metavar="N",
                         help="partition the cache and provider economy "
                              "across N workers (repro.distcache) — "
                              "explicitly different semantics for N > 1; "
                              "adds per-partition and divergence report "
                              "sections, mutually exclusive with --shards "
                              "(default: 1, global cache)")
    tenants.add_argument("--placement", choices=PLACEMENT_MODES,
                         default="hash",
                         help="structure placement across cache partitions: "
                              "'hash' pins every structure to its hash owner "
                              "(byte-identical to earlier releases), "
                              "'adaptive' hands ownership to the "
                              "highest-benefit partition at settlement "
                              "barriers and adds a placement report section "
                              "(default: hash)")
    tenants.add_argument("--handoff-threshold", type=_nonnegative_float,
                         default=0.0, metavar="D",
                         help="hysteresis margin in dollars per epoch a "
                              "challenger partition must out-bid the owner "
                              "by before an adaptive handoff is applied "
                              "(default: 0, any strictly positive margin)")
    tenants.add_argument("--planning", choices=PLANNING_MODES,
                         default=PLANNING_SCALAR,
                         help="query planning path (scalar or batched; "
                              "byte-identical tables under --shards and "
                              "--cache-partitions too, default: scalar)")
    tenants.add_argument("--shock", type=_shock_spec, action="append",
                         default=[], metavar="SPEC",
                         help="inject a market shock into every cell: "
                              "invalidate@FRAC[:PREDICATE], "
                              "price@FRAC:DUR:FACTOR or "
                              "squeeze@FRAC:DUR:FACTOR (repeatable)")
    tenants.add_argument("--arrival-mode", choices=ARRIVAL_MODES,
                         default=ARRIVAL_EAGER,
                         help="'eager' materialises the whole populated "
                              "workload up front; 'streamed' derives tenant "
                              "profiles generatively at first arrival and "
                              "feeds queries through a bounded lookahead "
                              "window, so memory scales with live tenants "
                              "instead of --n-tenants — tables are "
                              "byte-identical between the two "
                              "(default: eager)")
    tenants.add_argument("--strict-maintenance", action="store_true",
                         help="enable the strict-maintenance shutdown "
                              "policy at settlement boundaries")
    _add_trace_arguments(tenants)

    shocks = subparsers.add_parser(
        "shocks",
        help="adversarial grammar: clean vs shocked cells per scheme, "
             "with a bitwise conservation audit")
    shocks.add_argument("--schemes", default="econ-cheap", metavar="LIST",
                        help="comma-separated scheme names, or 'all' "
                             "(default: econ-cheap)")
    shocks.add_argument("--n-tenants", type=int, default=50, metavar="N",
                        help="tenants active at any one time (default: 50)")
    shocks.add_argument("--queries", type=int, default=400,
                        help="queries to simulate (default: 400)")
    shocks.add_argument("--interarrival", type=float, default=10.0,
                        help="mean inter-arrival time in seconds "
                             "(default: 10)")
    shocks.add_argument("--seed", type=int, default=0,
                        help="grammar/workload/population seed (default: 0)")
    shocks.add_argument("--settlement-period", type=float, default=None,
                        metavar="S",
                        help="fire a periodic maintenance settlement every "
                             "S simulated seconds (strict maintenance "
                             "enforces at each one)")
    shocks.add_argument("--shock", type=_shock_spec, action="append",
                        default=[], metavar="SPEC",
                        help="extra shock production composed onto the "
                             "stock grammar (repeatable)")
    shocks.add_argument("--class", type=_query_class_spec, action="append",
                        default=[], dest="query_class", metavar="SPEC",
                        help="extra query class NAME:WEIGHT:TPL1+TPL2 "
                             "composed onto the stock grammar (repeatable; "
                             "WEIGHT 0 is dropped with a warning)")
    shocks.add_argument("--strict-maintenance", action="store_true",
                        help="also inject the strict-maintenance shutdown "
                             "policy into the shocked cells")
    shocks.add_argument("--jobs", type=_positive_int, default=1, metavar="N",
                        help="worker processes for the clean/shocked pairs "
                             "(default: 1, sequential; byte-identical)")
    shocks.add_argument("--shards", type=_positive_int, default=1,
                        metavar="N",
                        help="additionally rerun the shocked cells split "
                             "into N tenant shards (repro.sharding); the "
                             "sharded tables must be byte-identical to the "
                             "plain shocked run (default: 1, skip)")
    shocks.add_argument("--cache-partitions", type=_positive_int, default=1,
                        metavar="N",
                        help="additionally rerun the shocked cells with the "
                             "cache and economy partitioned N ways "
                             "(repro.distcache), auditing conservation at "
                             "every settlement barrier (default: 1, skip)")
    shocks.add_argument("--placement", choices=PLACEMENT_MODES,
                        default="hash",
                        help="structure placement for the partitioned rerun "
                             "(default: hash)")
    shocks.add_argument("--handoff-threshold", type=_nonnegative_float,
                        default=0.0, metavar="D",
                        help="adaptive-placement hysteresis margin for the "
                             "partitioned rerun (default: 0)")
    shocks.add_argument("--planning", choices=PLANNING_MODES,
                        default=PLANNING_SCALAR,
                        help="query planning path (scalar or batched; "
                             "byte-identical tables, default: scalar)")
    _add_trace_arguments(shocks)

    report = subparsers.add_parser(
        "report",
        help="render bench JSONs (and trace JSONLs) into versioned "
             "report artifacts")
    report.add_argument("artifacts", nargs="*", metavar="PATH",
                        help="BENCH_*.json files and/or *.jsonl trace "
                             "artifacts to ingest (default: the checked-in "
                             "BENCH_*.json files in the current directory); "
                             "missing or legacy bench files degrade to "
                             "warnings, never a crash")
    report.add_argument("--out", default="report-artifacts", metavar="DIR",
                        help="directory receiving report.json, report.md "
                             "and report.manifest.json (default: "
                             "report-artifacts)")
    report.add_argument("--force", action="store_true",
                        help="overwrite existing report artifacts")
    report.add_argument("--baseline", default=None, metavar="DIR",
                        help="bench-history directory (benchmarks/history) "
                             "to compare against: each bench's headline "
                             "metrics are diffed against its newest "
                             "comparable record (same config hash) and the "
                             "summary table gains delta + perf-gate columns")
    report.add_argument("--warn-slowdown", type=_nonnegative_float,
                        default=0.10, metavar="FRAC",
                        help="relative regression at which a baseline delta "
                             "warns (default: 0.10)")
    report.add_argument("--fail-slowdown", type=_nonnegative_float,
                        default=0.25, metavar="FRAC",
                        help="relative regression at which a baseline delta "
                             "fails (default: 0.25)")
    report.add_argument("--grids", action="store_true",
                        help="additionally run the headline/figure4/figure5 "
                             "grid tables and fold them into the report's "
                             "grids section")
    report.add_argument("--grids-profile", choices=sorted(_PROFILES),
                        default="quick",
                        help="experiment profile for --grids "
                             "(default: quick)")
    report.add_argument("--grids-jobs", type=_positive_int, default=1,
                        metavar="N",
                        help="worker processes for the --grids cells "
                             "(default: 1, sequential)")

    subparsers.add_parser("describe", help="print the simulated schema and defaults")
    return parser


def _add_trace_arguments(sub: argparse.ArgumentParser,
                         full: bool = True) -> None:
    """The shared observability flags of the observable commands.

    ``full`` adds ``--metrics`` and the cProfile ``--profile`` on top of
    ``--trace``/``--force``; the figure/headline grid drivers pass
    ``full=False`` because their ``--profile`` already names the
    experiment profile.
    """
    sub.add_argument("--trace", default=None, metavar="PATH",
                     help="record spans and counters to PATH as sorted "
                          "JSONL, with a run manifest next to it "
                          "(PATH.manifest.json); tracing is observation-"
                          "only — the printed tables are byte-identical "
                          "to the untraced run")
    if full:
        sub.add_argument("--metrics", default=None, metavar="PATH",
                         help="sample engine/cache/economy/batch counters "
                              "at every settlement barrier into PATH as "
                              "sorted per-epoch JSONL, with a run manifest "
                              "next to it (PATH.manifest.json); same "
                              "zero-perturbation contract as --trace")
        sub.add_argument("--profile", action="store_true",
                         help="run under cProfile and fold the top "
                              "cumulative-time hotspots into the --trace/"
                              "--metrics run manifest (requires one of "
                              "them; profiling never touches the printed "
                              "tables)")
    sub.add_argument("--force", action="store_true",
                     help="overwrite an existing --trace/--metrics file")


def _validate_trace(parser: argparse.ArgumentParser,
                    args: argparse.Namespace) -> None:
    """Exit-2 validation of the observability flags (like the numeric
    flag types): parent directories must exist, existing artifacts need
    ``--force``, ``--trace``/``--metrics`` may not share a path, and the
    cProfile ``--profile`` needs a manifest to land its hotspots in."""
    paths = {}
    for attr in ("trace", "metrics"):
        path = getattr(args, attr, None)
        if path is None:
            continue
        paths[attr] = path
        parent = os.path.dirname(path) or "."
        if not os.path.isdir(parent):
            parser.error(
                f"argument --{attr}: directory {parent!r} does not exist")
        if os.path.exists(path) and not args.force:
            parser.error(f"argument --{attr}: {path!r} exists "
                         f"(pass --force to overwrite)")
    if len(paths) == 2 and paths["trace"] == paths["metrics"]:
        parser.error("arguments --trace/--metrics: must be different "
                     "paths (each is a complete JSONL artifact)")
    # The figure commands' --profile is the experiment profile (a str);
    # only the boolean store_true flag is the cProfile switch.
    profiling = getattr(args, "profile", None)
    if isinstance(profiling, bool) and profiling and not paths:
        parser.error("argument --profile: requires --trace or --metrics "
                     "(the hotspots are folded into their run manifest)")


def _figure_command(command: str, profile: ExperimentProfile, jobs: int,
                    trace: Optional[TraceRecorder] = None) -> str:
    grid = run_grid(profile, jobs=jobs, trace=trace)
    if command == "figure4":
        return figure4_table(grid=grid)
    if command == "figure5":
        return figure5_table(grid=grid)
    return headline_table(grid=grid)


def _ablation_command(which: str, queries: int) -> str:
    driver, title = _ABLATIONS[which]
    profile = ExperimentProfile(name=f"cli-{which}", query_count=queries,
                                interarrival_times_s=(1.0,))
    rows = driver(profile=profile)
    return format_table(ABLATION_HEADERS, rows, title=title)


def _scenario_command(args: argparse.Namespace,
                      trace: Optional[TraceRecorder] = None,
                      metrics=None) -> str:
    scenario = build_scenario(
        args.arrival,
        query_count=args.queries,
        interarrival_s=args.interarrival,
        seed=args.seed,
    )
    shocks = tuple(scenario.shocks) + tuple(args.shock)
    system = CloudSystem()
    scheme = system.scheme(args.scheme, economic_config=EconomicSchemeConfig(
        economy=EconomyConfig(planning=args.planning,
                              strict_maintenance=args.strict_maintenance),
    ))
    observers = []
    if trace is not None or metrics is not None:
        from repro.obs.metrics import attach_observability

        observers = attach_observability(scheme, trace=trace,
                                         metrics=metrics)
    simulation = CloudSimulation(scheme, SimulationConfig(
        settlement_period_s=args.settlement_period,
        failure_check_period_s=args.failure_check_period,
    ))
    shock_events = compile_shock_events(shocks, scenario.queries)
    result = simulation.run(scenario.queries,
                            phase_changes=scenario.phase_changes,
                            observers=observers,
                            shock_events=shock_events)
    summary = result.summary
    headers = ["metric", "value"]
    rows: List[List[object]] = [
        ["scheme", summary.scheme_name],
        ["arrival scenario", f"{scenario.name} ({scenario.description})"],
        ["queries", summary.query_count],
        ["phase changes", len(scenario.phase_changes)],
        ["shock events", len(shock_events)],
        ["duration_s", summary.duration_s],
        ["operating_cost", summary.operating_cost],
        ["maintenance", summary.maintenance_dollars],
        ["mean_response_s", summary.mean_response_time_s],
        ["p95_response_s", summary.p95_response_time_s],
        ["cache_hit_rate", summary.cache_hit_rate],
        ["builds", summary.builds],
        ["evictions", summary.evictions],
    ]
    engine = getattr(scheme, "engine", None)
    if engine is not None:
        # The same bitwise identity the shocks command audits: provider
        # query-payment deposits fold to exactly the charged total.
        from repro.economy.account import CloudAccount

        banked = engine.account.totals_by_category().get(
            CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0)
        charged = 0.0
        for outcome in engine.outcomes:
            charged += outcome.charge
        rows.append(["conservation",
                     "exact" if banked == charged
                     else f"VIOLATED ({banked!r} != {charged!r})"])
    title = f"Scenario - {scenario.name} x {summary.scheme_name}"
    return format_table(headers, rows, title=title)


#: Library warnings the CLI re-renders as plain ``warning:`` stderr lines.
_RENDERED_WARNINGS = (ShardImbalanceWarning, PartitionImbalanceWarning,
                      GrammarDegeneracyWarning)


def _render_warnings(caught: List[warnings.WarningMessage]) -> None:
    """Re-render known run-layout warnings; re-emit everything else.

    The imbalance warnings of the sharding and cache-partitioning layers
    become plain ``warning:`` stderr lines; anything else recorded is
    re-emitted afterwards with its original metadata, so unrelated
    warnings keep their normal behaviour. Callers should record with the
    "default" filter on the rendered categories, which dedupes repeats —
    one imbalance prints once however many cells trigger it.
    """
    for entry in caught:
        if issubclass(entry.category, _RENDERED_WARNINGS):
            print(f"warning: {entry.message}", file=sys.stderr)
        else:
            warnings.warn_explicit(entry.message, entry.category,
                                   entry.filename, entry.lineno)


def _tenants_command(args: argparse.Namespace,
                     trace: Optional[TraceRecorder] = None,
                     metrics=None) -> str:
    names = (list(SCHEME_NAMES) if args.schemes == "all"
             else [name.strip() for name in args.schemes.split(",")
                   if name.strip()])
    if not names:
        raise ReproError("--schemes selects no scheme")
    if args.cache_partitions > 1 and args.shards > 1:
        raise ReproError(
            "--cache-partitions and --shards are alternative scaling modes "
            "and cannot both exceed 1 (see docs/distcache.md for when to "
            "prefer which)"
        )
    if args.placement != "hash" and args.cache_partitions == 1:
        raise ReproError(
            "--placement adaptive needs --cache-partitions > 1: with one "
            "partition every structure is local and there is no placement "
            "to adapt"
        )
    if args.arrival_mode == ARRIVAL_STREAMED and args.cache_partitions > 1:
        raise ReproError(
            "--arrival-mode streamed does not support --cache-partitions: "
            "the distributed cache materialises per-partition workloads "
            "eagerly (use --shards for streamed scale-out)"
        )
    configs = [
        TenantExperimentConfig(
            scheme=name,
            tenant_count=args.n_tenants,
            query_count=args.queries,
            interarrival_s=args.interarrival,
            seed=args.seed,
            zipf_exponent=args.zipf,
            initial_credit=args.initial_credit,
            budget_sigma=args.budget_sigma,
            churn_period=args.churn_period,
            churn_fraction=args.churn_fraction,
            settlement_period_s=args.settlement_period,
            planning=args.planning,
            shocks=tuple(args.shock),
            strict_maintenance=args.strict_maintenance,
            arrival_mode=args.arrival_mode,
        )
        for name in names
    ]
    sections: List[str] = []
    with warnings.catch_warnings(record=True) as caught:
        for category in _RENDERED_WARNINGS:
            warnings.simplefilter("default", category)
        if args.cache_partitions > 1:
            reports = run_partitioned_experiment(
                configs, partitions=args.cache_partitions, jobs=args.jobs,
                placement=args.placement,
                handoff_threshold=args.handoff_threshold,
                trace=trace, metrics=metrics)
            for report in reports:
                sections.append(tenant_aggregate_table(report.cell))
                if args.top > 0:
                    sections.append(top_tenant_table(report.cell,
                                                     limit=args.top))
                sections.append(distcache_partition_table(report))
                divergence = distcache_divergence_table(report)
                if divergence is not None:
                    sections.append(divergence)
                placement = distcache_placement_table(report)
                if placement is not None:
                    sections.append(placement)
        else:
            results = run_tenant_experiment(configs, jobs=args.jobs,
                                            shards=args.shards, trace=trace,
                                            metrics=metrics)
            for result in results:
                sections.append(tenant_aggregate_table(result))
                if args.top > 0:
                    sections.append(top_tenant_table(result, limit=args.top))
    _render_warnings(caught)
    return "\n\n".join(sections)


def _shocks_command(args: argparse.Namespace,
                    trace: Optional[TraceRecorder] = None,
                    metrics=None) -> str:
    names = (list(SCHEME_NAMES) if args.schemes == "all"
             else [name.strip() for name in args.schemes.split(",")
                   if name.strip()])
    if not names:
        raise ReproError("--schemes selects no scheme")
    if args.cache_partitions > 1 and args.shards > 1:
        raise ReproError(
            "--cache-partitions and --shards are alternative scaling modes "
            "and cannot both exceed 1"
        )
    if args.placement != "hash" and args.cache_partitions == 1:
        raise ReproError(
            "--placement adaptive needs --cache-partitions > 1: with one "
            "partition there is no placement to adapt"
        )
    grammar = default_shock_grammar()
    if args.query_class or args.shock:
        grammar = grammar | ScenarioGrammar(
            classes=tuple(args.query_class), shocks=tuple(args.shock))
    configs = [
        TenantExperimentConfig(
            scheme=name,
            tenant_count=args.n_tenants,
            query_count=args.queries,
            interarrival_s=args.interarrival,
            seed=args.seed,
            settlement_period_s=args.settlement_period,
            planning=args.planning,
            shocks=grammar.shocks,
            tenant_tiers=grammar.tiers,
            strict_maintenance=args.strict_maintenance,
            grammar=grammar,
        )
        for name in names
    ]
    sections: List[str] = []
    conservation_lines: List[str] = []
    with warnings.catch_warnings(record=True) as caught:
        for category in _RENDERED_WARNINGS:
            warnings.simplefilter("default", category)
        # The recorders observe the primary shocked cells; the scaling-mode
        # reruns below are byte-identity audits and stay unobserved.
        results = run_shock_resilience(configs, jobs=args.jobs,
                                       trace=trace, metrics=metrics)
        sections.append(shock_resilience_table(results))
        for item in results:
            if item.audit is None:
                conservation_lines.append(
                    f"{item.scheme}: conservation: n/a (no economy)")
            elif item.audit.exact:
                conservation_lines.append(
                    f"{item.scheme}: conservation: exact "
                    f"({item.audit.wallets_audited} wallets audited)")
            else:
                conservation_lines.append(
                    f"{item.scheme}: conservation: VIOLATED "
                    f"({item.audit.query_payments!r} != "
                    f"{item.audit.outcome_charges!r})")

        if args.shards > 1:
            # The sharded rerun must reproduce the plain shocked cells
            # byte for byte — replicated replay is fault-transparent.
            sharded = run_tenant_experiment(configs, jobs=args.jobs,
                                            shards=args.shards)
            for result, item in zip(sharded, results):
                identical = (result.summary == item.shocked.summary
                             and result.tenants == item.shocked.tenants
                             and result.wallet_credit
                             == item.shocked.wallet_credit)
                if not identical:
                    raise ReproError(
                        f"sharded shocked run diverged from the plain one "
                        f"for scheme {result.config.scheme!r}"
                    )
                conservation_lines.append(
                    f"{result.config.scheme}: --shards {args.shards} "
                    f"byte-identical under shocks")
        if args.cache_partitions > 1:
            # Partitioned mode needs an economy; the bypass baseline has
            # none and is skipped from the rerun with a note.
            part_configs = [config for config in configs
                            if config.scheme != "bypass"]
            if len(part_configs) < len(configs):
                conservation_lines.append(
                    "bypass: partitioned rerun skipped (no economy)")
            reports = run_partitioned_experiment(
                part_configs, partitions=args.cache_partitions,
                jobs=args.jobs, placement=args.placement,
                handoff_threshold=args.handoff_threshold,
                compare_baseline=False)
            for report in reports:
                exact = all(cp.query_payments == cp.outcome_charges
                            for cp in report.checkpoints)
                scheme = report.cell.config.scheme
                if exact:
                    conservation_lines.append(
                        f"{scheme}: conservation: exact across "
                        f"{report.partition_count} partitions "
                        f"({report.barriers_verified} barriers)")
                else:
                    conservation_lines.append(
                        f"{scheme}: conservation: VIOLATED in "
                        f"partitioned rerun")
                sections.append(distcache_partition_table(report))
                placement = distcache_placement_table(report)
                if placement is not None:
                    sections.append(placement)
    _render_warnings(caught)
    sections.append("\n".join(conservation_lines))
    return "\n\n".join(sections)


def _report_command(args: argparse.Namespace) -> str:
    artifacts = list(args.artifacts)
    if not artifacts:
        artifacts = sorted(glob.glob("BENCH_*.json"))
    bench_paths = [path for path in artifacts
                   if not path.endswith(".jsonl")]
    trace_paths = [path for path in artifacts if path.endswith(".jsonl")]
    gates = None
    if args.baseline is not None:
        if not os.path.isdir(args.baseline):
            raise ReproError(
                f"--baseline: directory {args.baseline!r} does not exist")
        from repro.obs.history import RegressionGates

        try:
            gates = RegressionGates(warn_slowdown=args.warn_slowdown,
                                    fail_slowdown=args.fail_slowdown)
        except ValueError as error:
            raise ReproError(f"--warn-slowdown/--fail-slowdown: {error}")
    grid_tables = None
    grid_profile = None
    if args.grids:
        grid_profile = args.grids_profile
        profile = _PROFILES[grid_profile]
        grid = run_grid(profile, jobs=args.grids_jobs)
        grid_tables = {
            "headline": headline_table(grid=grid),
            "figure4": figure4_table(grid=grid),
            "figure5": figure5_table(grid=grid),
        }
    targets = write_report_artifacts(bench_paths, args.out,
                                     trace_paths=trace_paths,
                                     force=args.force,
                                     baseline_dir=args.baseline,
                                     gates=gates,
                                     grid_tables=grid_tables,
                                     grid_profile=grid_profile)
    with open(targets["markdown"], "r", encoding="utf-8") as handle:
        markdown = handle.read()
    footer = "\n".join(f"wrote {path}" for _, path in sorted(targets.items()))
    return markdown + "\n" + footer


def _describe_command() -> str:
    system = CloudSystem()
    lines = [system.schema.describe(), ""]
    lines.append(f"candidate indexes: {len(system.candidate_indexes)}")
    pricing = system.execution_model.config.pricing
    lines.append(f"pricing: ${pricing.cpu_node_per_hour}/node-hour, "
                 f"${pricing.disk_gb_month}/GB-month, "
                 f"${pricing.network_gb}/GB transferred, "
                 f"${pricing.io_per_million}/million I/Os")
    return "\n".join(lines)


def _observed_schemes(args: argparse.Namespace) -> List[str]:
    """The scheme list an observed run covered, for its manifest."""
    if args.command in ("tenants", "shocks"):
        return (list(SCHEME_NAMES) if args.schemes == "all"
                else [name.strip() for name in args.schemes.split(",")
                      if name.strip()])
    if args.command in ("figure4", "figure5", "headline"):
        return list(_PROFILES[args.profile].schemes)
    return [args.scheme]


def _write_observability_artifacts(args: argparse.Namespace,
                                   trace: Optional[TraceRecorder],
                                   metrics,
                                   run_s: float,
                                   profile_top=None) -> None:
    """Emit trace/metrics JSONL artifacts, each with a run manifest
    (``PATH.manifest.json``) carrying the cProfile hotspots when the run
    profiled."""
    schemes = _observed_schemes(args)
    if args.command in ("figure4", "figure5", "headline"):
        seed = _PROFILES[args.profile].seed
    else:
        seed = args.seed
    config = {key: value for key, value in sorted(vars(args).items())
              if key not in ("trace", "metrics", "force")}
    artifacts = []
    if trace is not None:
        artifacts.append(("trace", args.trace, trace, len(trace)))
    if metrics is not None:
        artifacts.append(("metrics", getattr(args, "metrics", None),
                          metrics, len(metrics.samples)))
    for kind, path, recorder, size in artifacts:
        emit_started = time.perf_counter()
        recorder.write(path)
        emit_s = time.perf_counter() - emit_started
        extra = {f"{kind}_path": path,
                 ("trace_events" if kind == "trace"
                  else "metrics_samples"): size}
        if profile_top is not None:
            extra["profile_top"] = profile_top
        manifest = build_manifest(
            args.command,
            seed=seed,
            config=config,
            schemes=schemes,
            shards=getattr(args, "shards", 1),
            cache_partitions=getattr(args, "cache_partitions", 1),
            placement=getattr(args, "placement", "hash"),
            planning=args.planning,
            phase_timings_s={"run": run_s, f"emit_{kind}": emit_s},
            extra=extra,
        )
        manifest.write(path + ".manifest.json")


def _dispatch(args: argparse.Namespace,
              trace: Optional[TraceRecorder],
              metrics) -> str:
    """Route one parsed command to its driver."""
    if args.command in ("figure4", "figure5", "headline"):
        profile = _PROFILES[args.profile].with_overrides(
            planning=args.planning
        )
        return _figure_command(args.command, profile, args.jobs,
                               trace=trace)
    if args.command == "ablation":
        return _ablation_command(args.which, args.queries)
    if args.command == "scenario":
        return _scenario_command(args, trace=trace, metrics=metrics)
    if args.command == "tenants":
        return _tenants_command(args, trace=trace, metrics=metrics)
    if args.command == "shocks":
        return _shocks_command(args, trace=trace, metrics=metrics)
    if args.command == "report":
        return _report_command(args)
    return _describe_command()


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _validate_trace(parser, args)
    trace: Optional[TraceRecorder] = None
    if getattr(args, "trace", None) is not None:
        trace = TraceRecorder()
    metrics = None
    if getattr(args, "metrics", None) is not None:
        from repro.obs.metrics import MetricsTimeseries

        metrics = MetricsTimeseries()
    profiling = getattr(args, "profile", None) is True
    profiler = None
    run_started = time.perf_counter()
    try:
        if profiling:
            import cProfile

            profiler = cProfile.Profile()
            output = profiler.runcall(_dispatch, args, trace, metrics)
        else:
            output = _dispatch(args, trace, metrics)
    except ReproError as error:
        # Invalid values (e.g. --jobs 0) surface as library errors; report
        # them like argparse does instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2
    except FileExistsError as error:
        # The report pipeline's overwrite guard (mirrors --trace's).
        print(f"error: {error}", file=sys.stderr)
        return 2
    if trace is not None or metrics is not None:
        profile_top = None
        if profiler is not None:
            from repro.obs.manifest import profile_hotspots

            profile_top = profile_hotspots(profiler)
        _write_observability_artifacts(
            args, trace, metrics, time.perf_counter() - run_started,
            profile_top=profile_top)
    print(output)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
