"""Demand-driven structure placement: who *should* own each structure.

Hash placement (PR 4) pins every structure to its hash owner forever: a
partition whose tenants repeatedly pay the remote-access surcharge for a
hot foreign structure can never claim it. This module extends the source
paper's economy framing — cache residency priced by measured benefit —
to *placement*: the partition that derives the most priced benefit from
a structure should own it.

During an epoch every :class:`~repro.distcache.engine.PartitionedEconomyEngine`
tallies, per structure its chosen plans touched, the dollars the
:class:`~repro.distcache.engine.RemoteAccessModel` prices that use at:

* a **remote** access bids the surcharge actually paid — what the
  partition would save per epoch by owning the structure;
* a **local** access bids the surcharge the owner *would* pay were the
  structure foreign — the incumbent's defence, valued through the same
  model so the two sides are commensurable.

At each settlement barrier the drained bids feed a
:class:`PlacementPolicy`, which proposes deterministic ownership
handoffs: the highest bidder wins, ties break toward the lowest
partition index, and a **hysteresis threshold** demands the challenger
beat the incumbent by a margin — without it a structure two partitions
use equally would ping-pong at every barrier, paying the handoff's
directory churn for nothing. Decisions depend only on the *multiset* of
recorded bids (sums use :func:`math.fsum`, which is exact and therefore
permutation-invariant), pinned by a hypothesis property in
``tests/test_distcache_placement.py``.

The policy only proposes; the runner applies. An applied handoff updates
the :class:`~repro.distcache.partition.StructurePartitioner` override
table and transfers the structure's residency state and in-flight regret
to the new owner — no money moves, so the bitwise provider-sub-account
reconciliation is untouched (see ``docs/distcache.md``).

Example:
    >>> policy = PlacementPolicy(partition_count=2, handoff_threshold=0.5)
    >>> policy.record("column:a", partition=1, benefit=2.0)
    >>> policy.record("column:a", partition=0, benefit=1.0)
    >>> [(d.key, d.from_partition, d.to_partition)
    ...  for d in policy.propose({"column:a": 0})]
    [('column:a', 0, 1)]
    >>> policy.epochs_observed
    1
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.errors import DistCacheError


@dataclass(frozen=True)
class HandoffDecision:
    """One proposed ownership handoff and the bids that justified it."""

    key: str
    from_partition: int
    to_partition: int
    challenger_benefit: float
    incumbent_benefit: float

    @property
    def margin(self) -> float:
        """How much the challenger outbid the incumbent by."""
        return self.challenger_benefit - self.incumbent_benefit


@dataclass(frozen=True)
class HandoffRecord:
    """One handoff the runner actually applied, for the audit trail."""

    epoch: int
    key: str
    from_partition: int
    to_partition: int
    margin: float


class PlacementPolicy:
    """Tallies per-partition benefit per structure; proposes handoffs.

    Args:
        partition_count: partitions in the run; bids outside
            ``[0, partition_count)`` are rejected.
        handoff_threshold: the hysteresis margin (dollars per epoch): a
            challenger must exceed the incumbent's benefit by *more* than
            this to win the structure. ``0.0`` means any strictly
            positive margin triggers a handoff; equal bids never move a
            structure regardless (strict comparison), so placement is
            stable under symmetric demand.

    The tally is epoch-scoped: :meth:`propose` drains it, so each
    barrier's decisions reflect only the demand observed since the last
    one — stale demand cannot keep pulling a structure around.
    """

    def __init__(self, partition_count: int,
                 handoff_threshold: float = 0.0) -> None:
        if partition_count < 1:
            raise DistCacheError(
                f"partition_count must be >= 1, got {partition_count}")
        if not handoff_threshold >= 0:  # `not >=` also rejects NaN
            raise DistCacheError(
                f"handoff_threshold must be >= 0, got {handoff_threshold}")
        self._partition_count = partition_count
        self._threshold = handoff_threshold
        self._bids: Dict[str, Dict[int, List[float]]] = {}
        self._epochs_observed = 0

    # -- introspection ---------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Partitions this policy arbitrates between."""
        return self._partition_count

    @property
    def handoff_threshold(self) -> float:
        """The hysteresis margin in force."""
        return self._threshold

    @property
    def epochs_observed(self) -> int:
        """Barriers at which :meth:`propose` has been called."""
        return self._epochs_observed

    def pending_keys(self) -> List[str]:
        """Structure keys with bids recorded this epoch (sorted)."""
        return sorted(self._bids)

    # -- recording -------------------------------------------------------------

    def record(self, key: str, partition: int, benefit: float) -> None:
        """Record that ``partition`` derived ``benefit`` dollars from ``key``.

        Benefits accumulate as a multiset (summed exactly at decision
        time), so the handoff set is identical for any recording order.
        """
        if not key:
            raise DistCacheError("structure key must not be empty")
        if not 0 <= partition < self._partition_count:
            raise DistCacheError(
                f"bid partition must be in [0, {self._partition_count}), "
                f"got {partition}")
        if benefit < 0:
            raise DistCacheError(
                f"benefit must be non-negative, got {benefit}")
        self._bids.setdefault(key, {}).setdefault(partition, []).append(
            benefit)

    def record_all(self, partition: int,
                   bids: Mapping[str, float]) -> None:
        """Record one partition's drained per-structure epoch tallies."""
        for key, benefit in bids.items():
            self.record(key, partition, benefit)

    # -- decisions -------------------------------------------------------------

    def propose(self, owners: Mapping[str, int]) -> List[HandoffDecision]:
        """Drain the epoch's tallies into a deterministic handoff set.

        Args:
            owners: current owner of every key that may move (typically
                ``{key: partitioner.partition_of(key) for key in ...}``).
                Keys with bids but no entry here are skipped — the caller
                decides which structures are eligible (the runner only
                offers structures resident on their current owner, so a
                handoff always has residency state to transfer).

        Returns:
            Decisions in key-sorted order. For each key the challenger is
            the partition with the exactly-summed highest benefit (ties
            break toward the lowest index); it wins only when it is not
            the incumbent and its benefit exceeds the incumbent's by more
            than the hysteresis threshold.
        """
        decisions: List[HandoffDecision] = []
        for key in sorted(self._bids):
            owner = owners.get(key)
            if owner is None:
                continue
            if not 0 <= owner < self._partition_count:
                raise DistCacheError(
                    f"owner of {key!r} is partition {owner}, outside "
                    f"[0, {self._partition_count})")
            totals = {
                partition: math.fsum(amounts)
                for partition, amounts in self._bids[key].items()
            }
            incumbent_benefit = totals.get(owner, 0.0)
            challenger, challenger_benefit = min(
                totals.items(), key=lambda item: (-item[1], item[0]))
            if challenger == owner:
                continue
            if not challenger_benefit > incumbent_benefit + self._threshold:
                continue
            decisions.append(HandoffDecision(
                key=key,
                from_partition=owner,
                to_partition=challenger,
                challenger_benefit=challenger_benefit,
                incumbent_benefit=incumbent_benefit,
            ))
        self._bids.clear()
        self._epochs_observed += 1
        return decisions
