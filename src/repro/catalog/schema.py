"""Analytic schema objects: tables, columns and index definitions.

The schema is the ground truth the rest of the system consults for sizes:

* the workload generator asks for column sizes to compute result sizes,
* the cache manager accounts disk space per cached column or index,
* the cost model converts sizes into network-transfer and storage costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError, UnknownColumnError, UnknownTableError


@dataclass(frozen=True)
class Column:
    """A column of a back-end table.

    Attributes:
        table_name: name of the owning table.
        name: column name, unique within the table.
        width_bytes: average on-disk width of one value.
        distinct_fraction: number of distinct values divided by the row count
            of the table; used by the selectivity estimator.
    """

    table_name: str
    name: str
    width_bytes: int
    distinct_fraction: float = 1.0

    def __post_init__(self) -> None:
        if self.width_bytes <= 0:
            raise SchemaError(
                f"column {self.qualified_name} must have positive width, "
                f"got {self.width_bytes}"
            )
        if not 0.0 < self.distinct_fraction <= 1.0:
            raise SchemaError(
                f"column {self.qualified_name} distinct_fraction must be in (0, 1], "
                f"got {self.distinct_fraction}"
            )

    @property
    def qualified_name(self) -> str:
        """``table.column`` name used throughout logs and structure keys."""
        return f"{self.table_name}.{self.name}"


@dataclass(frozen=True)
class Table:
    """A back-end table: a row count plus an ordered list of columns."""

    name: str
    row_count: int
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        if self.row_count <= 0:
            raise SchemaError(f"table {self.name!r} must have positive row count")
        if not self.columns:
            raise SchemaError(f"table {self.name!r} must have at least one column")
        seen = set()
        for column in self.columns:
            if column.table_name != self.name:
                raise SchemaError(
                    f"column {column.qualified_name} does not belong to table {self.name!r}"
                )
            if column.name in seen:
                raise SchemaError(f"duplicate column {column.qualified_name}")
            seen.add(column.name)

    @property
    def row_width_bytes(self) -> int:
        """Average width of a full row."""
        return sum(column.width_bytes for column in self.columns)

    @property
    def size_bytes(self) -> int:
        """Total on-disk size of the table."""
        return self.row_width_bytes * self.row_count

    def column(self, name: str) -> Column:
        """Return the column called ``name`` or raise :class:`UnknownColumnError`."""
        for column in self.columns:
            if column.name == name:
                return column
        raise UnknownColumnError(self.name, name)

    def has_column(self, name: str) -> bool:
        """Return whether the table defines a column called ``name``."""
        return any(column.name == name for column in self.columns)

    def column_size_bytes(self, name: str) -> int:
        """On-disk size of one column across all rows."""
        return self.column(name).width_bytes * self.row_count


@dataclass(frozen=True)
class Index:
    """Definition of a candidate index over one table.

    The index is described analytically: its size is the size of the key
    columns plus a per-row pointer overhead, and ``lookup_reduction`` is the
    fraction of the table's I/O that a plan using the index still performs.
    """

    name: str
    table_name: str
    column_names: Tuple[str, ...]
    pointer_bytes: int = 8

    def __post_init__(self) -> None:
        if not self.column_names:
            raise SchemaError(f"index {self.name!r} must cover at least one column")
        if len(set(self.column_names)) != len(self.column_names):
            raise SchemaError(f"index {self.name!r} repeats a column")
        if self.pointer_bytes <= 0:
            raise SchemaError(f"index {self.name!r} must have positive pointer width")

    def size_bytes(self, schema: "Schema") -> int:
        """On-disk size of the index against ``schema``."""
        table = schema.table(self.table_name)
        key_width = sum(table.column(name).width_bytes for name in self.column_names)
        return (key_width + self.pointer_bytes) * table.row_count

    def covers(self, table_name: str, column_names: Iterable[str]) -> bool:
        """Return whether the index key is a superset of ``column_names``."""
        if table_name != self.table_name:
            return False
        return set(column_names).issubset(self.column_names)


class Schema:
    """A queryable collection of tables and candidate index definitions."""

    def __init__(self, tables: Sequence[Table],
                 indexes: Optional[Sequence[Index]] = None) -> None:
        self._tables: Dict[str, Table] = {}
        for table in tables:
            if table.name in self._tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self._tables[table.name] = table
        self._indexes: Dict[str, Index] = {}
        for index in indexes or ():
            self.add_index(index)

    # -- tables -------------------------------------------------------------

    @property
    def table_names(self) -> List[str]:
        """Names of all tables, in insertion order."""
        return list(self._tables)

    def tables(self) -> Iterator[Table]:
        """Iterate over all tables."""
        return iter(self._tables.values())

    def table(self, name: str) -> Table:
        """Return the table called ``name`` or raise :class:`UnknownTableError`."""
        try:
            return self._tables[name]
        except KeyError:
            raise UnknownTableError(name) from None

    def has_table(self, name: str) -> bool:
        """Return whether the schema defines a table called ``name``."""
        return name in self._tables

    def column(self, table_name: str, column_name: str) -> Column:
        """Return one column, validating both table and column names."""
        return self.table(table_name).column(column_name)

    @property
    def total_size_bytes(self) -> int:
        """Total on-disk size of the database."""
        return sum(table.size_bytes for table in self._tables.values())

    @property
    def total_row_count(self) -> int:
        """Total number of rows across all tables."""
        return sum(table.row_count for table in self._tables.values())

    # -- indexes ------------------------------------------------------------

    def add_index(self, index: Index) -> None:
        """Register a candidate index definition, validating its columns."""
        if index.name in self._indexes:
            raise SchemaError(f"duplicate index {index.name!r}")
        table = self.table(index.table_name)
        for column_name in index.column_names:
            if not table.has_column(column_name):
                raise UnknownColumnError(index.table_name, column_name)
        self._indexes[index.name] = index

    @property
    def index_names(self) -> List[str]:
        """Names of all candidate indexes, in insertion order."""
        return list(self._indexes)

    def indexes(self) -> Iterator[Index]:
        """Iterate over all candidate index definitions."""
        return iter(self._indexes.values())

    def index(self, name: str) -> Index:
        """Return the index definition called ``name``."""
        try:
            return self._indexes[name]
        except KeyError:
            raise SchemaError(f"unknown index: {name!r}") from None

    def indexes_on(self, table_name: str) -> List[Index]:
        """All candidate indexes defined over ``table_name``."""
        return [index for index in self._indexes.values()
                if index.table_name == table_name]

    # -- misc ----------------------------------------------------------------

    def describe(self) -> str:
        """Human-readable multi-line summary used by the examples."""
        lines = [f"Schema: {len(self._tables)} tables, "
                 f"{self.total_size_bytes / 1e12:.2f} TB, "
                 f"{len(self._indexes)} candidate indexes"]
        for table in self._tables.values():
            lines.append(
                f"  {table.name}: {table.row_count:,} rows x "
                f"{table.row_width_bytes} B = {table.size_bytes / 1e9:.1f} GB, "
                f"{len(table.columns)} columns"
            )
        return "\n".join(lines)
