"""The multi-tenant population experiment: any scheme over N tenants.

One cell = one scheme replayed over a Zipf-skewed, optionally churning
tenant population. Cells are independent — each rebuilds its system,
population, and registry deterministically from the frozen config — so a
multi-scheme run fans out over a ``ProcessPoolExecutor`` exactly like the
figure grids, and the parallel tables are byte-identical to sequential
ones. With ``shards > 1`` each cell is additionally split into tenant
shards executed through :mod:`repro.sharding` and merged exactly, which
is byte-identical too. (The other scaling mode — partitioning the cache
and provider economy themselves, with explicitly different semantics —
lives in :mod:`repro.distcache` and is reached through the CLI's
``--cache-partitions`` or :func:`repro.distcache.run_partitioned_cell`.)

The per-tenant outputs join two sources: the step records (queries, cache
hits, charges — available for every scheme) and the tenant registry
(wallet balances, per-tenant regret — available for the econ-* schemes,
whose engine runs the multi-tenant economy).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.economy.engine import EconomyConfig, PLANNING_MODES, PLANNING_SCALAR
from repro.economy.tenancy import TenantRegistry
from repro.errors import ExperimentError
from repro.experiments.reporting import distribution_cells, format_table
from repro.policies.economic import EconomicSchemeConfig
from repro.policies.factory import SCHEME_NAMES
from repro.simulator.metrics import MetricsSummary, TenantBreakdown
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.system import CloudSystem
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.grammar import (
    ScenarioGrammar,
    ShockSpec,
    TenantTier,
    apply_tenant_tiers,
    compile_shock_events,
    compile_shock_events_for_span,
)
from repro.workload.population import (
    GenerativeProfileSource,
    PopulatedWorkload,
    PopulationSpec,
    TenantPopulation,
)

#: Arrival modes: ``eager`` materialises the populated workload up front
#: (the original path); ``streamed`` feeds the kernel from a lazy
#: generator with a generative tenant registry, bounding memory by the
#: concurrently live tenants instead of the population. Outputs are
#: byte-identical (the streamed fidelity gate).
ARRIVAL_EAGER = "eager"
ARRIVAL_STREAMED = "streamed"
ARRIVAL_MODES = (ARRIVAL_EAGER, ARRIVAL_STREAMED)


@dataclass(frozen=True)
class TenantExperimentConfig:
    """One population cell: a scheme plus the workload/population shape.

    Frozen (hashable, picklable) so cells can ship to worker processes.
    """

    scheme: str = "econ-cheap"
    tenant_count: int = 100
    query_count: int = 400
    interarrival_s: float = 10.0
    seed: int = 0
    zipf_exponent: float = 1.1
    initial_credit: float = 50.0
    budget_sigma: float = 0.0
    churn_period: int = 0
    churn_fraction: float = 0.1
    warmup_queries: int = 0
    settlement_period_s: Optional[float] = None
    planning: str = PLANNING_SCALAR
    shocks: Tuple[ShockSpec, ...] = ()
    tenant_tiers: Tuple[TenantTier, ...] = ()
    strict_maintenance: bool = False
    grammar: Optional[ScenarioGrammar] = None
    arrival_mode: str = ARRIVAL_EAGER

    def __post_init__(self) -> None:
        if self.scheme not in SCHEME_NAMES:
            raise ExperimentError(
                f"unknown scheme {self.scheme!r}; expected one of "
                f"{', '.join(SCHEME_NAMES)}"
            )
        if self.query_count <= 0:
            raise ExperimentError("query_count must be positive")
        if self.settlement_period_s is not None and self.settlement_period_s <= 0:
            raise ExperimentError("settlement_period_s must be positive")
        if self.planning not in PLANNING_MODES:
            raise ExperimentError(
                f"planning must be one of {PLANNING_MODES}, "
                f"got {self.planning!r}"
            )
        if self.arrival_mode not in ARRIVAL_MODES:
            raise ExperimentError(
                f"arrival_mode must be one of {ARRIVAL_MODES}, "
                f"got {self.arrival_mode!r}"
            )
        if self.arrival_mode == ARRIVAL_STREAMED:
            if self.planning != PLANNING_SCALAR:
                raise ExperimentError(
                    "streamed arrivals require scalar planning: batched "
                    "planners prime whole epochs up front, which is "
                    "exactly what streaming avoids"
                )
            if self.grammar is not None:
                raise ExperimentError(
                    "streamed arrivals do not support grammar-composed "
                    "scenarios yet: a compiled scenario materialises its "
                    "query stream by construction"
                )

    def population_spec(self) -> PopulationSpec:
        """The population half of the configuration."""
        return PopulationSpec(
            tenant_count=self.tenant_count,
            zipf_exponent=self.zipf_exponent,
            initial_credit=self.initial_credit,
            budget_sigma=self.budget_sigma,
            churn_period=self.churn_period,
            churn_fraction=self.churn_fraction,
            seed=self.seed,
        )

    def workload_spec(self) -> WorkloadSpec:
        """The workload half of the configuration."""
        return WorkloadSpec(
            query_count=self.query_count,
            interarrival_s=self.interarrival_s,
            seed=self.seed,
        )


@dataclass(frozen=True)
class TenantCellResult:
    """Everything one population cell produced."""

    config: TenantExperimentConfig
    summary: MetricsSummary
    tenants: Tuple[TenantBreakdown, ...]
    wallet_credit: Tuple[Tuple[str, float], ...]
    population_size: int
    churn_waves: int

    def wallet_by_tenant(self) -> Dict[str, float]:
        """Wallet balances as a dict (empty for schemes with no registry)."""
        return dict(self.wallet_credit)


def build_population(config: TenantExperimentConfig) -> PopulatedWorkload:
    """Generate the populated workload a cell replays (deterministic).

    Shared by the plain, sharded, and partitioned execution paths, so
    every mode sees the identical population — including the SLA-tier
    rewrite when the config carries ``tenant_tiers``, and the
    grammar-composed query stream (weighted classes, flash crowds) when
    it carries a ``grammar``.
    """
    if config.grammar is not None:
        compiled = config.grammar.compile(
            query_count=config.query_count,
            interarrival_s=config.interarrival_s,
            seed=config.seed,
        )
        workload = list(compiled.queries)
    else:
        workload = WorkloadGenerator(config.workload_spec()).generate()
    populated = TenantPopulation(config.population_spec()).populate(workload)
    return apply_tenant_tiers(populated, config.tenant_tiers,
                              seed=config.seed)


def run_tenant_cell(config: TenantExperimentConfig,
                    trace=None, metrics=None) -> TenantCellResult:
    """Run one scheme over one populated workload.

    The econ-* schemes get a :class:`TenantRegistry` pre-loaded with the
    population's profiles, making their pricing/negotiation tenant-aware;
    the bypass baseline has no economy, so only its step-level tenant
    metrics are populated (wallets stay empty).

    Args:
        config: the frozen cell configuration.
        trace: optional :class:`~repro.obs.trace.TraceRecorder`; attaching
            one is observation-only — the cell result stays byte-identical
            to the untraced run (the zero-perturbation contract).
        metrics: optional :class:`~repro.obs.metrics.MetricsTimeseries`
            sampled at every settlement barrier under the same contract.
    """
    if config.arrival_mode == ARRIVAL_STREAMED:
        return _run_streamed_cell(config, trace=trace, metrics=metrics)
    populated = build_population(config)
    system = CloudSystem()
    registry: Optional[TenantRegistry] = None
    if config.scheme == "bypass":
        scheme = system.scheme(config.scheme)
    else:
        registry = TenantRegistry()
        registry.register_all(populated.profiles)
        scheme = system.scheme(
            config.scheme, economic_config=EconomicSchemeConfig(
                economy=EconomyConfig(
                    planning=config.planning,
                    strict_maintenance=config.strict_maintenance,
                ),
                tenants=registry,
            )
        )
    observers = []
    if trace is not None or metrics is not None:
        from repro.obs.metrics import attach_observability

        observers = attach_observability(scheme, trace=trace,
                                         metrics=metrics)
    simulation = CloudSimulation(
        scheme, SimulationConfig(
            warmup_queries=config.warmup_queries,
            settlement_period_s=config.settlement_period_s,
        )
    )
    result = simulation.run(
        populated.queries,
        tenant_lifecycle=populated.lifecycle,
        observers=observers,
        shock_events=compile_shock_events(config.shocks, populated.queries),
    )

    breakdowns = sorted_breakdowns(result.steps)
    wallets: Tuple[Tuple[str, float], ...] = ()
    if registry is not None:
        wallets = tuple(registry.credit_by_tenant().items())
    return TenantCellResult(
        config=config,
        summary=result.summary,
        tenants=breakdowns,
        wallet_credit=wallets,
        population_size=populated.tenant_count,
        churn_waves=populated.churn_waves,
    )


def _run_streamed_cell(config: TenantExperimentConfig,
                       trace=None, metrics=None) -> TenantCellResult:
    """Run one cell with streamed arrivals and a generative registry.

    Nothing population-sized is materialised: queries flow from the
    workload generator through a
    :class:`~repro.workload.population.PopulationStream` into the kernel's
    lookahead window, and tenant profiles derive on demand inside a
    :class:`~repro.economy.tenancy.GenerativeTenantRegistry`. Per-cell
    memory is bounded by the concurrently live (and charged) tenants plus
    the arrival-time array — never by ``tenant_count``. The result is
    byte-identical to the eager cell over the same config (the fidelity
    gate pinned by the equivalence tests and the CI scale-smoke diff).
    """
    from repro.economy.tenancy import GenerativeTenantRegistry

    population_spec = config.population_spec()
    source = GenerativeProfileSource(spec=population_spec,
                                     tiers=config.tenant_tiers)
    generator = WorkloadGenerator(config.workload_spec())
    envelope = generator.arrival_envelope()
    stream = TenantPopulation(population_spec).stream(
        generator.iter_queries(), source=source
    )
    system = CloudSystem()
    registry = None
    if config.scheme == "bypass":
        scheme = system.scheme(config.scheme)
    else:
        registry = GenerativeTenantRegistry(source)
        scheme = system.scheme(
            config.scheme, economic_config=EconomicSchemeConfig(
                economy=EconomyConfig(
                    planning=config.planning,
                    strict_maintenance=config.strict_maintenance,
                ),
                tenants=registry,
            )
        )
    observers = []
    if trace is not None or metrics is not None:
        from repro.obs.metrics import attach_observability

        # rss=True: the memory bound is the whole point of this path, so
        # the sampler additionally gauges the process peak RSS (which is
        # why streamed metrics files are not byte-reproducible run to
        # run — the rendered tables still are).
        observers = attach_observability(scheme, trace=trace,
                                         metrics=metrics, rss=True)
    simulation = CloudSimulation(
        scheme, SimulationConfig(
            warmup_queries=config.warmup_queries,
            settlement_period_s=config.settlement_period_s,
        )
    )
    result = simulation.run_streamed(
        stream, envelope,
        observers=observers,
        shock_events=compile_shock_events_for_span(
            config.shocks, envelope.start_s, envelope.last_s
        ),
    )

    breakdowns = sorted_breakdowns(result.steps)
    wallets: Tuple[Tuple[str, float], ...] = ()
    if registry is not None:
        wallets = tuple(registry.credit_by_tenant().items())
    return TenantCellResult(
        config=config,
        summary=result.summary,
        tenants=breakdowns,
        wallet_credit=wallets,
        population_size=stream.tenants_minted,
        churn_waves=stream.churn_events,
    )


def sorted_breakdowns(steps) -> Tuple[TenantBreakdown, ...]:
    """Per-tenant breakdowns, busiest tenant first (ties by id).

    The ``(-query_count, tenant_id)`` key is a *total* order (ids are
    unique), so any disjoint union of per-tenant breakdowns re-sorts to
    the same sequence — the property the sharded merge relies on.
    """
    from repro.simulator.metrics import breakdown_by_tenant

    breakdowns = breakdown_by_tenant(steps)
    return tuple(sorted(
        breakdowns.values(),
        key=lambda item: (-item.query_count, item.tenant_id),
    ))


def run_tenant_experiment(configs: Sequence[TenantExperimentConfig],
                          jobs: Optional[int] = None,
                          shards: Optional[int] = None,
                          trace=None,
                          metrics=None) -> List[TenantCellResult]:
    """Run many population cells, optionally fanned over worker processes.

    Args:
        configs: the cells to run (typically one per scheme).
        jobs: worker processes; ``None`` or 1 runs sequentially. Results
            come back in ``configs`` order either way, and each cell is
            deterministic, so the parallel path is byte-identical.
        shards: when > 1, each cell is additionally split into this many
            tenant shards executed through :mod:`repro.sharding` and merged
            exactly; the merged cells are byte-identical to the unsharded
            ones. ``jobs`` then sizes the process pool the ``cells x
            shards`` tasks share.
        trace: optional :class:`~repro.obs.trace.TraceRecorder` the whole
            experiment records into. Sharded cells run per-shard recorders
            (merged at the barriers) which are absorbed here; the unsharded
            traced path runs cells sequentially so records land in one
            recorder — the cell *results* are identical either way.
        metrics: optional :class:`~repro.obs.metrics.MetricsTimeseries`
            handled symmetrically to ``trace`` (per-shard collectors
            absorbed from the merge reports; observed unsharded cells run
            sequentially).
    """
    cells = list(configs)
    if not cells:
        raise ExperimentError("at least one tenant cell is required")
    worker_count = 1 if jobs is None else int(jobs)
    if worker_count < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    shard_count = 1 if shards is None else int(shards)
    if shard_count < 1:
        raise ExperimentError(f"shards must be >= 1, got {shards}")
    if shard_count > 1:
        # Imported lazily: repro.sharding builds on this module.
        from repro.sharding import ShardCoordinator

        coordinator = ShardCoordinator(shard_count, max_workers=worker_count,
                                       trace=trace is not None,
                                       metrics=metrics is not None)
        reports = coordinator.run_cells(cells)
        if trace is not None:
            for report in reports:
                if report.trace is not None:
                    trace.absorb(report.trace)
        if metrics is not None:
            for report in reports:
                if report.metrics is not None:
                    metrics.absorb(report.metrics)
        return [report.cell for report in reports]
    if trace is not None or metrics is not None:
        return [run_tenant_cell(config, trace=trace, metrics=metrics)
                for config in cells]
    if worker_count == 1 or len(cells) == 1:
        return [run_tenant_cell(config) for config in cells]
    with ProcessPoolExecutor(
            max_workers=min(worker_count, len(cells))) as executor:
        return list(executor.map(run_tenant_cell, cells))


# -- tables --------------------------------------------------------------------


def tenant_aggregate_table(result: TenantCellResult) -> str:
    """The per-tenant aggregate table of one cell (credit, hit rate, load)."""
    config = result.config
    hit_rates = [item.cache_hit_rate for item in result.tenants]
    loads = [float(item.query_count) for item in result.tenants]
    charges = [item.total_charge for item in result.tenants]
    rows: List[List[object]] = [
        ["tenants ever active", result.population_size, "", ""],
        ["tenants with traffic", len(result.tenants), "", ""],
        ["churn waves", result.churn_waves, "", ""],
        ["queries/tenant"] + distribution_cells(loads),
        ["cache hit rate"] + distribution_cells(hit_rates),
        ["charge/tenant"] + distribution_cells(charges),
    ]
    wallets = [credit for _, credit in result.wallet_credit]
    if wallets:
        rows.append(["wallet credit"] + distribution_cells(wallets))
    title = (f"Tenants - {config.scheme} x {config.tenant_count} tenants "
             f"({config.query_count} queries)")
    return format_table(["metric", "mean", "min", "max"], rows, title=title)


def top_tenant_table(result: TenantCellResult, limit: int = 10) -> str:
    """The busiest ``limit`` tenants of one cell, one row each."""
    wallets = result.wallet_by_tenant()
    headers = ["tenant", "queries", "hit_rate", "charge", "profit", "credit"]
    rows: List[List[object]] = []
    for item in result.tenants[:limit]:
        credit = wallets.get(item.tenant_id)
        rows.append([
            item.tenant_id,
            item.query_count,
            item.cache_hit_rate,
            item.total_charge,
            item.total_profit,
            credit if credit is not None else "-",
        ])
    return format_table(
        headers, rows,
        title=f"Top {min(limit, len(result.tenants))} tenants by traffic",
    )
