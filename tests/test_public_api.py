"""Tests for the package's public API surface and error hierarchy."""

import pytest

import repro
from repro import errors


class TestPublicExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version_is_exposed(self):
        assert repro.__version__

    def test_scheme_names_are_exported(self):
        assert repro.SCHEME_NAMES == ("bypass", "econ-col", "econ-cheap", "econ-fast")

    def test_quickstart_surface(self, small_workload):
        """The README quickstart snippet works against the public API only."""
        system = repro.CloudSystem()
        result = repro.run_scheme(system.scheme("econ-col"), small_workload[:30])
        assert result.summary.operating_cost > 0


class TestErrorHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        error_classes = [
            value for value in vars(errors).values()
            if isinstance(value, type) and issubclass(value, Exception)
            and value is not errors.ReproError
        ]
        assert error_classes
        for error_class in error_classes:
            assert issubclass(error_class, errors.ReproError), error_class

    def test_unknown_table_error_carries_the_name(self):
        error = errors.UnknownTableError("moon_rocks")
        assert error.table_name == "moon_rocks"
        assert "moon_rocks" in str(error)

    def test_unknown_column_error_carries_both_names(self):
        error = errors.UnknownColumnError("lineitem", "l_mystery")
        assert error.table_name == "lineitem"
        assert error.column_name == "l_mystery"

    def test_specific_errors_can_be_caught_as_repro_error(self, schema):
        with pytest.raises(errors.ReproError):
            schema.table("not_a_table")

    def test_configuration_errors_are_distinct_from_schema_errors(self):
        assert not issubclass(errors.SchemaError, errors.ConfigurationError)
        assert issubclass(errors.PricingError, errors.ConfigurationError)
