"""Trace spans and counters with a zero-perturbation contract.

A :class:`TraceRecorder` is an append-only sink: components that carry one
(the economy engine, the cache manager, the batch scheduler, the kernel
observer) call :meth:`TraceRecorder.count` / :meth:`TraceRecorder.event`
behind a single ``if self._trace is not None`` check, so the hot loop pays
one attribute test when tracing is off and a list append when it is on.

The hard invariant — enforced by the observer-purity test suite and the CI
byte-diff — is that attaching recorders changes **nothing** about a run:
recorders never read or advance RNG state, never touch account arithmetic,
and only observe values the run computed anyway. Everything a recorder
stores is plain picklable data, so per-shard and per-partition recorders
travel through ``ProcessPoolExecutor`` round-trips inside their host
objects and are merged at the coordinator (alongside the settlement
checkpoints) with :meth:`TraceRecorder.absorb`.

Emission is deterministic: :meth:`TraceRecorder.jsonl_lines` sorts records
by ``(time_s, source, sequence)`` and serializes with sorted keys, so the
same run always produces the same bytes.

Example:
    >>> recorder = TraceRecorder(source="demo")
    >>> recorder.count("cache:admit")
    >>> recorder.event("handoff", time_s=30.0, key="index:a", owner=1)
    >>> [line.startswith('{"') for line in recorder.jsonl_lines()]
    [True, True, True]
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.simulator.events import (
    Event,
    MaintenanceSettlementEvent,
    QueryArrivalEvent,
)

#: Bumped whenever the JSONL record shape changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: One stored record: ``(time_s, sequence, source, kind, fields)``.
TraceRecord = Tuple[float, int, str, str, Dict[str, object]]


class TraceRecorder:
    """Append-only sink for trace events and counters.

    Args:
        source: label stamped on every record this recorder produces
            (``"run"`` for the main path, ``"shard3"`` / ``"partition1"``
            for per-worker recorders merged later).
    """

    def __init__(self, source: str = "run") -> None:
        self.source = source
        self._records: List[TraceRecord] = []
        self._counters: Dict[str, Dict[str, int]] = {}
        self._sequence = 0

    # -- recording ---------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter of this recorder's source."""
        bucket = self._counters.setdefault(self.source, {})
        bucket[name] = bucket.get(name, 0) + n

    def event(self, kind: str, time_s: float, **fields: object) -> None:
        """Record one timestamped event."""
        self._records.append(
            (time_s, self._sequence, self.source, kind, fields))
        self._sequence += 1

    def span(self, kind: str, start_s: float, end_s: float,
             **fields: object) -> None:
        """Record a span (timestamped at its end, duration derived)."""
        self.event(kind, time_s=end_s, start_s=start_s,
                   duration_s=end_s - start_s, **fields)

    # -- introspection -----------------------------------------------------

    @property
    def records(self) -> Tuple[TraceRecord, ...]:
        """Every record, in append order."""
        return tuple(self._records)

    @property
    def counters(self) -> Dict[str, Dict[str, int]]:
        """Counters per source (a copy)."""
        return {source: dict(bucket)
                for source, bucket in self._counters.items()}

    def counter(self, name: str, source: Optional[str] = None) -> int:
        """One counter's value (defaults to this recorder's own source)."""
        bucket = self._counters.get(source or self.source, {})
        return bucket.get(name, 0)

    def __len__(self) -> int:
        return len(self._records)

    # -- merging -----------------------------------------------------------

    def absorb(self, other: "TraceRecorder") -> None:
        """Fold another recorder's records and counters into this one.

        Records keep their original source tag and per-source sequence,
        so a merged recorder still sorts deterministically; counters merge
        per source (summing only within the same source — per-shard
        replicated counters are reported per shard, never double-counted).
        """
        self._records.extend(other._records)
        for source, bucket in other._counters.items():
            target = self._counters.setdefault(source, {})
            for name, value in bucket.items():
                target[name] = target.get(name, 0) + value

    # -- emission ----------------------------------------------------------

    def jsonl_lines(self) -> List[str]:
        """The trace as sorted JSONL lines (deterministic bytes).

        Line 1 is a header carrying the schema version; then every event
        record sorted by ``(time_s, source, sequence)``; then one counter
        line per ``(source, counter)`` pair in sorted order.
        """
        lines = [json.dumps(
            {"kind": "trace_header",
             "schema_version": TRACE_SCHEMA_VERSION,
             "events": len(self._records),
             "sources": sorted({record[2] for record in self._records}
                               | set(self._counters))},
            sort_keys=True)]
        ordered = sorted(self._records,
                         key=lambda record: (record[0], record[2], record[1]))
        for time_s, sequence, source, kind, fields in ordered:
            payload = {"kind": kind, "time_s": time_s, "source": source,
                       "seq": sequence}
            payload.update(fields)
            lines.append(json.dumps(payload, sort_keys=True))
        for source in sorted(self._counters):
            bucket = self._counters[source]
            for name in sorted(bucket):
                lines.append(json.dumps(
                    {"kind": "counter", "source": source, "name": name,
                     "value": bucket[name]},
                    sort_keys=True))
        return lines

    def write(self, path: str) -> None:
        """Write the trace as JSONL to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")


class KernelTraceObserver:
    """Read-only kernel observer: dispatch counts + settlement spans.

    Registered for the base :class:`~repro.simulator.events.Event` type
    through the standard ``run(observers=...)`` hook, so it sees every
    dispatched event *after* the built-in handlers ran (observers register
    last). It counts dispatches per event class and records a
    ``settlement_barrier`` span from the previous barrier (or the first
    observed instant) to each maintenance settlement, tagged with the
    kernel's query-dispatch progress — the same quantity the sharding
    layer's :class:`~repro.sharding.worker.SettlementCheckpoint` snapshots.
    """

    def __init__(self, recorder: TraceRecorder) -> None:
        self._recorder = recorder
        self._span_start: Optional[float] = None

    def __call__(self, event: Event, kernel) -> None:
        recorder = self._recorder
        recorder.count(f"event:{type(event).__name__}")
        if self._span_start is None:
            self._span_start = event.time_s
        if isinstance(event, MaintenanceSettlementEvent):
            recorder.span(
                "settlement_barrier",
                start_s=self._span_start,
                end_s=event.time_s,
                queries_dispatched=kernel.dispatch_count(QueryArrivalEvent),
                events_dispatched=kernel.dispatch_count(),
                final=event.final,
            )
            self._span_start = event.time_s


def kernel_observer_pair(recorder: TraceRecorder):
    """The ``(event type, handler)`` pair ``run(observers=...)`` expects."""
    return (Event, KernelTraceObserver(recorder))
