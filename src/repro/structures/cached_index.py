"""Cached index structures.

Section V-C prices an index build as the cost of sorting its key columns
(emulated as running ``select A, B from T order by A, B`` in the cache) plus
the cost of first transferring any key column that is not yet cached
(Eq. 14). Maintenance is pure disk-space cost (Eq. 15) because the paper
assumes static back-end data.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.catalog.schema import Index, Schema
from repro.errors import ConfigurationError
from repro.structures.base import CacheStructure, StructureKind
from repro.structures.cached_column import CachedColumn


class CachedIndex(CacheStructure):
    """An index over one or more columns of a back-end table, built in the cache."""

    def __init__(self, table_name: str, column_names: Tuple[str, ...],
                 pointer_bytes: int = 8) -> None:
        if not column_names:
            raise ConfigurationError("an index must cover at least one column")
        if len(set(column_names)) != len(column_names):
            raise ConfigurationError(
                f"index on {table_name!r} repeats a column: {column_names}"
            )
        self._table_name = table_name
        self._column_names = tuple(column_names)
        self._pointer_bytes = pointer_bytes
        # Key strings and required-column tuples are read on every pricing
        # pass; build them once.
        columns = ",".join(self._column_names)
        self._key = f"index:{table_name}({columns})"
        self._required_columns: Optional[Tuple[CachedColumn, ...]] = None

    @classmethod
    def from_definition(cls, definition: Index) -> "CachedIndex":
        """Build the cache structure corresponding to a catalog index definition."""
        return cls(
            table_name=definition.table_name,
            column_names=definition.column_names,
            pointer_bytes=definition.pointer_bytes,
        )

    @property
    def table_name(self) -> str:
        """Name of the indexed table."""
        return self._table_name

    @property
    def column_names(self) -> Tuple[str, ...]:
        """Key columns, in index order."""
        return self._column_names

    @property
    def leading_column(self) -> str:
        """The first key column, which determines which predicates the index serves."""
        return self._column_names[0]

    @property
    def kind(self) -> StructureKind:
        return StructureKind.INDEX

    @property
    def key(self) -> str:
        return self._key

    def size_bytes(self, schema: Schema) -> int:
        """Key width plus a per-row pointer, times the table's row count."""
        table = schema.table(self._table_name)
        key_width = sum(
            table.column(name).width_bytes for name in self._column_names
        )
        return (key_width + self._pointer_bytes) * table.row_count

    def required_columns(self) -> Tuple[CachedColumn, ...]:
        """The cached-column structures the index build needs in the cache."""
        if self._required_columns is None:
            self._required_columns = tuple(
                CachedColumn(self._table_name, name)
                for name in self._column_names
            )
        return self._required_columns

    def serves_predicate_on(self, table_name: str, column_name: str) -> bool:
        """Whether the index can accelerate a predicate on ``table.column``.

        Only the leading column is usable for a single-predicate lookup,
        matching the usual B-tree prefix rule.
        """
        return table_name == self._table_name and column_name == self.leading_column

    def covers_columns(self, table_name: str, column_names) -> bool:
        """Whether the index key contains all of ``column_names`` of ``table_name``."""
        if table_name != self._table_name:
            return False
        return set(column_names).issubset(self._column_names)
