"""Tests for the cross-shard directory and its consistency invariants."""

import pickle

import pytest

from repro.distcache import CrossShardDirectory, StructurePartitioner
from repro.errors import DistCacheError


def _owned_key(partitioner, partition, base="column:t.c"):
    """A key whose hash-owner is ``partition`` (search by suffix)."""
    for i in range(10_000):
        key = f"{base}{i}"
        if partitioner.partition_of(key) == partition:
            return key
    raise AssertionError("no key found for partition")


@pytest.fixture
def partitioner():
    return StructurePartitioner(partition_count=3)


class TestPublication:
    def test_empty_directory(self):
        directory = CrossShardDirectory.empty()
        assert len(directory) == 0
        assert directory.version == 0
        assert not directory.contains("anything")

    def test_publish_and_lookup(self, partitioner):
        key = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {1: [(key, 2048)]}, partitioner, version=3)
        assert directory.contains(key)
        assert directory.owner_of(key) == 1
        assert directory.entry(key).size_bytes == 2048
        assert directory.version == 3

    def test_unknown_key_raises(self, partitioner):
        directory = CrossShardDirectory.publish({}, partitioner)
        with pytest.raises(DistCacheError):
            directory.entry("column:t.missing")

    def test_wrong_owner_rejected(self, partitioner):
        key = _owned_key(partitioner, 1)
        holder = 2 if partitioner.partition_of(key) != 2 else 0
        with pytest.raises(DistCacheError, match="owned by"):
            CrossShardDirectory.publish({holder: [(key, 10)]}, partitioner)

    def test_dual_ownership_rejected(self):
        partitioner = StructurePartitioner(partition_count=1)
        key = "column:t.c0"
        with pytest.raises(DistCacheError):
            CrossShardDirectory.publish(
                {0: [(key, 10), (key, 10)]}, partitioner)


class TestRemoteView:
    def test_owner_sees_nothing_remote(self, partitioner):
        key = _owned_key(partitioner, 0)
        directory = CrossShardDirectory.publish({0: [(key, 10)]}, partitioner)
        assert directory.remote_entry(key, viewer=0) is None

    def test_other_partitions_see_remote_entry(self, partitioner):
        key = _owned_key(partitioner, 0)
        directory = CrossShardDirectory.publish({0: [(key, 10)]}, partitioner)
        assert directory.remote_entry(key, viewer=1).partition == 0
        assert directory.remote_entry(key, viewer=2).partition == 0

    def test_entries_of_partition(self, partitioner):
        key0 = _owned_key(partitioner, 0)
        key1 = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {0: [(key0, 10)], 1: [(key1, 20)]}, partitioner)
        assert [entry.key for entry in directory.entries_of(0)] == [key0]
        assert [entry.key for entry in directory.entries_of(1)] == [key1]


class TestBackedByAudit:
    def test_live_owner_passes(self, partitioner):
        key = _owned_key(partitioner, 2)
        directory = CrossShardDirectory.publish({2: [(key, 10)]}, partitioner)
        directory.verify_backed_by({2: [key]})

    def test_stale_entry_detected(self, partitioner):
        key = _owned_key(partitioner, 2)
        directory = CrossShardDirectory.publish({2: [(key, 10)]}, partitioner)
        with pytest.raises(DistCacheError, match="not backed"):
            directory.verify_backed_by({2: []})


class TestTransport:
    def test_picklable(self, partitioner):
        key = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=7)
        clone = pickle.loads(pickle.dumps(directory))
        assert clone.version == 7
        assert clone.entry(key).size_bytes == 42
