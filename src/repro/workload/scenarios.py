"""Scenario-diverse workloads on top of the arrival processes.

The paper's sweep keeps the arrival rate fixed within a run; real clouds
see anything but. This module adds arrival regimes whose rate changes
over simulated time — and announces every regime change as a
:class:`~repro.workload.arrival.PhaseChange` marker the simulation
kernel understands:

* :class:`BurstyArrival` — on/off traffic: dense bursts separated by
  idle gaps (think batched report generation).
* :class:`DiurnalArrival` — sinusoidally modulated rate (a day/night
  usage cycle compressed to simulation scale).
* :class:`PhaseShiftArrival` — piecewise-fixed inter-arrival times that
  shift at phase boundaries (abrupt regime changes).

On the template side, :func:`drifting_mix_workload` generates a
multi-template mix whose hot template set drifts on an explicit
schedule, rather than by the generator's internal RNG.

:func:`build_scenario` packages all of this behind a name registry the
CLI's ``scenario`` subcommand exposes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workload.arrival import (
    ArrivalProcess,
    FixedInterarrival,
    PhaseChange,
    PoissonArrival,
    TraceArrival,
)
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.query import Query
from repro.workload.templates import paper_templates, template_by_name


class BurstyArrival(ArrivalProcess):
    """On/off arrivals: bursts of closely spaced queries, then silence.

    Each burst holds ``burst_size`` queries spaced ``burst_interval_s``
    apart; consecutive bursts are separated by ``idle_gap_s`` of silence.
    A phase change is announced at the start of every burst after the
    first.
    """

    def __init__(self, burst_size: int, burst_interval_s: float,
                 idle_gap_s: float) -> None:
        if burst_size <= 0:
            raise WorkloadError(f"burst_size must be positive, got {burst_size}")
        if burst_interval_s <= 0:
            raise WorkloadError(
                f"burst_interval_s must be positive, got {burst_interval_s}"
            )
        if idle_gap_s <= 0:
            raise WorkloadError(f"idle_gap_s must be positive, got {idle_gap_s}")
        self._burst_size = burst_size
        self._burst_interval_s = float(burst_interval_s)
        self._idle_gap_s = float(idle_gap_s)

    @property
    def mean_interarrival(self) -> float:
        cycle = (self._burst_size - 1) * self._burst_interval_s + self._idle_gap_s
        return cycle / self._burst_size

    def arrival_times(self, count: int) -> List[float]:
        times: List[float] = []
        now = 0.0
        for index in range(count):
            if index:
                in_burst = index % self._burst_size != 0
                now += self._burst_interval_s if in_burst else self._idle_gap_s
            times.append(now)
        return times

    def phase_changes(self, count: int) -> List[PhaseChange]:
        # Re-derives the arrival instants so boundary times match the
        # generated arrivals bit-for-bit (a closed form could drift by an
        # ulp and flip the kernel's same-instant dispatch order); the O(n)
        # arithmetic is negligible next to the simulation itself.
        times = self.arrival_times(count)
        changes: List[PhaseChange] = []
        for burst, start in enumerate(range(self._burst_size, count,
                                            self._burst_size), start=1):
            changes.append(PhaseChange(
                time_s=times[start], phase_index=burst, label="burst-start",
            ))
        return changes

    def __repr__(self) -> str:
        return (f"BurstyArrival(burst_size={self._burst_size}, "
                f"burst_interval_s={self._burst_interval_s}, "
                f"idle_gap_s={self._idle_gap_s})")


class DiurnalArrival(ArrivalProcess):
    """Sinusoidally rate-modulated arrivals (a compressed day/night cycle).

    The instantaneous rate is ``(1/mean) * (1 + amplitude*sin(2*pi*t/period))``;
    each next gap is the reciprocal of the current rate (deterministic), or
    exponentially distributed around it when ``seed`` is given. Phase
    changes are announced at every half-period (the rising/falling swing).
    """

    def __init__(self, mean_interval: float, period_s: float,
                 amplitude: float = 0.8, seed: Optional[int] = None) -> None:
        if mean_interval <= 0:
            raise WorkloadError(
                f"mean_interval must be positive, got {mean_interval}"
            )
        if period_s <= 0:
            raise WorkloadError(f"period_s must be positive, got {period_s}")
        if not 0.0 <= amplitude < 1.0:
            raise WorkloadError(f"amplitude must be in [0, 1), got {amplitude}")
        self._mean_interval = float(mean_interval)
        self._period_s = float(period_s)
        self._amplitude = float(amplitude)
        self._seed = seed

    @property
    def mean_interarrival(self) -> float:
        return self._mean_interval

    def _rate(self, time_s: float) -> float:
        phase = 2.0 * math.pi * time_s / self._period_s
        return (1.0 + self._amplitude * math.sin(phase)) / self._mean_interval

    def arrival_times(self, count: int) -> List[float]:
        rng = np.random.default_rng(self._seed) if self._seed is not None else None
        times: List[float] = []
        now = 0.0
        for index in range(count):
            if index:
                mean_gap = 1.0 / self._rate(now)
                gap = float(rng.exponential(mean_gap)) if rng is not None else mean_gap
                now += gap
            times.append(now)
        return times

    def phase_changes(self, count: int) -> List[PhaseChange]:
        times = self.arrival_times(count)
        if not times:
            return []
        horizon = times[-1]
        half = self._period_s / 2.0
        changes: List[PhaseChange] = []
        boundary = half
        index = 1
        while boundary < horizon:
            label = "falling" if index % 2 else "rising"
            changes.append(PhaseChange(
                time_s=boundary, phase_index=index, label=label,
            ))
            boundary += half
            index += 1
        return changes

    def __repr__(self) -> str:
        return (f"DiurnalArrival(mean_interval={self._mean_interval}, "
                f"period_s={self._period_s}, amplitude={self._amplitude}, "
                f"seed={self._seed})")


class PhaseShiftArrival(ArrivalProcess):
    """Piecewise-fixed inter-arrival times, shifting every N queries.

    ``intervals_s`` lists the fixed gap of each phase; arrivals cycle
    through the phases, spending ``queries_per_phase`` arrivals in each.
    A phase change is announced at every shift.
    """

    def __init__(self, intervals_s: Sequence[float],
                 queries_per_phase: int) -> None:
        intervals = [float(value) for value in intervals_s]
        if not intervals:
            raise WorkloadError("at least one phase interval is required")
        if any(value <= 0 for value in intervals):
            raise WorkloadError("phase intervals must be positive")
        if queries_per_phase <= 0:
            raise WorkloadError(
                f"queries_per_phase must be positive, got {queries_per_phase}"
            )
        self._intervals = intervals
        self._queries_per_phase = queries_per_phase

    @property
    def mean_interarrival(self) -> float:
        return sum(self._intervals) / len(self._intervals)

    def _interval_at(self, index: int) -> float:
        phase = (index // self._queries_per_phase) % len(self._intervals)
        return self._intervals[phase]

    def arrival_times(self, count: int) -> List[float]:
        times: List[float] = []
        now = 0.0
        for index in range(count):
            if index:
                # The gap belongs to the phase of the arriving query.
                now += self._interval_at(index)
            times.append(now)
        return times

    def phase_changes(self, count: int) -> List[PhaseChange]:
        times = self.arrival_times(count)
        changes: List[PhaseChange] = []
        for shift, start in enumerate(range(self._queries_per_phase, count,
                                            self._queries_per_phase), start=1):
            phase = shift % len(self._intervals)
            changes.append(PhaseChange(
                time_s=times[start],
                phase_index=shift,
                label=f"interval={self._intervals[phase]:g}s",
            ))
        return changes

    def __repr__(self) -> str:
        return (f"PhaseShiftArrival(intervals_s={tuple(self._intervals)}, "
                f"queries_per_phase={self._queries_per_phase})")


# -- template mixes with drift -------------------------------------------------


def drifting_mix_workload(spec: WorkloadSpec,
                          phase_template_names: Sequence[Sequence[str]],
                          arrival_process: Optional[ArrivalProcess] = None,
                          ) -> Tuple[List[Query], List[PhaseChange]]:
    """A workload whose template mix drifts on an explicit schedule.

    The query stream is split into ``len(phase_template_names)`` contiguous
    phases; phase ``k`` draws only from the named templates (the generator's
    own hot-set machinery still runs *within* the restricted pool). Returns
    the queries plus the phase-change markers at each drift boundary.
    """
    if not phase_template_names:
        raise WorkloadError("at least one phase template set is required")
    phase_sets = [
        tuple(template_by_name(name) for name in names)
        for names in phase_template_names
    ]
    if any(not templates for templates in phase_sets):
        raise WorkloadError("every phase must name at least one template")

    process = arrival_process or FixedInterarrival(spec.interarrival_s)
    total = spec.query_count
    arrivals = process.arrival_times(total)
    phase_count = len(phase_sets)
    per_phase = [total // phase_count] * phase_count
    for index in range(total % phase_count):
        per_phase[index] += 1

    queries: List[Query] = []
    changes: List[PhaseChange] = []
    cursor = 0
    for phase_index, (templates, size) in enumerate(zip(phase_sets, per_phase)):
        if size == 0:
            continue
        phase_arrivals = arrivals[cursor:cursor + size]
        if phase_index and cursor < total:
            changes.append(PhaseChange(
                time_s=phase_arrivals[0],
                phase_index=phase_index,
                label="mix-drift",
            ))
        phase_spec = replace(
            spec,
            query_count=size,
            seed=spec.seed + phase_index,
            hot_template_count=min(spec.hot_template_count, len(templates)),
        )
        generator = WorkloadGenerator(
            phase_spec,
            templates=templates,
            arrival_process=TraceArrival(phase_arrivals),
        )
        for query in generator.iter_queries():
            queries.append(replace(query, query_id=cursor + query.query_id))
        cursor += size
    return queries, changes


# -- scenario registry ---------------------------------------------------------


@dataclass(frozen=True)
class ScenarioWorkload:
    """A named, fully generated scenario: queries plus phase boundaries.

    ``shocks`` carries the scenario's market-shock specs (see
    :mod:`repro.workload.grammar`) — empty for the arrival-shape
    families, populated by the adversarial ``shocks`` family. Callers
    compile them against the generated queries with
    :func:`~repro.workload.grammar.compile_shock_events`.
    """

    name: str
    queries: Tuple[Query, ...]
    phase_changes: Tuple[PhaseChange, ...]
    description: str = ""
    shocks: Tuple[object, ...] = ()

    @property
    def query_count(self) -> int:
        """Number of queries in the scenario."""
        return len(self.queries)


#: Names accepted by :func:`build_scenario` (and the CLI ``scenario`` command).
SCENARIO_NAMES = ("fixed", "poisson", "bursty", "diurnal", "phase-shift",
                  "mix-drift", "shocks")


def _scenario_process(name: str, interarrival_s: float, seed: int,
                      query_count: int) -> Tuple[ArrivalProcess, str]:
    """The arrival process (and a description) backing a scenario name."""
    if name == "fixed":
        return (FixedInterarrival(interarrival_s),
                f"fixed arrivals every {interarrival_s:g}s (the paper's setting)")
    if name == "poisson":
        return (PoissonArrival(interarrival_s, seed=seed),
                f"Poisson arrivals, mean gap {interarrival_s:g}s")
    if name == "bursty":
        burst_size = max(2, min(25, query_count // 8))
        burst_interval = interarrival_s / 4.0
        idle_gap = (burst_size * interarrival_s
                    - (burst_size - 1) * burst_interval)
        return (BurstyArrival(burst_size, burst_interval, idle_gap),
                f"bursts of {burst_size} queries {burst_interval:g}s apart, "
                f"idle {idle_gap:g}s between bursts")
    if name == "diurnal":
        period = max(4.0, interarrival_s * query_count / 4.0)
        return (DiurnalArrival(interarrival_s, period_s=period, amplitude=0.8,
                               seed=seed),
                f"sinusoidal rate, period {period:g}s, amplitude 0.8")
    if name == "phase-shift":
        intervals = (interarrival_s / 2.0, interarrival_s * 2.0, interarrival_s)
        per_phase = max(1, query_count // 6)
        return (PhaseShiftArrival(intervals, queries_per_phase=per_phase),
                f"inter-arrival shifts through {intervals} every "
                f"{per_phase} queries")
    raise WorkloadError(
        f"unknown scenario {name!r}; expected one of {', '.join(SCENARIO_NAMES)}"
    )


def build_scenario(name: str, query_count: int = 400,
                   interarrival_s: float = 10.0,
                   seed: int = 0) -> ScenarioWorkload:
    """Generate a named scenario workload ready for the simulation kernel.

    Args:
        name: one of :data:`SCENARIO_NAMES`.
        query_count: number of queries to generate.
        interarrival_s: mean inter-arrival time the scenario is built
            around (regime-specific shapes keep roughly this mean).
        seed: workload / arrival RNG seed.
    """
    if query_count <= 0:
        raise WorkloadError(f"query_count must be positive, got {query_count}")
    if interarrival_s <= 0:
        raise WorkloadError(
            f"interarrival_s must be positive, got {interarrival_s}"
        )
    spec = WorkloadSpec(query_count=query_count, interarrival_s=interarrival_s,
                        seed=seed)
    if name == "shocks":
        # Imported lazily: the grammar builds on this module's siblings
        # and keeping the registry import-light avoids a startup cycle.
        from repro.workload.grammar import build_shock_scenario

        compiled = build_shock_scenario(
            query_count=query_count, interarrival_s=interarrival_s, seed=seed)
        return ScenarioWorkload(
            name=name,
            queries=compiled.queries,
            phase_changes=compiled.phase_changes,
            description=compiled.description,
            shocks=compiled.shocks,
        )
    if name == "mix-drift":
        names = [template.name for template in paper_templates()]
        # Three overlapping template pools: the mix drifts but never jumps
        # to an entirely disjoint workload.
        third = max(1, len(names) // 3)
        pools = [names[:third * 2], names[third:], names[third * 2:] + names[:third]]
        queries, changes = drifting_mix_workload(spec, pools)
        return ScenarioWorkload(
            name=name,
            queries=tuple(queries),
            phase_changes=tuple(changes),
            description=f"template mix drifting across {len(pools)} pools",
        )
    process, description = _scenario_process(name, interarrival_s, seed,
                                             query_count)
    generator = WorkloadGenerator(spec, arrival_process=process)
    return ScenarioWorkload(
        name=name,
        queries=tuple(generator.generate()),
        phase_changes=tuple(process.phase_changes(query_count)),
        description=description,
    )
