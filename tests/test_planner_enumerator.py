"""Unit tests for plan enumeration."""

import pytest

from repro.errors import PlanningError
from repro.planner.enumerator import EnumeratorConfig, PlanEnumerator
from repro.planner.plan import PlanKind
from repro.structures.cached_index import CachedIndex
from repro.workload.query import Predicate, PredicateKind, QueryTemplate


@pytest.fixture
def candidate_indexes():
    return (
        CachedIndex("lineitem", ("l_shipdate",)),
        CachedIndex("lineitem", ("l_shipmode",)),
        CachedIndex("lineitem", ("l_quantity", "l_shipmode")),
        CachedIndex("lineitem", ("l_orderkey",)),
    )


@pytest.fixture
def enumerator(execution_model, candidate_indexes):
    return PlanEnumerator(execution_model, candidate_indexes=candidate_indexes)


class TestEnumeration:
    def test_backend_plan_always_offered(self, enumerator, sample_query):
        plans = enumerator.enumerate(sample_query())
        assert sum(1 for plan in plans if plan.kind is PlanKind.BACKEND) == 1

    def test_column_scan_offered_per_node_count(self, enumerator, sample_query):
        plans = enumerator.enumerate(sample_query())
        column_plans = [p for p in plans if p.kind is PlanKind.CACHE_COLUMN_SCAN]
        node_counts = sorted(p.node_count for p in column_plans)
        assert node_counts == [1, 2, 3]  # default max_extra_nodes = 2

    def test_index_plans_only_for_matching_indexes(self, enumerator, sample_query):
        query = sample_query("q6_forecast_revenue")  # predicates on shipdate/discount/quantity
        plans = enumerator.enumerate(query)
        index_plans = [p for p in plans if p.kind is PlanKind.CACHE_INDEX]
        used = {p.index.key for p in index_plans}
        assert "index:lineitem(l_shipdate)" in used
        assert "index:lineitem(l_orderkey)" not in used  # not predicated by Q6

    def test_multi_node_plans_carry_cpu_node_structures(self, enumerator, sample_query):
        plans = enumerator.enumerate(sample_query())
        three_node = [p for p in plans
                      if p.kind is PlanKind.CACHE_COLUMN_SCAN and p.node_count == 3]
        assert len(three_node) == 1
        node_keys = {s.key for s in three_node[0].cpu_nodes}
        assert node_keys == {"cpu_node:1", "cpu_node:2"}

    def test_cache_plans_require_touched_columns(self, enumerator, sample_query):
        query = sample_query("q14_promotion_effect")
        plans = enumerator.enumerate(query)
        for plan in plans:
            if plan.kind is PlanKind.BACKEND:
                continue
            keys = plan.structure_keys
            for column in query.touched_columns:
                assert f"column:lineitem.{column}" in keys

    def test_faster_plans_exist_with_more_nodes(self, enumerator, sample_query):
        plans = enumerator.enumerate(sample_query())
        column_plans = {p.node_count: p for p in plans
                        if p.kind is PlanKind.CACHE_COLUMN_SCAN}
        assert column_plans[3].response_time_s < column_plans[1].response_time_s


class TestConfiguration:
    def test_disallowing_indexes_removes_index_plans(self, execution_model,
                                                     candidate_indexes, sample_query):
        enumerator = PlanEnumerator(
            execution_model, candidate_indexes,
            config=EnumeratorConfig(allow_index_plans=False),
        )
        plans = enumerator.enumerate(sample_query())
        assert all(plan.kind is not PlanKind.CACHE_INDEX for plan in plans)

    def test_zero_extra_nodes_keeps_single_node_plans(self, execution_model, sample_query):
        enumerator = PlanEnumerator(
            execution_model, config=EnumeratorConfig(max_extra_nodes=0),
        )
        plans = enumerator.enumerate(sample_query())
        assert all(plan.node_count == 1 for plan in plans)

    def test_disallowing_backend_plan(self, execution_model, sample_query):
        enumerator = PlanEnumerator(
            execution_model, config=EnumeratorConfig(allow_backend_plan=False),
        )
        plans = enumerator.enumerate(sample_query())
        assert all(plan.kind is not PlanKind.BACKEND for plan in plans)

    def test_per_query_index_cap(self, execution_model, candidate_indexes, sample_query):
        enumerator = PlanEnumerator(
            execution_model, candidate_indexes,
            config=EnumeratorConfig(max_candidate_indexes_per_query=1,
                                    max_extra_nodes=0),
        )
        plans = enumerator.enumerate(sample_query("q6_forecast_revenue"))
        index_plans = [p for p in plans if p.kind is PlanKind.CACHE_INDEX]
        assert len(index_plans) == 1

    def test_invalid_config_rejected(self):
        with pytest.raises(PlanningError):
            EnumeratorConfig(max_extra_nodes=-1)
        with pytest.raises(PlanningError):
            EnumeratorConfig(max_candidate_indexes_per_query=-1)


class TestMemoInvalidation:
    def test_generation_counts_invalidations(self, enumerator):
        assert enumerator.generation == 0
        assert enumerator.invalidate() == 1
        assert enumerator.invalidate() == 2
        assert enumerator.generation == 2

    def test_invalidate_refreshes_stale_template_name_reuse(self, execution_model):
        # Two different template shapes sharing one name, as happens when a
        # new catalog or workload reuses template names against a live
        # enumerator.
        before = QueryTemplate(
            name="reused_name", table_name="lineitem",
            predicates=(Predicate("lineitem", "l_shipdate",
                                  PredicateKind.RANGE, 0.1),),
            projection_columns=("l_quantity",),
        )
        after = QueryTemplate(
            name="reused_name", table_name="lineitem",
            predicates=(Predicate("lineitem", "l_shipmode",
                                  PredicateKind.EQUALITY, 0.2),),
            projection_columns=("l_discount",),
        )
        enumerator = PlanEnumerator(execution_model)

        def scan_keys(query_id, template):
            query = template.instantiate(query_id=query_id, arrival_time=0.0)
            plans = enumerator.enumerate(query)
            scan = next(p for p in plans
                        if p.kind is PlanKind.CACHE_COLUMN_SCAN)
            return scan.structure_keys

        assert "column:lineitem.l_shipdate" in scan_keys(0, before)

        # Regression: without invalidation the memo keyed on the bare name
        # serves the old template's column set to the new shape.
        stale = scan_keys(1, after)
        assert "column:lineitem.l_shipmode" not in stale
        assert "column:lineitem.l_shipdate" in stale

        enumerator.invalidate()
        fresh = scan_keys(2, after)
        assert "column:lineitem.l_shipmode" in fresh
        assert "column:lineitem.l_shipdate" not in fresh
