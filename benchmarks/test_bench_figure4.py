"""Benchmark: regenerate Figure 4 (operating cost per scheme per inter-arrival time).

The benchmarked unit is one simulation cell (the bypass baseline at the
1-second inter-arrival time); the full four-scheme, four-interval series is
produced from the shared session grid and written to
``benchmarks/output/figure4.txt``.
"""

from __future__ import annotations

from benchmarks.conftest import FIGURE_BENCH_PROFILE, write_report
from repro.experiments.figure4 import figure4_rows, figure4_table
from repro.experiments.runner import build_system, run_cell


def test_figure4_operating_costs(benchmark, figure_grid, output_dir):
    system = build_system(FIGURE_BENCH_PROFILE)
    cell_profile = FIGURE_BENCH_PROFILE.with_overrides(query_count=400)

    def run_one_cell():
        return run_cell(system, cell_profile, "bypass", 1.0)

    cell = benchmark(run_one_cell)
    assert cell.summary.operating_cost > 0

    table = figure4_table(grid=figure_grid)
    write_report(output_dir, "figure4.txt", table)
    print()
    print(table)

    rows = figure4_rows(figure_grid)
    schemes = figure_grid.profile.schemes
    by_interval = {row[0]: dict(zip(schemes, row[1:])) for row in rows}

    # Shape checks mirroring Section VII-B:
    # econ-cheap is substantially cheaper than the bypass baseline at 1 s.
    assert by_interval[1.0]["econ-cheap"] < by_interval[1.0]["bypass"]
    # operating cost grows with the inter-arrival time for every scheme.
    for scheme in schemes:
        assert by_interval[60.0][scheme] >= by_interval[1.0][scheme] * 0.99
    # at the 60-second interval econ-col is cheaper than econ-cheap.
    assert by_interval[60.0]["econ-col"] < by_interval[60.0]["econ-cheap"]
