"""Micro-benchmarks of the per-query critical-path components.

These are ordinary performance benchmarks (operations per second) rather
than figure reproductions: they show where the simulation time goes and
guard against regressions in the hot paths.
"""

from __future__ import annotations

import pytest

from repro.cache.manager import CacheManager
from repro.costmodel.amortization import UniformAmortization
from repro.economy.pricing import PlanPricer
from repro.planner.enumerator import PlanEnumerator
from repro.planner.skyline import skyline_filter
from repro.system import CloudSystem
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


@pytest.fixture(scope="module")
def bench_system():
    return CloudSystem()


@pytest.fixture(scope="module")
def bench_query(bench_system):
    return WorkloadGenerator(WorkloadSpec(query_count=1, seed=2)).generate()[0]


def test_workload_generation_rate(benchmark):
    spec = WorkloadSpec(query_count=2_000, interarrival_s=1.0, seed=0)

    def generate():
        return len(WorkloadGenerator(spec).generate())

    count = benchmark(generate)
    assert count == 2_000


def test_plan_enumeration_rate(benchmark, bench_system, bench_query):
    enumerator = PlanEnumerator(bench_system.execution_model,
                                candidate_indexes=bench_system.candidate_indexes)
    plans = benchmark(lambda: enumerator.enumerate(bench_query))
    assert plans


def test_plan_enumeration_rate_cold(benchmark, bench_system):
    """Enumeration with a fresh enumerator per query: no per-template memo.

    Compare against ``test_plan_enumeration_rate_warm`` to see the speedup
    of memoizing the structural hot path (required columns + relevant
    candidate indexes) by template.
    """
    workload = WorkloadGenerator(WorkloadSpec(query_count=100, seed=4)).generate()

    def run():
        total = 0
        for query in workload:
            enumerator = PlanEnumerator(
                bench_system.execution_model,
                candidate_indexes=bench_system.candidate_indexes,
            )
            total += len(enumerator.enumerate(query))
        return total

    assert benchmark(run) > 0


def test_plan_enumeration_rate_warm(benchmark, bench_system):
    """Enumeration with one long-lived enumerator: per-template memo hits."""
    workload = WorkloadGenerator(WorkloadSpec(query_count=100, seed=4)).generate()
    enumerator = PlanEnumerator(bench_system.execution_model,
                                candidate_indexes=bench_system.candidate_indexes)
    for query in workload[:10]:
        enumerator.enumerate(query)  # populate the per-template memos

    def run():
        return sum(len(enumerator.enumerate(query)) for query in workload)

    assert benchmark(run) > 0


def test_plan_pricing_rate(benchmark, bench_system, bench_query):
    enumerator = PlanEnumerator(bench_system.execution_model,
                                candidate_indexes=bench_system.candidate_indexes)
    pricer = PlanPricer(bench_system.structure_costs, UniformAmortization(5_000))
    cache = CacheManager()
    plans = enumerator.enumerate(bench_query)

    priced = benchmark(lambda: pricer.price_plans(plans, cache, now=0.0))
    assert len(priced) == len(plans)


def test_execution_estimation_rate(benchmark, bench_system, bench_query):
    model = bench_system.execution_model
    estimate = benchmark(lambda: model.backend_execution(bench_query))
    assert estimate.dollars > 0


def test_skyline_filter_rate(benchmark):
    candidates = [(float(i % 37), float((i * 7919) % 101)) for i in range(500)]
    result = benchmark(lambda: skyline_filter(
        candidates, time_of=lambda c: c[0], cost_of=lambda c: c[1],
    ))
    assert result


def test_end_to_end_query_rate(benchmark, bench_system):
    """Queries per second through the full econ-cheap scheme."""
    workload = WorkloadGenerator(WorkloadSpec(query_count=200, seed=9)).generate()

    def run():
        scheme = bench_system.scheme("econ-cheap")
        for query in workload:
            scheme.process(query)
        return scheme

    scheme = benchmark.pedantic(run, rounds=1, iterations=1)
    assert scheme.cache is not None
