"""Zero-perturbation observability: traces, metrics, manifests, reports.

The subsystem has five layers (see ``docs/observability.md``):

* :mod:`repro.obs.trace` — the :class:`TraceRecorder` and the kernel
  observer, attached through the existing ``run(observers=...)`` hook plus
  the trace attach points of the engine, cache, batch scheduler, shard
  workers, and the partitioned runner. The hard invariant: enabling a
  recorder leaves every table, ledger, and merged report **byte-identical**
  — recorders are read-only and never touch RNG state or account
  arithmetic; a disabled component pays one attribute check.
* :mod:`repro.obs.metrics` — the :class:`MetricsTimeseries` collector,
  sampling engine/cache/economy/batch counters at every settlement
  barrier under the same zero-perturbation contract, emitting sorted
  per-epoch JSONL (``--metrics PATH``).
* :mod:`repro.obs.manifest` — the :class:`RunManifest` serialized next to
  every trace/metrics/report artifact (version, seed, frozen-config hash,
  scheme set, interpreter versions, git sha, mode flags, per-phase
  wall-clock, optional cProfile hotspots).
* :mod:`repro.obs.history` — the append-only bench history store
  (``benchmarks/history/*.jsonl``) and the regression-delta math behind
  ``repro report --baseline``.
* :mod:`repro.obs.report` — the ``repro report`` pipeline: schema-validated
  ingest of the ``BENCH_*.json`` perf history plus trace/metrics artifacts,
  optional bench-to-bench regression gates against the history store,
  rendered into versioned JSON + markdown.
"""

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    HistoryRecord,
    MetricDelta,
    RegressionGates,
    append_bench_history,
    bench_config_hash,
    compute_deltas,
    history_metrics,
    latest_comparable,
    load_history,
    record_from_bench,
)
from repro.obs.manifest import (
    RunManifest,
    build_manifest,
    config_hash,
    profile_hotspots,
)
from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsTimeseries,
    RecorderTee,
    attach_observability,
)
from repro.obs.report import (
    BENCH_NAMES,
    REPORT_SCHEMA_VERSION,
    BenchIngest,
    ingest_bench_files,
    render_report,
    write_report_artifacts,
)
from repro.obs.schema import (
    validate_bench,
    validate_history_record,
    validate_report,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    KernelTraceObserver,
    TraceRecorder,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceRecorder",
    "KernelTraceObserver",
    "METRICS_SCHEMA_VERSION",
    "MetricsTimeseries",
    "RecorderTee",
    "attach_observability",
    "RunManifest",
    "build_manifest",
    "config_hash",
    "profile_hotspots",
    "HISTORY_SCHEMA_VERSION",
    "HistoryRecord",
    "MetricDelta",
    "RegressionGates",
    "append_bench_history",
    "bench_config_hash",
    "compute_deltas",
    "history_metrics",
    "latest_comparable",
    "load_history",
    "record_from_bench",
    "BENCH_NAMES",
    "REPORT_SCHEMA_VERSION",
    "BenchIngest",
    "ingest_bench_files",
    "render_report",
    "write_report_artifacts",
    "validate_bench",
    "validate_history_record",
    "validate_report",
]
