"""The seven TPC-H-derived query templates of the paper's workload.

Section VII-A: "The cache is operated under a TPCH-based workload, which
consists of 7 TPCH query templates and simulates the query evolution of a
million SDSS-like queries against a 2.5TB back-end database."

The seven templates below are analytic renderings of TPC-H Q1, Q3, Q6, Q12,
Q14, Q19 and Q10 — the classic selection/aggregation-heavy subset that maps
naturally onto a column cache (scan a fact table, filter on a few columns,
project a few more, aggregate). Each template records which columns it
touches, how selective its predicates are, how heavily it aggregates, and
how parallelisable it is, which is all the economy needs.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import WorkloadError
from repro.workload.query import Predicate, PredicateKind, QueryTemplate


def _range(table: str, column: str, selectivity: float = None) -> Predicate:
    return Predicate(table_name=table, column_name=column,
                     kind=PredicateKind.RANGE, selectivity=selectivity)


def _eq(table: str, column: str, selectivity: float = None) -> Predicate:
    return Predicate(table_name=table, column_name=column,
                     kind=PredicateKind.EQUALITY, selectivity=selectivity)


def paper_templates() -> Tuple[QueryTemplate, ...]:
    """The 7 templates used by every experiment unless overridden."""
    return (
        # TPC-H Q1: pricing summary report. Scans most of LINEITEM, filters
        # on ship date, aggregates into a handful of groups. Result-light but
        # scan- and CPU-heavy.
        QueryTemplate(
            name="q1_pricing_summary",
            table_name="lineitem",
            predicates=(_range("lineitem", "l_shipdate", 0.95),),
            projection_columns=(
                "l_returnflag", "l_linestatus", "l_quantity",
                "l_extendedprice", "l_discount", "l_tax",
            ),
            order_by_columns=("l_returnflag", "l_linestatus"),
            aggregation_factor=1e-6,
            parallel_fraction=0.95,
            base_cost_factor=1.6,
        ),
        # TPC-H Q3: shipping priority. Joins ORDERS and CUSTOMER, filters on
        # dates and market segment, returns the top orders.
        QueryTemplate(
            name="q3_shipping_priority",
            table_name="lineitem",
            predicates=(
                _range("lineitem", "l_shipdate", 0.45),
                _range("orders", "o_orderdate", 0.45),
                _eq("customer", "c_mktsegment", 0.2),
            ),
            projection_columns=(
                "l_orderkey", "l_extendedprice", "l_discount", "l_shipdate",
            ),
            order_by_columns=("l_orderkey",),
            aggregation_factor=0.06,
            join_tables=("orders", "customer"),
            parallel_fraction=0.9,
            base_cost_factor=1.3,
        ),
        # TPC-H Q6: forecasting revenue change. Highly selective scan of
        # LINEITEM on date, discount and quantity; tiny aggregate result.
        QueryTemplate(
            name="q6_forecast_revenue",
            table_name="lineitem",
            predicates=(
                _range("lineitem", "l_shipdate", 0.15),
                _range("lineitem", "l_discount", 0.27),
                _range("lineitem", "l_quantity", 0.48),
            ),
            projection_columns=("l_extendedprice", "l_discount"),
            aggregation_factor=1e-6,
            parallel_fraction=0.98,
            base_cost_factor=0.8,
        ),
        # TPC-H Q12: shipping modes and order priority. Filters on ship mode
        # and receipt date, joins ORDERS, aggregates by ship mode.
        QueryTemplate(
            name="q12_shipping_modes",
            table_name="lineitem",
            predicates=(
                _eq("lineitem", "l_shipmode", 0.14),
                _range("lineitem", "l_receiptdate", 0.15),
            ),
            projection_columns=("l_shipmode", "l_orderkey", "l_commitdate",
                                "l_receiptdate", "l_shipdate"),
            order_by_columns=("l_shipmode",),
            aggregation_factor=1e-6,
            join_tables=("orders",),
            parallel_fraction=0.92,
            base_cost_factor=1.0,
        ),
        # TPC-H Q14: promotion effect. Joins PART, filters on one month of
        # ship dates, aggregate result.
        QueryTemplate(
            name="q14_promotion_effect",
            table_name="lineitem",
            predicates=(_range("lineitem", "l_shipdate", 0.013),),
            projection_columns=("l_partkey", "l_extendedprice", "l_discount"),
            aggregation_factor=1e-6,
            join_tables=("part",),
            parallel_fraction=0.95,
            base_cost_factor=0.9,
        ),
        # TPC-H Q19: discounted revenue. Complex disjunctive predicate over
        # PART attributes and LINEITEM quantity/shipmode.
        QueryTemplate(
            name="q19_discounted_revenue",
            table_name="lineitem",
            predicates=(
                _range("lineitem", "l_quantity", 0.3),
                _eq("lineitem", "l_shipmode", 0.28),
                _eq("part", "p_brand", 0.04),
                _range("part", "p_size", 0.3),
            ),
            projection_columns=("l_extendedprice", "l_discount", "l_partkey"),
            aggregation_factor=1e-6,
            join_tables=("part",),
            parallel_fraction=0.93,
            base_cost_factor=1.1,
        ),
        # TPC-H Q10: returned item reporting. Result-heavy: returns customer
        # detail rows for a quarter of returned items.
        QueryTemplate(
            name="q10_returned_items",
            table_name="lineitem",
            predicates=(
                _eq("lineitem", "l_returnflag", 0.33),
                _range("orders", "o_orderdate", 0.03),
            ),
            projection_columns=(
                "l_orderkey", "l_extendedprice", "l_discount", "l_returnflag",
            ),
            order_by_columns=("l_extendedprice",),
            aggregation_factor=0.1,
            join_tables=("orders", "customer", "nation"),
            parallel_fraction=0.88,
            base_cost_factor=1.2,
        ),
    )


def template_by_name(name: str) -> QueryTemplate:
    """Look up one of the paper templates by name."""
    for template in paper_templates():
        if template.name == name:
            return template
    known = ", ".join(template.name for template in paper_templates())
    raise WorkloadError(f"unknown template {name!r}; known templates: {known}")


def templates_by_name() -> Dict[str, QueryTemplate]:
    """Map of template name to template, for the workload generator."""
    return {template.name: template for template in paper_templates()}
