"""Skyline filtering of candidate plans.

Footnote 2 of the paper: "We assume that PQ holds only the skyline query
plans (w.r.t. execution time and overall cost); i.e. if there are two plans
with the same execution time, only the cheapest one is encompassed in PQ."

A plan is dominated if another plan is at least as fast *and* at least as
cheap (and strictly better in one of the two dimensions).
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

PlanT = TypeVar("PlanT")


def skyline_filter(plans: Sequence[PlanT],
                   time_of: Callable[[PlanT], float],
                   cost_of: Callable[[PlanT], float],
                   tolerance: float = 1e-12) -> List[PlanT]:
    """Return the non-dominated plans, sorted by ascending execution time.

    Args:
        plans: candidate plans.
        time_of: accessor returning a plan's execution time.
        cost_of: accessor returning a plan's overall cost.
        tolerance: two values closer than this are considered equal, so that
            floating-point noise does not create spurious skyline points.
    """
    if not plans:
        return []
    ordered = sorted(plans, key=lambda plan: (time_of(plan), cost_of(plan)))
    skyline: List[PlanT] = []
    best_cost = float("inf")
    for plan in ordered:
        plan_time = time_of(plan)
        plan_cost = cost_of(plan)
        if skyline and abs(plan_time - time_of(skyline[-1])) <= tolerance:
            # Same execution time as the previous skyline plan: footnote 2
            # keeps only the cheapest of the two.
            if plan_cost < cost_of(skyline[-1]):
                skyline[-1] = plan
                best_cost = min(best_cost, plan_cost)
            continue
        if plan_cost < best_cost - tolerance:
            skyline.append(plan)
            best_cost = plan_cost
    return skyline
