"""Plain-text table rendering shared by the experiment drivers."""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ExperimentError


def distribution_cells(values: Sequence[float]) -> List[object]:
    """``[mean, min, max]`` cells for one row of an aggregate table.

    Population-scale reports (the ``tenants`` experiment) summarise a
    per-tenant metric as its distribution rather than printing hundreds of
    rows; an empty sequence renders as dashes. The mean uses ``math.fsum``
    so the rendered row is invariant under any permutation of the input —
    the same exactness contract the placement layer's bid folding keeps.
    """
    data = [float(value) for value in values]
    if not data:
        return ["-", "-", "-"]
    return [math.fsum(data) / len(data), min(data), max(data)]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render a fixed-width text table (the benches print these).

    Numeric cells are rendered with two decimals; everything else with
    ``str``. Column widths adapt to the longest cell.
    """
    if not headers:
        raise ExperimentError("a table needs at least one column")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ExperimentError(
                f"row has {len(row)} cells but the table has {len(headers)} columns"
            )
        rendered_rows.append([_render_cell(cell) for cell in row])

    widths = [len(str(header)) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(header).ljust(widths[index])
                           for index, header in enumerate(headers)))
    lines.append("  ".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[index]) if _is_numeric(cell)
                               else cell.ljust(widths[index])
                               for index, cell in enumerate(row)))
    return "\n".join(lines)


def _render_cell(cell: object) -> str:
    if isinstance(cell, bool):
        return "yes" if cell else "no"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def _is_numeric(cell: str) -> bool:
    try:
        float(cell)
    except ValueError:
        return False
    return True
