"""A cache manager that owns exactly one partition of the structure keys.

:class:`PartitionedCacheManager` **is** a
:class:`~repro.cache.manager.CacheManager` — LRU capacity eviction,
idle-failure eviction, the ``min_residency_s`` grace, maintenance accrual
and amortisation bookkeeping are all inherited, not forked — with two
additions:

* an **ownership guard**: admitting a structure whose key hashes to a
  different partition raises, so the disjointness the directory and the
  exact merges rely on cannot be violated silently;
* a **directory view**: the current
  :class:`~repro.distcache.directory.CrossShardDirectory` snapshot, from
  which :meth:`remote_entry` answers "does this structure exist on some
  other partition?" for the pricing and investment layers.

Example:
    >>> from repro.distcache.partition import StructurePartitioner
    >>> partitioner = StructurePartitioner(partition_count=2)
    >>> cache = PartitionedCacheManager(partitioner=partitioner,
    ...                                 partition_index=0)
    >>> cache.partition_index
    0
    >>> cache.directory.version
    0
"""

from __future__ import annotations

from typing import FrozenSet, List, Optional, Tuple

from repro.cache.manager import CacheConfig, CacheManager
from repro.cache.storage import CacheEntry, EvictionRecord
from repro.distcache.directory import CrossShardDirectory, DirectoryEntry
from repro.distcache.partition import StructurePartitioner
from repro.errors import DistCacheError
from repro.structures.base import CacheStructure


class PartitionedCacheManager(CacheManager):
    """A :class:`CacheManager` scoped to one partition of the key space.

    Args:
        config: the usual cache capacity/eviction settings, applied to
            this partition's local budget.
        partitioner: the structure → partition mapping shared by all
            partitions of the run.
        partition_index: which partition this cache embodies.
        directory: the initial directory snapshot (defaults to empty).
    """

    def __init__(self, config: CacheConfig = CacheConfig(), *,
                 partitioner: StructurePartitioner,
                 partition_index: int,
                 directory: Optional[CrossShardDirectory] = None) -> None:
        super().__init__(config)
        partitioner.validate_index(partition_index)
        self._partitioner = partitioner
        self._partition_index = partition_index
        self._directory = directory or CrossShardDirectory.empty()
        self._remote_column_keys = self._scan_remote_columns(self._directory)

    # -- partition introspection ----------------------------------------------

    @property
    def partitioner(self) -> StructurePartitioner:
        """The shared structure → partition mapping."""
        return self._partitioner

    def set_partitioner(self, partitioner: StructurePartitioner) -> None:
        """Install the partitioner carrying the latest ownership overrides.

        Called by the runner when a settlement barrier applies adaptive
        handoffs: every partition must consult the same override table or
        the disjointness the directory and merges rely on would break.
        """
        partitioner.validate_index(self._partition_index)
        self._partitioner = partitioner

    @property
    def partition_index(self) -> int:
        """Which partition this cache owns."""
        return self._partition_index

    @property
    def directory(self) -> CrossShardDirectory:
        """The directory snapshot currently in force (read-only view)."""
        return self._directory

    def set_directory(self, directory: CrossShardDirectory) -> None:
        """Install the snapshot published at the latest settlement barrier."""
        self._directory = directory
        self._remote_column_keys = self._scan_remote_columns(directory)

    def _scan_remote_columns(self, directory: CrossShardDirectory
                             ) -> FrozenSet[str]:
        """Advertised column keys held by other partitions.

        Snapshots are immutable, so the scan runs once per installation
        instead of once per pricing/investment lookup.
        """
        return frozenset(
            entry.key for entry in directory.entries
            if entry.partition != self._partition_index
            and entry.key.startswith("column:")
        )

    @property
    def remote_column_keys(self) -> FrozenSet[str]:
        """Column keys readable remotely under the current snapshot."""
        return self._remote_column_keys

    def owns(self, key: str) -> bool:
        """Whether this partition is the hash-owner of structure ``key``."""
        return self._partitioner.owns(self._partition_index, key)

    def remote_entry(self, key: str) -> Optional[DirectoryEntry]:
        """``key``'s directory entry on another partition, if advertised.

        Local presence wins: a key this cache holds is never "remote",
        and the directory cannot advertise it elsewhere (ownership is
        verified at publication).
        """
        if self.contains(key):
            return None
        return self._directory.remote_entry(key, viewer=self._partition_index)

    def snapshot(self) -> Tuple[Tuple[str, int], ...]:
        """``(key, size_bytes)`` of every live structure, for publication."""
        return tuple((entry.key, entry.size_bytes)
                     for entry in self.entries)

    # -- guarded admission -----------------------------------------------------

    def admit(self, structure: CacheStructure, size_bytes: int,
              build_cost: float, maintenance_rate: float,
              now: float) -> List[EvictionRecord]:
        """Admit an owned structure (see :meth:`CacheManager.admit`).

        Raises:
            DistCacheError: if the structure's key hashes to another
                partition — foreign state must never materialise locally.
        """
        if not self.owns(structure.key):
            raise DistCacheError(
                f"structure {structure.key!r} belongs to partition "
                f"{self._partitioner.partition_of(structure.key)}, not "
                f"{self._partition_index}; foreign structures must never "
                f"be admitted locally"
            )
        return super().admit(structure, size_bytes, build_cost,
                             maintenance_rate, now)

    # -- ownership handoff -----------------------------------------------------

    def extract_entry(self, key: str) -> CacheEntry:
        """Release a live entry for handoff to another partition.

        Unlike :meth:`CacheManager.evict` this records **no** eviction —
        the structure is not leaving the cache tier, only changing owner —
        and the entry keeps its full accounting state (build cost,
        billing watermark, usage recency) so the new owner continues the
        bookkeeping exactly where this partition stopped.

        Raises:
            DistCacheError: if the key is not resident here.
        """
        if not self.contains(key):
            raise DistCacheError(
                f"cannot hand off {key!r}: not resident on partition "
                f"{self._partition_index}")
        entry = self._entries.pop(key)
        self._lru.discard(key)
        if self._trace is not None:
            self._trace.count("cache:handoff_out")
        return entry

    def install_entry(self, entry: CacheEntry, now: float
                      ) -> List[EvictionRecord]:
        """Adopt an entry handed off by the previous owner.

        The ownership guard applies just like :meth:`admit` (the runner
        installs the override table *before* moving entries, so the new
        owner genuinely owns the key by the time this runs), and a
        capacity budget is honoured by LRU-evicting local entries to make
        room — the handoff must not silently overcommit the partition.

        Raises:
            DistCacheError: if this partition does not own the key, or
                the key is already resident.
        """
        key = entry.key
        if not self.owns(key):
            raise DistCacheError(
                f"cannot install {key!r} on partition "
                f"{self._partition_index}: partition "
                f"{self._partitioner.partition_of(key)} owns it")
        if self.contains(key):
            raise DistCacheError(
                f"cannot install {key!r}: already resident on partition "
                f"{self._partition_index}")
        evicted: List[EvictionRecord] = []
        if self._config.capacity_bytes is not None:
            evicted = self._evict_to_fit(entry.size_bytes, now)
        self._entries[key] = entry
        self._lru.touch(key)
        self._peak_disk_used_bytes = max(self._peak_disk_used_bytes,
                                         self.disk_used_bytes)
        if self._trace is not None:
            self._trace.count("cache:handoff_in")
        return evicted
