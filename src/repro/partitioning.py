"""Stable content-hash partitioning, shared by every partitioned layer.

Two subsystems split work by hashing string keys onto a fixed number of
partitions: :mod:`repro.sharding` partitions the *tenant population*
(``tenant_id -> shard``) and :mod:`repro.distcache` partitions the *cache
and provider economy* (``structure key -> cache partition``). Both need
the identical guarantee — the mapping must be a **stable** content hash,
independent of process, platform, interpreter hash randomisation, and
insertion order — and they used to implement it separately, which meant
the two could silently drift. This module is the single implementation
both build on.

BLAKE2b (stdlib, keyed to nothing) is used rather than Python's built-in
``hash`` precisely because the built-in is salted per process: a salted
hash would partition differently in every worker, breaking the ownership
disjointness that exact merges and directory consistency rely on.

The hash is the *fallback*, not necessarily the last word: the distcache
layer's :class:`~repro.distcache.partition.StructurePartitioner` consults
its ownership-override table (populated by adaptive-placement handoffs,
:mod:`repro.distcache.placement`) before falling back to
:func:`partition_index`. Tenant sharding has no such table — tenant
ownership is always the pure hash.

Example:
    >>> stable_key_hash("column:lineitem.l_quantity") % 4 in range(4)
    True
    >>> partition_index("t00042", 8) == partition_index("t00042", 8)
    True
    >>> partition_index("anything", 1)
    0
"""

from __future__ import annotations

import hashlib

from repro.errors import PartitioningError

#: Digest width of the partition hash; 8 bytes keeps the modulo bias
#: negligible for any practical partition count.
_DIGEST_SIZE = 8


def stable_key_hash(key: str) -> int:
    """A process-independent 64-bit hash of a string key.

    Args:
        key: the (non-empty) key to hash.

    Returns:
        An unsigned 64-bit integer, identical in every process on every
        platform.

    Example:
        >>> stable_key_hash("alice") == stable_key_hash("alice")
        True
        >>> stable_key_hash("alice") != stable_key_hash("bob")
        True
        >>> stable_key_hash("")
        Traceback (most recent call last):
            ...
        repro.errors.PartitioningError: key must not be empty
    """
    if not key:
        raise PartitioningError("key must not be empty")
    digest = hashlib.blake2b(key.encode("utf-8"),
                             digest_size=_DIGEST_SIZE).digest()
    return int.from_bytes(digest, "big")


def partition_index(key: str, partition_count: int) -> int:
    """The partition that owns ``key`` out of ``partition_count`` partitions.

    This is the one shared formula — ``stable_key_hash(key) % count`` —
    that tenant sharding and structure partitioning must agree on; both
    call it rather than re-deriving it, so they cannot drift.

    Args:
        key: the (non-empty) key to place.
        partition_count: number of partitions; any count >= 1 is valid.

    Returns:
        The owning partition, in ``[0, partition_count)``.

    Example:
        >>> partition_index("t00042", 4) in range(4)
        True
        >>> partition_index("t00042", 1)
        0
        >>> partition_index("t00042", 0)
        Traceback (most recent call last):
            ...
        repro.errors.PartitioningError: partition_count must be >= 1, got 0
    """
    if partition_count < 1:
        raise PartitioningError(
            f"partition_count must be >= 1, got {partition_count}"
        )
    return stable_key_hash(key) % partition_count
