"""Unit tests for the event queue."""

import pytest

from repro.errors import SimulationError
from repro.simulator.events import Event, EventQueue, QueryArrivalEvent
from repro.workload.templates import template_by_name


def make_arrival(time_s, query_id=0):
    query = template_by_name("q6_forecast_revenue").instantiate(query_id, time_s)
    return QueryArrivalEvent(time_s=time_s, query=query)


class TestEvents:
    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            Event(time_s=-1.0)

    def test_arrival_requires_a_query(self):
        with pytest.raises(SimulationError):
            QueryArrivalEvent(time_s=0.0)


class TestEventQueue:
    def test_pops_in_time_order(self):
        queue = EventQueue()
        queue.push(make_arrival(5.0, 1))
        queue.push(make_arrival(1.0, 2))
        queue.push(make_arrival(3.0, 3))
        times = [queue.pop().time_s for _ in range(3)]
        assert times == [1.0, 3.0, 5.0]

    def test_fifo_tie_breaking(self):
        queue = EventQueue()
        first = make_arrival(2.0, 1)
        second = make_arrival(2.0, 2)
        queue.push(first)
        queue.push(second)
        assert queue.pop() is first
        assert queue.pop() is second

    def test_push_all_and_len(self):
        queue = EventQueue()
        queue.push_all(make_arrival(float(i), i) for i in range(4))
        assert len(queue) == 4
        assert not queue.empty

    def test_peek_time(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.push(make_arrival(9.0))
        assert queue.peek_time() == 9.0

    def test_pop_from_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()


class TestTenantEvents:
    def test_tenant_events_require_an_id(self):
        from repro.simulator.events import TenantArrivalEvent, TenantChurnEvent

        with pytest.raises(SimulationError):
            TenantArrivalEvent(time_s=0.0)
        with pytest.raises(SimulationError):
            TenantChurnEvent(time_s=0.0)

    def test_same_instant_order_population_before_money_before_queries(self):
        from repro.simulator.events import (
            MaintenanceSettlementEvent,
            TenantArrivalEvent,
            TenantChurnEvent,
        )

        queue = EventQueue()
        queue.push(make_arrival(1.0))
        queue.push(MaintenanceSettlementEvent(time_s=1.0))
        queue.push(TenantChurnEvent(time_s=1.0, tenant_id="old"))
        queue.push(TenantArrivalEvent(time_s=1.0, tenant_id="new"))
        kinds = [type(queue.pop()).__name__ for _ in range(4)]
        assert kinds == [
            "TenantArrivalEvent",       # replacement joins first
            "TenantChurnEvent",         # then its predecessor leaves
            "MaintenanceSettlementEvent",
            "QueryArrivalEvent",
        ]
