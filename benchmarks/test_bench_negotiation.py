"""Benchmark: plan enumeration, pricing and negotiation (Figure 2 / cases A-B-C).

This is the per-query critical path of the economy engine: enumerate the
candidate plans, price them against the cache, apply the skyline filter and
negotiate against the user budget. The benchmark reports how many
negotiations per second a single coordinator can sustain and records the case
distribution over a representative query mix.
"""

from __future__ import annotations

from collections import Counter

from benchmarks.conftest import write_report
from repro.cache.manager import CacheManager
from repro.costmodel.amortization import UniformAmortization
from repro.economy.budget import StepBudget
from repro.economy.negotiation import PlanSelection, negotiate
from repro.economy.pricing import PlanPricer
from repro.experiments.reporting import format_table
from repro.planner.enumerator import PlanEnumerator
from repro.planner.skyline import skyline_filter
from repro.system import CloudSystem
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def test_negotiation_throughput(benchmark, output_dir):
    system = CloudSystem()
    enumerator = PlanEnumerator(system.execution_model,
                                candidate_indexes=system.candidate_indexes)
    pricer = PlanPricer(system.structure_costs, UniformAmortization(5_000))
    cache = CacheManager()
    queries = WorkloadGenerator(WorkloadSpec(query_count=50, seed=21)).generate()

    def negotiate_all():
        cases = Counter()
        for index, query in enumerate(queries):
            priced = pricer.price_plans(enumerator.enumerate(query), cache, now=0.0)
            skyline = skyline_filter(priced,
                                     time_of=lambda plan: plan.response_time_s,
                                     cost_of=lambda plan: plan.price)
            assert skyline, "the skyline of a non-empty plan set is non-empty"
            cheapest = min(plan.price for plan in priced)
            priciest = max(plan.price for plan in priced)
            # Rotate the willingness-to-pay so all three cases occur: below
            # every plan (A), between the extremes (C), above every plan (B).
            amount = (0.5 * cheapest,
                      0.5 * (cheapest + priciest),
                      2.0 * priciest)[index % 3]
            budget = StepBudget(amount, max_time_s=1e4)
            result = negotiate(budget, priced, PlanSelection.CHEAPEST)
            cases[result.case.value] += 1
        return cases

    cases = benchmark(negotiate_all)
    assert sum(cases.values()) == len(queries)
    assert set(cases) == {"A", "B", "C"}, "all three negotiation cases should occur"

    table = format_table(
        ["negotiation case", "queries"],
        [[case, count] for case, count in sorted(cases.items())],
        title="Figure 2 - case distribution over a mixed willingness-to-pay workload",
    )
    write_report(output_dir, "figure2_negotiation_cases.txt", table)
    print()
    print(table)
