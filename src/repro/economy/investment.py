"""The investment rule (Eq. 3).

A structure ``S`` becomes a candidate for imminent investment once its
accumulated regret reaches a fraction ``a`` of the cloud credit ``CR``:

    InvestIn(S) = round(regretS[S] / (a * CR)) >= 1,   0 < a < 1.

Section VII-A adds that the provider is conservative and "builds structures
only when her profit exceeds the cost of building them"; the policy therefore
also requires that the account can pay the build cost outright.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro import constants
from repro.economy.account import CloudAccount
from repro.economy.regret import RegretTracker
from repro.errors import ConfigurationError
from repro.structures.base import CacheStructure


@dataclass(frozen=True)
class InvestmentDecision:
    """The outcome of evaluating one structure for investment."""

    structure: CacheStructure
    regret: float
    invest_score: int
    build_cost: float
    affordable: bool

    @property
    def should_build(self) -> bool:
        """Whether the cloud should build the structure now."""
        return self.invest_score >= 1 and self.affordable


class InvestmentPolicy:
    """Evaluates the regret array against the credit and decides what to build.

    Args:
        regret_fraction: ``a`` of Eq. 3, in (0, 1).
        require_affordable: the conservative-provider rule — only build when
            the account can pay the full build cost.
        minimum_credit: credit below which the invest score is reported as 0
            (guards the division in Eq. 3).

    Example:
        >>> policy = InvestmentPolicy(regret_fraction=0.1)
        >>> policy.invest_score(regret=5.0, credit=10.0)   # 5 / (0.1 * 10)
        5
        >>> policy.invest_score(regret=0.4, credit=10.0)
        0
    """

    def __init__(self, regret_fraction: float = constants.DEFAULT_REGRET_FRACTION,
                 require_affordable: bool = True,
                 minimum_credit: float = 1e-9) -> None:
        if not 0.0 < regret_fraction < 1.0:
            raise ConfigurationError(
                f"regret_fraction must be in (0, 1), got {regret_fraction}"
            )
        if minimum_credit <= 0:
            raise ConfigurationError("minimum_credit must be positive")
        self._regret_fraction = regret_fraction
        self._require_affordable = require_affordable
        self._minimum_credit = minimum_credit

    @property
    def regret_fraction(self) -> float:
        """``a`` of Eq. 3."""
        return self._regret_fraction

    def invest_score(self, regret: float, credit: float) -> int:
        """``InvestIn(S)`` of Eq. 3; 0 when the credit is (near) zero.

        With no credit the cloud has nothing to invest, so rather than
        dividing by zero the score is reported as 0.

        Args:
            regret: the structure's accumulated regret.
            credit: the current cloud credit ``CR``.

        Returns:
            ``round(regret / (a * CR))`` as an int (>= 1 means "build").
        """
        if regret < 0:
            raise ConfigurationError(f"regret must be non-negative, got {regret}")
        if credit < self._minimum_credit:
            return 0
        return int(round(regret / (self._regret_fraction * credit)))

    def evaluate(self, structure: CacheStructure, regret: float,
                 build_cost: float, account: CloudAccount) -> InvestmentDecision:
        """Evaluate one structure for investment.

        Args:
            structure: the candidate structure.
            regret: its accumulated regret.
            build_cost: its estimated build cost.
            account: the cloud account providing ``CR``.

        Returns:
            The :class:`InvestmentDecision` (check ``should_build``).

        Example:
            >>> from repro.structures.cached_column import CachedColumn
            >>> policy = InvestmentPolicy(regret_fraction=0.1)
            >>> decision = policy.evaluate(
            ...     CachedColumn("lineitem", "l_quantity"), regret=5.0,
            ...     build_cost=2.0, account=CloudAccount(initial_credit=10.0))
            >>> decision.invest_score, decision.affordable, decision.should_build
            (5, True, True)
        """
        score = self.invest_score(regret, account.credit)
        affordable = (not self._require_affordable) or account.can_afford(build_cost)
        return InvestmentDecision(
            structure=structure,
            regret=regret,
            invest_score=score,
            build_cost=build_cost,
            affordable=affordable,
        )

    def candidates(self, tracker: RegretTracker, account: CloudAccount,
                   build_cost_of, built_keys=()) -> List[InvestmentDecision]:
        """All structures whose regret currently justifies building them.

        Args:
            tracker: the regret array.
            account: the cloud account (provides ``CR``).
            build_cost_of: callable mapping a structure to its build cost.
            built_keys: keys of structures already in the cache (skipped).

        Returns decisions with ``should_build`` true, sorted by descending
        regret so the most-regretted structure is built first.
        """
        credit = account.credit
        if credit < self._minimum_credit:
            # invest_score is 0 for every structure: nothing can qualify.
            return []
        # Filter on the invest-score threshold before sorting: most
        # structures miss it on most queries, and a stable sort of the
        # qualifying few yields the same descending-regret order ranked()
        # would have produced.
        qualifying = [(key, regret) for key, regret in tracker.items()
                      if self.invest_score(regret, credit) >= 1]
        qualifying.sort(key=lambda item: -item[1])
        built = set(built_keys)
        decisions: List[InvestmentDecision] = []
        for key, regret in qualifying:
            if key in built:
                continue
            structure = tracker.structure(key)
            if structure is None:
                continue
            decision = self.evaluate(
                structure, regret, build_cost_of(structure), account
            )
            if decision.should_build:
                decisions.append(decision)
        return decisions
