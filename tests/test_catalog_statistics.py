"""Unit tests for selectivity and cardinality estimation."""

import pytest

from repro.catalog.statistics import (
    DEFAULT_RANGE_SELECTIVITY,
    MIN_SELECTIVITY,
    SelectivityEstimator,
)
from repro.errors import SchemaError, UnknownColumnError


class TestColumnStatistics:
    def test_statistics_reflect_schema(self, estimator, schema):
        stats = estimator.column_statistics("lineitem", "l_shipmode")
        assert stats.row_count == schema.table("lineitem").row_count
        assert stats.distinct_count == pytest.approx(7, abs=1)
        assert stats.width_bytes == 10

    def test_statistics_are_cached(self, estimator):
        first = estimator.column_statistics("orders", "o_orderkey")
        second = estimator.column_statistics("orders", "o_orderkey")
        assert first is second

    def test_unknown_column_raises(self, estimator):
        with pytest.raises(UnknownColumnError):
            estimator.column_statistics("lineitem", "no_such_column")


class TestSelectivities:
    def test_equality_selectivity_is_one_over_distinct(self, estimator):
        selectivity = estimator.equality_selectivity("lineitem", "l_shipmode")
        assert selectivity == pytest.approx(1.0 / 7.0, rel=0.01)

    def test_range_selectivity_default(self, estimator):
        assert estimator.range_selectivity("lineitem", "l_shipdate") == pytest.approx(
            DEFAULT_RANGE_SELECTIVITY
        )

    def test_range_selectivity_with_fraction(self, estimator):
        assert estimator.range_selectivity("lineitem", "l_shipdate", 0.1) == 0.1

    def test_range_fraction_out_of_bounds_rejected(self, estimator):
        with pytest.raises(SchemaError):
            estimator.range_selectivity("lineitem", "l_shipdate", 1.5)

    def test_conjunction_multiplies(self, estimator):
        combined = estimator.conjunction_selectivity([0.5, 0.2, 0.1])
        assert combined == pytest.approx(0.01)

    def test_conjunction_never_reaches_zero(self, estimator):
        combined = estimator.conjunction_selectivity([1e-8] * 5)
        assert combined >= MIN_SELECTIVITY

    def test_conjunction_rejects_out_of_range(self, estimator):
        with pytest.raises(SchemaError):
            estimator.conjunction_selectivity([1.2])

    def test_bad_range_default_rejected(self, schema):
        with pytest.raises(SchemaError):
            SelectivityEstimator(schema, range_selectivity=0.0)


class TestCardinalities:
    def test_output_rows_scale_with_selectivity(self, estimator, schema):
        rows = estimator.output_rows("lineitem", 0.01)
        assert rows == pytest.approx(0.01 * schema.table("lineitem").row_count, rel=0.01)

    def test_output_rows_minimum_one(self, estimator):
        assert estimator.output_rows("region", 1e-12) == 1

    def test_output_bytes_use_projected_width(self, estimator, schema):
        lineitem = schema.table("lineitem")
        size = estimator.output_bytes("lineitem", ["l_orderkey", "l_discount"], 1.0)
        expected = (4 + 8) * lineitem.row_count
        assert size == pytest.approx(expected, rel=0.01)

    def test_output_bytes_empty_projection_falls_back_to_row_width(self, estimator, schema):
        lineitem = schema.table("lineitem")
        size = estimator.output_bytes("lineitem", [], 1.0)
        assert size == pytest.approx(lineitem.size_bytes, rel=0.01)

    def test_scanned_bytes_sums_touched_columns(self, estimator, schema):
        scanned = estimator.scanned_bytes("lineitem", ["l_orderkey", "l_shipdate"])
        expected = (schema.table("lineitem").column_size_bytes("l_orderkey")
                    + schema.table("lineitem").column_size_bytes("l_shipdate"))
        assert scanned == expected

    def test_scanned_bytes_without_columns_is_full_table(self, estimator, schema):
        assert estimator.scanned_bytes("orders", []) == schema.table("orders").size_bytes
