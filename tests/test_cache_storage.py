"""Unit tests for cache entry bookkeeping."""

import pytest

from repro.cache.storage import CacheEntry, EvictionRecord
from repro.errors import CacheError
from repro.structures.cached_column import CachedColumn


def make_entry(**overrides):
    defaults = dict(
        structure=CachedColumn("lineitem", "l_shipdate"),
        size_bytes=1_000,
        build_cost=10.0,
        maintenance_rate=0.01,
        built_at=100.0,
    )
    defaults.update(overrides)
    return CacheEntry(**defaults)


class TestCacheEntry:
    def test_defaults_derive_from_build_time(self):
        entry = make_entry()
        assert entry.last_used_at == 100.0
        assert entry.last_billed_at == 100.0
        assert entry.queries_served == 0
        assert entry.key == "column:lineitem.l_shipdate"

    def test_accrued_maintenance(self):
        entry = make_entry()
        assert entry.accrued_maintenance(100.0) == 0.0
        assert entry.accrued_maintenance(200.0) == pytest.approx(1.0)

    def test_accrued_maintenance_rejects_time_travel(self):
        with pytest.raises(CacheError):
            make_entry().accrued_maintenance(50.0)

    def test_idle_time(self):
        entry = make_entry()
        entry.last_used_at = 150.0
        assert entry.idle_time(250.0) == pytest.approx(100.0)
        with pytest.raises(CacheError):
            entry.idle_time(100.0)

    def test_unrecovered_build_cost(self):
        entry = make_entry()
        assert entry.unrecovered_build_cost() == 10.0
        entry.amortized_recovered = 4.0
        assert entry.unrecovered_build_cost() == 6.0
        entry.amortized_recovered = 15.0
        assert entry.unrecovered_build_cost() == 0.0

    @pytest.mark.parametrize("field, value", [
        ("size_bytes", -1),
        ("build_cost", -1.0),
        ("maintenance_rate", -0.1),
    ])
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(CacheError):
            make_entry(**{field: value})


class TestEvictionRecord:
    def test_record_fields(self):
        record = EvictionRecord(
            key="column:x", evicted_at=12.0, reason="capacity_lru",
            unpaid_maintenance=0.5, unrecovered_build_cost=3.0, queries_served=7,
        )
        assert record.key == "column:x"
        assert record.reason == "capacity_lru"
        assert record.queries_served == 7
