"""Tests for the event kernel: dispatch order, handlers, multi-tenant runs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.simulator.events import (
    Event,
    MaintenanceSettlementEvent,
    QueryArrivalEvent,
    StructureFailureCheckEvent,
    WorkloadPhaseChangeEvent,
)
from repro.simulator.handlers import PeriodicRescheduler, SchemeTenant
from repro.simulator.kernel import SimulationKernel
from repro.simulator.metrics import MetricsCollector
from repro.simulator.simulation import (
    CloudSimulation,
    MultiSchemeSimulation,
    SimulationConfig,
)
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.templates import template_by_name


def make_arrival(time_s, query_id=0):
    query = template_by_name("q6_forecast_revenue").instantiate(query_id, time_s)
    return QueryArrivalEvent(time_s=time_s, query=query)


#: Constructors of every built-in event type, in documented priority order.
EVENT_MAKERS = (
    lambda t: WorkloadPhaseChangeEvent(time_s=t),
    lambda t: MaintenanceSettlementEvent(time_s=t),
    lambda t: StructureFailureCheckEvent(time_s=t),
    lambda t: make_arrival(t),
)


class TestKernelDispatch:
    def test_dispatches_in_time_order(self):
        kernel = SimulationKernel()
        seen = []
        kernel.register(Event, lambda event, k: seen.append(event.time_s))
        for time_s in (5.0, 1.0, 3.0):
            kernel.schedule(MaintenanceSettlementEvent(time_s=time_s))
        assert kernel.run() == 3
        assert seen == [1.0, 3.0, 5.0]

    def test_simultaneous_events_follow_the_documented_priority(self):
        kernel = SimulationKernel()
        seen = []
        kernel.register(Event, lambda event, k: seen.append(type(event)))
        # Schedule in reverse of the documented order; dispatch must re-sort.
        kernel.schedule(make_arrival(2.0))
        kernel.schedule(StructureFailureCheckEvent(time_s=2.0))
        kernel.schedule(MaintenanceSettlementEvent(time_s=2.0))
        kernel.schedule(WorkloadPhaseChangeEvent(time_s=2.0))
        kernel.run()
        assert seen == [WorkloadPhaseChangeEvent, MaintenanceSettlementEvent,
                        StructureFailureCheckEvent, QueryArrivalEvent]

    def test_unhandled_event_raises(self):
        kernel = SimulationKernel()
        kernel.register(QueryArrivalEvent, lambda event, k: None)
        kernel.schedule(MaintenanceSettlementEvent(time_s=1.0))
        with pytest.raises(SimulationError):
            kernel.run()

    def test_handlers_run_in_registration_order(self):
        kernel = SimulationKernel()
        order = []
        kernel.register(Event, lambda event, k: order.append("first"))
        kernel.register(MaintenanceSettlementEvent,
                        lambda event, k: order.append("second"))
        kernel.schedule(MaintenanceSettlementEvent(time_s=0.0))
        kernel.run()
        assert order == ["first", "second"]

    def test_scheduling_in_the_past_is_rejected(self):
        kernel = SimulationKernel(start_time_s=10.0)
        with pytest.raises(SimulationError):
            kernel.schedule(MaintenanceSettlementEvent(time_s=5.0))

    def test_handlers_can_schedule_follow_ups(self):
        kernel = SimulationKernel()
        seen = []

        def chain(event, k):
            seen.append(event.time_s)
            if event.time_s < 3.0:
                k.schedule(MaintenanceSettlementEvent(time_s=event.time_s + 1.0))

        kernel.register(MaintenanceSettlementEvent, chain)
        kernel.schedule(MaintenanceSettlementEvent(time_s=0.0))
        assert kernel.run() == 4
        assert seen == [0.0, 1.0, 2.0, 3.0]

    def test_run_until_leaves_later_events_queued(self):
        kernel = SimulationKernel()
        kernel.register(Event, lambda event, k: None)
        kernel.schedule(MaintenanceSettlementEvent(time_s=1.0))
        kernel.schedule(MaintenanceSettlementEvent(time_s=9.0))
        assert kernel.run(until_s=5.0) == 1
        assert kernel.pending_events == 1

    def test_dispatch_counts_per_type(self):
        kernel = SimulationKernel()
        kernel.register(Event, lambda event, k: None)
        kernel.schedule(MaintenanceSettlementEvent(time_s=0.0))
        kernel.schedule(WorkloadPhaseChangeEvent(time_s=0.0))
        kernel.run()
        assert kernel.dispatch_count() == 2
        assert kernel.dispatch_count(MaintenanceSettlementEvent) == 1
        assert kernel.dispatch_count(QueryArrivalEvent) == 0

    @settings(max_examples=60, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from([0.0, 1.0, 2.0]), st.integers(0, 3)),
        min_size=1, max_size=24,
    ))
    def test_any_interleaving_dispatches_in_the_stable_order(self, plan):
        """Property: whatever order simultaneous events are scheduled in,
        dispatch follows (time, documented priority, insertion order)."""
        events = [EVENT_MAKERS[maker_index](time_s)
                  for time_s, maker_index in plan]
        kernel = SimulationKernel()
        dispatched = []
        kernel.register(Event, lambda event, k: dispatched.append(event))
        for event in events:
            kernel.schedule(event)
        kernel.run()
        # sorted() is stable, so equal (time, priority) keeps insertion order.
        expected = sorted(events, key=lambda e: (e.time_s, e.priority))
        assert dispatched == expected


class TestPeriodicRescheduler:
    def test_reschedules_until_the_horizon(self):
        kernel = SimulationKernel()
        times = []
        kernel.register(MaintenanceSettlementEvent,
                        lambda event, k: times.append(event.time_s))
        kernel.register(MaintenanceSettlementEvent, PeriodicRescheduler(horizon_s=10.0))
        kernel.schedule(MaintenanceSettlementEvent(time_s=2.0, period_s=3.0))
        kernel.run()
        assert times == [2.0, 5.0, 8.0]

    def test_ignores_one_shot_events(self):
        kernel = SimulationKernel()
        kernel.register(MaintenanceSettlementEvent, lambda event, k: None)
        kernel.register(MaintenanceSettlementEvent, PeriodicRescheduler(horizon_s=100.0))
        kernel.schedule(MaintenanceSettlementEvent(time_s=1.0))
        assert kernel.run() == 1


class TestSchemeTenant:
    @pytest.fixture
    def workload(self):
        return WorkloadGenerator(WorkloadSpec(query_count=50, interarrival_s=3.0,
                                              seed=7)).generate()

    def test_periodic_settlement_does_not_change_the_total(self, system, workload):
        """The maintenance rate only changes at arrivals, so settling more
        often redistributes the charges without changing their sum."""
        plain = CloudSimulation(system.scheme("econ-cheap")).run(workload)
        periodic = CloudSimulation(
            system.scheme("econ-cheap"),
            SimulationConfig(settlement_period_s=4.5),
        ).run(workload)
        assert periodic.summary.maintenance_dollars == pytest.approx(
            plain.summary.maintenance_dollars)
        assert periodic.summary.duration_s == pytest.approx(
            plain.summary.duration_s)
        assert periodic.summary.operating_cost == pytest.approx(
            plain.summary.operating_cost)

    def test_period_longer_than_the_run_does_not_extend_it(self, system, workload):
        """Regression: a periodic event past the horizon must not fire, or
        it would inflate the duration beyond count * interarrival."""
        span_plus_trailing = len(workload) * 3.0
        result = CloudSimulation(
            system.scheme("bypass"),
            SimulationConfig(settlement_period_s=10 * span_plus_trailing,
                             failure_check_period_s=10 * span_plus_trailing),
        ).run(workload)
        assert result.summary.duration_s == pytest.approx(span_plus_trailing)

    def test_scheduled_failure_checks_run_through_the_kernel(self, system, workload):
        result = CloudSimulation(
            system.scheme("econ-cheap"),
            SimulationConfig(failure_check_period_s=30.0),
        ).run(workload)
        assert result.summary.query_count == len(workload)
        assert result.summary.operating_cost > 0

    def test_phase_change_events_are_counted(self, system, workload):
        from repro.workload.arrival import PhaseChange

        changes = [PhaseChange(time_s=30.0, phase_index=1, label="drift")]
        result = CloudSimulation(system.scheme("bypass")).run(
            workload, phase_changes=changes)
        assert result.summary.query_count == len(workload)


class TestMultiSchemeSimulation:
    def test_shared_clock_matches_solo_runs(self, system):
        """Tenants are independent: an N-scheme shared-clock run reproduces
        each scheme's solo result exactly."""
        workload = WorkloadGenerator(WorkloadSpec(query_count=40,
                                                  interarrival_s=5.0,
                                                  seed=11)).generate()
        shared = MultiSchemeSimulation(
            [system.scheme("bypass"), system.scheme("econ-cheap")]
        ).run(workload)
        solo_bypass = CloudSimulation(system.scheme("bypass")).run(workload)
        solo_cheap = CloudSimulation(system.scheme("econ-cheap")).run(workload)
        assert shared["bypass"].summary == solo_bypass.summary
        assert shared["econ-cheap"].summary == solo_cheap.summary

    def test_requires_unique_scheme_names(self, system):
        with pytest.raises(SimulationError):
            MultiSchemeSimulation(
                [system.scheme("bypass"), system.scheme("bypass")]
            )

    def test_requires_at_least_one_scheme(self):
        with pytest.raises(SimulationError):
            MultiSchemeSimulation([])
