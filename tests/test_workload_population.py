"""Tests for the tenant population layer (Zipf activity, churn, lifecycle)."""

import pytest

from repro.economy.tenancy import TenantRegistry
from repro.errors import WorkloadError
from repro.policies.economic import EconomicSchemeConfig
from repro.simulator.metrics import breakdown_by_tenant
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.population import (
    PopulationSpec,
    TenantLifecycleMarker,
    TenantPopulation,
)


@pytest.fixture
def base_workload():
    return WorkloadGenerator(
        WorkloadSpec(query_count=200, interarrival_s=2.0, seed=5)
    ).generate()


class TestPopulationSpec:
    def test_rejects_bad_values(self):
        with pytest.raises(WorkloadError):
            PopulationSpec(tenant_count=0)
        with pytest.raises(WorkloadError):
            PopulationSpec(zipf_exponent=-1.0)
        with pytest.raises(WorkloadError):
            PopulationSpec(churn_fraction=1.5)

    def test_marker_kind_validated(self):
        with pytest.raises(WorkloadError):
            TenantLifecycleMarker(time_s=0.0, tenant_id="a", kind="resign")


class TestPopulate:
    def test_only_tenant_ids_change(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=10, seed=1)).populate(base_workload)
        assert len(populated.queries) == len(base_workload)
        for before, after in zip(base_workload, populated.queries):
            assert after.query_id == before.query_id
            assert after.arrival_time == before.arrival_time
            assert after.template_name == before.template_name
            assert after.predicates == before.predicates
            assert after.tenant_id != "default"

    def test_deterministic(self, base_workload):
        spec = PopulationSpec(tenant_count=10, churn_period=50, seed=9)
        first = TenantPopulation(spec).populate(base_workload)
        second = TenantPopulation(spec).populate(base_workload)
        assert first == second

    def test_zipf_skew_concentrates_traffic(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=20, zipf_exponent=1.5, seed=2)).populate(base_workload)
        counts = {}
        for query in populated.queries:
            counts[query.tenant_id] = counts.get(query.tenant_id, 0) + 1
        top = max(counts.values())
        assert top > len(base_workload) / 5  # head tenant dominates
        assert counts.get("t00000", 0) == top  # rank 0 is the head slot

    def test_uniform_when_exponent_zero(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=4, zipf_exponent=0.0, seed=2)).populate(base_workload)
        counts = {}
        for query in populated.queries:
            counts[query.tenant_id] = counts.get(query.tenant_id, 0) + 1
        assert max(counts.values()) < 2.5 * min(counts.values())

    def test_initial_arrivals_announced(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=7, seed=0)).populate(base_workload)
        arrivals = [marker for marker in populated.lifecycle
                    if marker.kind == "arrival"]
        assert len(arrivals) == 7
        assert all(marker.time_s == base_workload[0].arrival_time
                   for marker in arrivals)

    def test_churn_replaces_tenants(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=10, churn_period=50, churn_fraction=0.2,
            seed=4)).populate(base_workload)
        # 200 queries / 50 per wave -> 3 waves of 2 tenants each.
        assert populated.churn_waves == 6
        assert populated.tenant_count == 16
        churned = {marker.tenant_id for marker in populated.lifecycle
                   if marker.kind == "churn"}
        # A churned tenant issues no queries after its churn instant
        # (arrival times are distinct under the fixed interarrival process).
        churn_time = {marker.tenant_id: marker.time_s
                      for marker in populated.lifecycle
                      if marker.kind == "churn"}
        for query in populated.queries:
            if query.tenant_id in churned:
                assert query.arrival_time < churn_time[query.tenant_id]

    def test_empty_workload_rejected(self):
        with pytest.raises(WorkloadError):
            TenantPopulation().populate([])


class TestSimulationIntegration:
    def test_lifecycle_events_drive_the_registry(self, system, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=10, churn_period=50, churn_fraction=0.2,
            initial_credit=20.0, seed=4)).populate(base_workload)
        registry = TenantRegistry()
        registry.register_all(populated.profiles)
        scheme = system.scheme(
            "econ-cheap", economic_config=EconomicSchemeConfig(tenants=registry)
        )
        result = CloudSimulation(scheme, SimulationConfig()).run(
            populated.queries, tenant_lifecycle=populated.lifecycle
        )
        assert result.summary.query_count == len(populated.queries)
        churned = {marker.tenant_id for marker in populated.lifecycle
                   if marker.kind == "churn"}
        assert churned
        for tenant_id in churned:
            assert not registry.state(tenant_id).active
        # Replacements (and survivors) remain active.
        assert len(registry.active_ids()) == 10

    def test_per_tenant_breakdowns_cover_all_traffic(self, system,
                                                     base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=5, seed=8)).populate(base_workload)
        scheme = system.scheme("bypass")
        result = CloudSimulation(scheme, SimulationConfig()).run(
            populated.queries, tenant_lifecycle=populated.lifecycle
        )
        breakdowns = breakdown_by_tenant(result.steps)
        assert sum(item.query_count for item in breakdowns.values()) == len(
            populated.queries
        )
        hits = sum(item.cache_hits for item in breakdowns.values())
        assert hits / len(populated.queries) == pytest.approx(
            result.summary.cache_hit_rate
        )


class TestChurnDisabled:
    def test_zero_fraction_disables_churn(self, base_workload):
        populated = TenantPopulation(PopulationSpec(
            tenant_count=6, churn_period=50, churn_fraction=0.0,
            seed=1)).populate(base_workload)
        assert populated.churn_waves == 0
        assert populated.tenant_count == 6
