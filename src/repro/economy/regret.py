"""The per-structure regret array ``regretS`` (Section IV-C, Definition 2).

The regret of a non-chosen plan is distributed over the structures that plan
would have used but that are not built yet; the accumulated value per
structure "shows the overall regret of the cloud for not employing it in
executed query plans". The pool of tracked structures is garbage collected
with an LRU policy, as Section IV-B prescribes, so it stays proportional to
the recent workload rather than growing without bound.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.cache.lru import LruTracker
from repro.errors import EconomyError
from repro.structures.base import CacheStructure


class RegretTracker:
    """Accumulates regret per structure key and supports LRU garbage collection.

    Args:
        pool_capacity: LRU bound on the number of tracked structures
            (``None`` disables garbage collection).

    Example:
        >>> from repro.structures.cached_column import CachedColumn
        >>> tracker = RegretTracker(pool_capacity=8)
        >>> column = CachedColumn("lineitem", "l_quantity")
        >>> tracker.add(column, 2.5)
        >>> tracker.add(column, 1.5)
        >>> tracker.value(column.key)
        4.0
        >>> tracker.reset(column.key)
        4.0
        >>> tracker.value(column.key)
        0.0
    """

    def __init__(self, pool_capacity: Optional[int] = 512) -> None:
        self._values: Dict[str, float] = {}
        self._structures: Dict[str, CacheStructure] = {}
        self._lru: LruTracker[str] = LruTracker(pool_capacity)

    # -- recording ------------------------------------------------------------

    def add(self, structure: CacheStructure, amount: float) -> None:
        """Accumulate ``amount`` of regret on ``structure``.

        Negative amounts are rejected; zero amounts still refresh the
        structure's recency in the pool (it was relevant to a recent query).

        Args:
            structure: the missing structure the regret belongs to.
            amount: the (non-negative) regret to add.
        """
        if amount < 0:
            raise EconomyError(f"regret must be non-negative, got {amount}")
        key = structure.key
        self._structures[key] = structure
        self._values[key] = self._values.get(key, 0.0) + amount
        for evicted_key in self._lru.touch(key):
            self._forget(evicted_key)

    def distribute(self, structures: Iterable[CacheStructure], amount: float,
                   divide: bool = True) -> None:
        """Distribute a plan's regret over the structures it would have used.

        Args:
            structures: the plan's missing structures.
            amount: the plan's regret (Eq. 1 or Eq. 2).
            divide: if True (default) the amount is split equally, which is
                how we read "distributed uniformly to every physical
                structure used by the plan"; if False every structure is
                charged the full amount.

        Example:
            >>> from repro.structures.cached_column import CachedColumn
            >>> tracker = RegretTracker()
            >>> columns = [CachedColumn("orders", "o_custkey"),
            ...            CachedColumn("orders", "o_totalprice")]
            >>> tracker.distribute(columns, 6.0, divide=True)
            >>> [tracker.value(column.key) for column in columns]
            [3.0, 3.0]
        """
        if amount < 0:
            raise EconomyError(f"regret must be non-negative, got {amount}")
        structure_list = list(structures)
        if not structure_list:
            return
        share = amount / len(structure_list) if divide else amount
        for structure in structure_list:
            self.add(structure, share)

    # -- queries ----------------------------------------------------------------

    def value(self, key: str) -> float:
        """Accumulated regret of a structure (0 if never seen)."""
        return self._values.get(key, 0.0)

    def structure(self, key: str) -> Optional[CacheStructure]:
        """The structure object behind a key, if it is still in the pool."""
        return self._structures.get(key)

    def total(self) -> float:
        """Sum of all accumulated regret."""
        return sum(self._values.values())

    def tracked_keys(self) -> List[str]:
        """Keys currently in the pool, least recently touched first."""
        return self._lru.in_lru_order()

    def items(self):
        """(key, regret) pairs in insertion order, unsorted."""
        return self._values.items()

    def ranked(self) -> List[Tuple[str, float]]:
        """(key, regret) pairs sorted by descending regret."""
        return sorted(self._values.items(), key=lambda item: -item[1])

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    # -- lifecycle ----------------------------------------------------------------

    def reset(self, key: str) -> float:
        """Zero a structure's regret (called when the cloud builds it).

        Returns the regret that was accumulated.
        """
        value = self._values.pop(key, 0.0)
        self._structures.pop(key, None)
        self._lru.discard(key)
        return value

    def _forget(self, key: str) -> None:
        """Drop a structure evicted from the LRU pool."""
        self._values.pop(key, None)
        self._structures.pop(key, None)
