"""Exception hierarchy for the cloud-cache economy reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without also swallowing programming errors
such as ``TypeError`` raised by misuse of the Python API itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed, or inconsistent."""


class PricingError(ConfigurationError):
    """A resource price is unknown or invalid (for example, negative)."""


class SchemaError(ReproError):
    """A table, column, or index referenced in a query does not exist."""


class UnknownTableError(SchemaError):
    """A query or structure references a table not present in the catalog."""

    def __init__(self, table_name: str) -> None:
        super().__init__(f"unknown table: {table_name!r}")
        self.table_name = table_name


class UnknownColumnError(SchemaError):
    """A query or structure references a column not present in the catalog."""

    def __init__(self, table_name: str, column_name: str) -> None:
        super().__init__(f"unknown column: {table_name!r}.{column_name!r}")
        self.table_name = table_name
        self.column_name = column_name


class WorkloadError(ReproError):
    """The workload specification or generated workload is invalid."""


class BudgetFunctionError(ReproError):
    """A user budget function violates its contract (e.g. not descending)."""


class PlanningError(ReproError):
    """Plan enumeration failed or produced no feasible plan."""


class CacheError(ReproError):
    """The cache manager was asked to perform an impossible operation."""


class InsufficientSpaceError(CacheError):
    """A structure cannot be admitted because space cannot be reclaimed."""


class EconomyError(ReproError):
    """The economy engine reached an inconsistent state."""


class InsufficientCreditError(EconomyError):
    """An investment was attempted that exceeds the cloud's credit."""


class SimulationError(ReproError):
    """The event-driven simulator reached an inconsistent state."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""


class ShardingError(ReproError):
    """A sharded run was mis-configured or its shards diverged.

    Raised both for plain configuration mistakes (shard counts < 1, a
    worker asked about a tenant it does not own) and — more seriously —
    when the merge barrier detects that two shards disagree about a
    replicated quantity, which means the simulation was not deterministic.
    """


class PartitioningError(ReproError):
    """A stable-hash partitioning primitive was misused.

    Raised by :mod:`repro.partitioning`, the helper shared by tenant
    sharding (:mod:`repro.sharding`) and structure partitioning
    (:mod:`repro.distcache`); the two layers wrap it in their own error
    types at their public boundaries.
    """


class DistCacheError(ReproError):
    """A partitioned-cache run was mis-configured or violated an invariant.

    Raised for configuration mistakes (partition counts < 1, partitioned
    mode requested for a scheme with no economy) and — more seriously —
    when an audit detects a broken invariant: a structure admitted by a
    partition that does not own its key, a directory entry without a live
    owner, or a sub-account whose ledger no longer folds to its credit.
    """
