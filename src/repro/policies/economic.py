"""The three variants of the economic model evaluated in Section VII.

All three share the :class:`~repro.economy.engine.EconomyEngine`; they differ
only in which plans the enumerator may consider and how the chosen plan is
picked among the affordable ones:

* **econ-col** — plans may use only cached columns (no indexes, no extra
  CPU nodes); the chosen plan is the cheapest affordable one.
* **econ-cheap** — indexes and extra CPU nodes are allowed; the plan with
  the least cost is chosen.
* **econ-fast** — like econ-cheap, but the plan with the fastest response
  time is chosen.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional, Sequence

from repro.cache.manager import CacheConfig, CacheManager
from repro.costmodel.build import StructureCostModel
from repro.costmodel.execution import ExecutionCostModel
from repro.economy.engine import EconomyConfig, EconomyEngine, QueryOutcome
from repro.economy.negotiation import PlanSelection
from repro.economy.tenancy import TenantRegistry
from repro.errors import ConfigurationError
from repro.planner.enumerator import EnumeratorConfig, PlanEnumerator
from repro.policies.base import CachingScheme, SchemeStep
from repro.structures.cached_index import CachedIndex
from repro.workload.query import Query


@dataclass(frozen=True)
class EconomicSchemeConfig:
    """Configuration shared by the econ-* schemes.

    Attributes:
        economy: the economy-engine tunables (regret fraction, amortisation
            horizon, seed credit, plan-selection criterion, user model).
        enumerator: which plans may be considered.
        cache: cache capacity and failure-eviction settings.
        candidate_indexes: the advisor's index pool (ignored when the
            enumerator disallows index plans).
        tenants: optional multi-tenant registry; when set, pricing and
            negotiation become tenant-aware (per-tenant budgets, wallets,
            and regret) while ``None`` keeps the single-tenant path.
        engine_factory: optional hook replacing the engine construction.
            Called as ``factory(enumerator, structure_costs, cache_config,
            economy_config, tenants)`` and must return an
            :class:`~repro.economy.engine.EconomyEngine` (or subclass).
            :mod:`repro.distcache` uses this to install a partitioned
            engine over a partition-scoped cache without forking the
            scheme assembly.
    """

    economy: EconomyConfig = field(default_factory=EconomyConfig)
    enumerator: EnumeratorConfig = field(default_factory=EnumeratorConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    candidate_indexes: Sequence[CachedIndex] = ()
    tenants: Optional[TenantRegistry] = None
    engine_factory: Optional[Callable[..., EconomyEngine]] = None


class EconomicScheme(CachingScheme):
    """A caching scheme driven by the self-tuned economy."""

    def __init__(self, name: str, execution_model: ExecutionCostModel,
                 structure_costs: StructureCostModel,
                 config: EconomicSchemeConfig) -> None:
        if not name:
            raise ConfigurationError("scheme name must not be empty")
        self._name = name
        candidate_indexes = (
            tuple(config.candidate_indexes)
            if config.enumerator.allow_index_plans else ()
        )
        enumerator = PlanEnumerator(
            execution_model,
            candidate_indexes=candidate_indexes,
            config=config.enumerator,
        )
        if config.engine_factory is not None:
            self._engine = config.engine_factory(
                enumerator, structure_costs, config.cache,
                config.economy, config.tenants,
            )
        else:
            self._engine = EconomyEngine(
                enumerator=enumerator,
                structure_costs=structure_costs,
                cache=CacheManager(config.cache),
                config=config.economy,
                tenants=config.tenants,
            )

    @property
    def name(self) -> str:
        return self._name

    @property
    def cache(self) -> CacheManager:
        return self._engine.cache

    @property
    def engine(self) -> EconomyEngine:
        """The underlying economy engine (exposed for inspection and tests)."""
        return self._engine

    @property
    def tenant_registry(self) -> Optional[TenantRegistry]:
        """The engine's tenant registry (``None`` when single-tenant)."""
        return self._engine.tenants

    def process(self, query: Query) -> SchemeStep:
        outcome = self._engine.process_query(query)
        return _step_from_outcome(outcome)

    def prime_workload(self, queries: Sequence[Query],
                       settlement_period_s: Optional[float] = None) -> None:
        self._engine.prime_queries(queries, settlement_period_s)

    # -- market shocks ---------------------------------------------------------

    def apply_invalidation(self, predicate: str, now: float):
        # The engine also invalidates the plan enumerator's generation so
        # batched plan tables rebuild, and clears its pricing memos.
        return self._engine.invalidate_structures(predicate, now)

    def apply_price_shock(self, factor: float, now: float) -> None:
        super().apply_price_shock(factor, now)
        self._engine.apply_price_shock(factor)

    def apply_budget_squeeze(self, factor: float, now: float) -> None:
        self._engine.apply_budget_squeeze(factor)

    def enforce_maintenance(self, now: float):
        return self._engine.enforce_maintenance(now)


def _step_from_outcome(outcome: QueryOutcome) -> SchemeStep:
    """Translate an economy outcome into the scheme-level step record."""
    return SchemeStep(
        query_id=outcome.query.query_id,
        template_name=outcome.query.template_name,
        arrival_time_s=outcome.query.arrival_time,
        response_time_s=outcome.response_time_s,
        served_in_cache=outcome.served_in_cache,
        plan_label=outcome.plan_label,
        execution_cpu_dollars=outcome.execution_cpu_dollars,
        execution_io_dollars=outcome.execution_io_dollars,
        execution_network_dollars=outcome.execution_network_dollars,
        build_dollars=outcome.build_spend,
        network_bytes=outcome.network_bytes,
        charge=outcome.charge,
        profit=outcome.profit,
        builds=len(outcome.builds),
        evictions=len(outcome.evictions),
        eviction_losses=outcome.eviction_losses,
        tenant_id=outcome.tenant_id,
    )


# -- factory helpers ---------------------------------------------------------------


def build_econ_col(execution_model: ExecutionCostModel,
                   structure_costs: StructureCostModel,
                   config: Optional[EconomicSchemeConfig] = None) -> EconomicScheme:
    """econ-col: the economy restricted to cached columns."""
    base = config or EconomicSchemeConfig()
    adjusted = replace(
        base,
        economy=replace(base.economy, plan_selection=PlanSelection.CHEAPEST),
        enumerator=replace(base.enumerator, allow_index_plans=False,
                           max_extra_nodes=0),
        candidate_indexes=(),
    )
    return EconomicScheme("econ-col", execution_model, structure_costs, adjusted)


def build_econ_cheap(execution_model: ExecutionCostModel,
                     structure_costs: StructureCostModel,
                     config: Optional[EconomicSchemeConfig] = None) -> EconomicScheme:
    """econ-cheap: full economy, cheapest affordable plan."""
    base = config or EconomicSchemeConfig()
    adjusted = replace(
        base,
        economy=replace(base.economy, plan_selection=PlanSelection.CHEAPEST),
        enumerator=replace(base.enumerator, allow_index_plans=True),
    )
    return EconomicScheme("econ-cheap", execution_model, structure_costs, adjusted)


def build_econ_fast(execution_model: ExecutionCostModel,
                    structure_costs: StructureCostModel,
                    config: Optional[EconomicSchemeConfig] = None) -> EconomicScheme:
    """econ-fast: full economy, fastest affordable plan."""
    base = config or EconomicSchemeConfig()
    adjusted = replace(
        base,
        economy=replace(base.economy, plan_selection=PlanSelection.FASTEST),
        enumerator=replace(base.enumerator, allow_index_plans=True),
    )
    return EconomicScheme("econ-fast", execution_model, structure_costs, adjusted)
