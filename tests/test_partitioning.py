"""Tests for the shared stable-hash partitioning helper.

The point of :mod:`repro.partitioning` is that tenant sharding and
structure partitioning use one hash formula; the drift tests pin that
both layers actually delegate to it.
"""

import pytest

from repro.distcache import StructurePartitioner
from repro.errors import PartitioningError
from repro.partitioning import partition_index, stable_key_hash
from repro.sharding import TenantPartitioner, stable_tenant_hash


class TestStableKeyHash:
    def test_deterministic(self):
        assert stable_key_hash("alice") == stable_key_hash("alice")

    def test_spreads(self):
        hashes = {stable_key_hash(f"key{i}") for i in range(200)}
        assert len(hashes) == 200

    def test_is_64_bit(self):
        for key in ("a", "column:lineitem.l_quantity", "t00042"):
            assert 0 <= stable_key_hash(key) < 2 ** 64

    def test_known_value_is_pinned(self):
        """The mapping is part of the on-disk/merge contract: changing the
        hash silently would re-partition every existing run."""
        import hashlib
        expected = int.from_bytes(
            hashlib.blake2b(b"alice", digest_size=8).digest(), "big")
        assert stable_key_hash("alice") == expected

    def test_empty_key_rejected(self):
        with pytest.raises(PartitioningError):
            stable_key_hash("")


class TestPartitionIndex:
    def test_in_range(self):
        for count in (1, 2, 3, 7, 64):
            assert 0 <= partition_index("some-key", count) < count

    def test_single_partition_owns_everything(self):
        assert partition_index("anything", 1) == 0

    def test_invalid_count_rejected(self):
        with pytest.raises(PartitioningError):
            partition_index("key", 0)

    def test_every_partition_reachable(self):
        count = 4
        seen = {partition_index(f"key{i}", count) for i in range(200)}
        assert seen == set(range(count))


class TestLayersCannotDrift:
    """Both partitioners must agree with the shared formula, key by key."""

    def test_tenant_partitioner_delegates(self):
        partitioner = TenantPartitioner(shard_count=5)
        for i in range(50):
            tenant_id = f"t{i:05d}"
            assert partitioner.shard_of(tenant_id) == partition_index(
                tenant_id, 5)

    def test_structure_partitioner_delegates(self):
        partitioner = StructurePartitioner(partition_count=5)
        for i in range(50):
            key = f"column:lineitem.c{i}"
            assert partitioner.partition_of(key) == partition_index(key, 5)

    def test_same_key_same_slot_across_layers(self):
        """A string placed by both layers lands identically — the one
        shared hash, not two look-alikes."""
        for key in ("shared-key", "t00001", "index:lineitem(l_shipdate)"):
            assert (TenantPartitioner(8).shard_of(key)
                    == StructurePartitioner(8).partition_of(key))

    def test_stable_tenant_hash_delegates(self):
        assert stable_tenant_hash("bob") == stable_key_hash("bob")
