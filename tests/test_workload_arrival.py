"""Unit tests for the arrival processes."""

import pytest

from repro.errors import WorkloadError
from repro.workload.arrival import FixedInterarrival, PoissonArrival, TraceArrival


class TestFixedInterarrival:
    def test_times_are_evenly_spaced(self):
        process = FixedInterarrival(10.0)
        assert process.arrival_times(4) == [0.0, 10.0, 20.0, 30.0]

    def test_mean_equals_interval(self):
        assert FixedInterarrival(30.0).mean_interarrival == 30.0

    def test_zero_count(self):
        assert FixedInterarrival(1.0).arrival_times(0) == []

    def test_rejects_non_positive_interval(self):
        with pytest.raises(WorkloadError):
            FixedInterarrival(0.0)

    def test_rejects_negative_count(self):
        with pytest.raises(WorkloadError):
            FixedInterarrival(1.0).arrival_times(-1)


class TestPoissonArrival:
    def test_times_are_non_decreasing(self):
        times = PoissonArrival(5.0, seed=3).arrival_times(200)
        assert all(b >= a for a, b in zip(times, times[1:]))
        assert times[0] == 0.0

    def test_mean_gap_close_to_requested(self):
        times = PoissonArrival(5.0, seed=3).arrival_times(2_000)
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert sum(gaps) / len(gaps) == pytest.approx(5.0, rel=0.1)

    def test_deterministic_for_a_seed(self):
        a = PoissonArrival(2.0, seed=9).arrival_times(50)
        b = PoissonArrival(2.0, seed=9).arrival_times(50)
        assert a == b

    def test_different_seeds_differ(self):
        a = PoissonArrival(2.0, seed=1).arrival_times(50)
        b = PoissonArrival(2.0, seed=2).arrival_times(50)
        assert a != b

    def test_rejects_non_positive_mean(self):
        with pytest.raises(WorkloadError):
            PoissonArrival(0.0)


class TestTraceArrival:
    def test_replays_prefix(self):
        trace = TraceArrival([0.0, 1.0, 5.0, 9.0])
        assert trace.arrival_times(2) == [0.0, 1.0]

    def test_mean_interarrival(self):
        assert TraceArrival([0.0, 2.0, 4.0]).mean_interarrival == pytest.approx(2.0)

    def test_single_arrival_mean_is_zero(self):
        assert TraceArrival([3.0]).mean_interarrival == 0.0

    def test_rejects_requests_beyond_trace(self):
        with pytest.raises(WorkloadError):
            TraceArrival([0.0, 1.0]).arrival_times(3)

    def test_rejects_decreasing_trace(self):
        with pytest.raises(WorkloadError):
            TraceArrival([0.0, 2.0, 1.0])

    def test_rejects_negative_times(self):
        with pytest.raises(WorkloadError):
            TraceArrival([-1.0, 0.0])

    def test_rejects_empty_trace(self):
        with pytest.raises(WorkloadError):
            TraceArrival([])
