"""The cache manager.

Tracks built structures, their disk usage, their maintenance accrual, and
performs two kinds of eviction:

* **capacity eviction** (LRU): when the cache has a hard byte budget — the
  bypass-yield baseline uses 30 % of the database size — admitting a new
  structure evicts the least-recently-used ones until it fits;
* **failure eviction** ("structure failure", footnote 3): a structure that
  no selected plan has used (and paid maintenance for) within a bounded
  wall-clock window fails and is dropped. This is what lets the economy
  adapt when the workload evolves and is the mechanism behind the
  60-second-interval behaviour of Figures 4 and 5: the same number of
  unused queries corresponds to a much longer — and costlier — idle spell.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.cache.lru import LruTracker
from repro.cache.storage import CacheEntry, EvictionRecord
from repro.errors import CacheError, InsufficientSpaceError
from repro.structures.base import CacheStructure, StructureKind


@dataclass(frozen=True)
class CacheConfig:
    """Capacity and eviction settings of the cache.

    Attributes:
        capacity_bytes: hard disk budget, or ``None`` for the paper's
            "unlimited storage" cloud setting.
        max_idle_s: a structure that no selected plan has used for this many
            simulated seconds fails and is released ("structure failure",
            footnote 3: its maintenance keeps accruing with nobody paying
            for it). Because the rule is expressed in wall-clock idleness,
            longer query inter-arrival times make the same number of unused
            queries far more damaging — the effect behind the 60-second
            results of Figures 4 and 5. ``None`` disables failure eviction.
        column_idle_multiplier: grace multiplier applied to cached columns'
            idle limit. Section VII-B: columns "are small compared to
            indexes and they are less eligible for eviction".
        min_residency_s: a structure is never failed sooner than this after
            being built, giving it a chance to serve queries.
    """

    capacity_bytes: Optional[int] = None
    max_idle_s: Optional[float] = 7_200.0
    column_idle_multiplier: float = 4.0
    min_residency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_bytes is not None and self.capacity_bytes <= 0:
            raise CacheError("capacity_bytes must be positive or None")
        if self.max_idle_s is not None and self.max_idle_s <= 0:
            raise CacheError("max_idle_s must be positive or None")
        if self.column_idle_multiplier < 1.0:
            raise CacheError("column_idle_multiplier must be >= 1")
        if self.min_residency_s < 0:
            raise CacheError("min_residency_s must be non-negative")


class CacheManager:
    """Holds the built structures and enforces the eviction policies."""

    def __init__(self, config: CacheConfig = CacheConfig()) -> None:
        self._config = config
        self._entries: Dict[str, CacheEntry] = {}
        self._lru: LruTracker[str] = LruTracker()
        self._evictions: List[EvictionRecord] = []
        self._peak_disk_used_bytes = 0
        self._version = 0
        # Earliest simulated time at which any entry could fail the idle
        # check; lets evict_failed_structures skip the scan entirely when
        # nothing can possibly have expired yet.
        self._failure_horizon: Optional[float] = None
        # Observability sink (duck-typed TraceRecorder); None = disabled.
        self._trace = None

    def attach_trace(self, recorder) -> None:
        """Attach a read-only trace recorder (admit/evict counters)."""
        self._trace = recorder

    # -- introspection ------------------------------------------------------------

    @property
    def config(self) -> CacheConfig:
        """The cache configuration."""
        return self._config

    @property
    def version(self) -> int:
        """Counter bumped whenever the set of built structures changes.

        Lets callers memoize derived views (e.g. the cached-column key
        set the build-cost model consults) without rescanning the cache
        on every query.
        """
        return self._version

    @property
    def built_keys(self) -> Set[str]:
        """Keys of every structure currently built."""
        return set(self._entries)

    @property
    def entries(self) -> Tuple[CacheEntry, ...]:
        """All current entries (stable order: insertion order)."""
        return tuple(self._entries.values())

    @property
    def evictions(self) -> Tuple[EvictionRecord, ...]:
        """Every eviction that has happened so far."""
        return tuple(self._evictions)

    @property
    def disk_used_bytes(self) -> int:
        """Total disk footprint of the built structures."""
        return sum(entry.size_bytes for entry in self._entries.values())

    @property
    def peak_disk_used_bytes(self) -> int:
        """Largest disk footprint the cache ever reached.

        Scaling runs compare this across execution modes: a replicated
        cache peaks at the full working set on every worker, a partitioned
        one only at its owned slice.
        """
        return self._peak_disk_used_bytes

    def contains(self, key: str) -> bool:
        """Whether a structure with the given key is built."""
        return key in self._entries

    def entry(self, key: str) -> CacheEntry:
        """The entry for ``key`` or raise :class:`CacheError`."""
        try:
            return self._entries[key]
        except KeyError:
            raise CacheError(f"structure not in cache: {key!r}") from None

    def entries_of_kind(self, kind: StructureKind) -> List[CacheEntry]:
        """All entries whose structure is of the given kind."""
        return [entry for entry in self._entries.values()
                if entry.structure.kind is kind]

    def maintenance_rate_total(self) -> float:
        """Combined $ per second maintenance rate of everything built."""
        return sum(entry.maintenance_rate for entry in self._entries.values())

    # -- admission ------------------------------------------------------------------

    def admit(self, structure: CacheStructure, size_bytes: int, build_cost: float,
              maintenance_rate: float, now: float) -> List[EvictionRecord]:
        """Build a structure, evicting LRU entries if a capacity budget requires it.

        Returns the eviction records of any structures removed to make room.

        Raises:
            CacheError: if the structure is already built.
            InsufficientSpaceError: if the structure alone exceeds the
                capacity budget.
        """
        if structure.key in self._entries:
            raise CacheError(f"structure already in cache: {structure.key!r}")
        evicted: List[EvictionRecord] = []
        capacity = self._config.capacity_bytes
        if capacity is not None:
            if size_bytes > capacity:
                raise InsufficientSpaceError(
                    f"{structure.key} needs {size_bytes} bytes but the cache "
                    f"budget is {capacity} bytes"
                )
            evicted = self._evict_to_fit(size_bytes, now)
        entry = CacheEntry(
            structure=structure,
            size_bytes=size_bytes,
            build_cost=build_cost,
            maintenance_rate=maintenance_rate,
            built_at=now,
        )
        self._entries[structure.key] = entry
        self._lru.touch(structure.key)
        self._version += 1
        self._failure_horizon = None
        self._peak_disk_used_bytes = max(self._peak_disk_used_bytes,
                                         self.disk_used_bytes)
        if self._trace is not None:
            self._trace.count("cache:admit")
        return evicted

    # -- usage and billing --------------------------------------------------------------

    def record_usage(self, keys: Iterable[str], now: float) -> None:
        """Mark the given structures as used by a selected plan at time ``now``."""
        for key in keys:
            entry = self.entry(key)
            entry.last_used_at = max(entry.last_used_at, now)
            entry.queries_served += 1
            self._lru.touch(key)

    def bill_maintenance(self, keys: Iterable[str], now: float) -> Dict[str, float]:
        """Bill the accrued maintenance of the given structures up to ``now``.

        Footnote 3: each newly selected plan pays the maintenance accumulated
        since the previous plan that paid. Returns the amount billed per key.
        """
        billed: Dict[str, float] = {}
        for key in keys:
            entry = self.entry(key)
            amount = entry.accrued_maintenance(now)
            entry.last_billed_at = now
            entry.maintenance_billed += amount
            billed[key] = amount
        return billed

    def record_amortized_recovery(self, key: str, amount: float) -> None:
        """Record that ``amount`` of a structure's build cost was recovered."""
        if amount < 0:
            raise CacheError(f"amount must be non-negative, got {amount}")
        self.entry(key).amortized_recovered += amount

    def accrued_maintenance(self, now: float) -> Dict[str, float]:
        """Unbilled maintenance of every structure up to ``now``."""
        return {key: entry.accrued_maintenance(now)
                for key, entry in self._entries.items()}

    # -- eviction ---------------------------------------------------------------------

    def evict(self, key: str, now: float, reason: str = "explicit") -> EvictionRecord:
        """Remove a structure from the cache and record why."""
        entry = self.entry(key)
        record = EvictionRecord(
            key=key,
            evicted_at=now,
            reason=reason,
            unpaid_maintenance=entry.accrued_maintenance(now),
            unrecovered_build_cost=entry.unrecovered_build_cost(),
            queries_served=entry.queries_served,
        )
        del self._entries[key]
        self._lru.discard(key)
        self._version += 1
        self._evictions.append(record)
        if self._trace is not None:
            self._trace.count(f"cache:evict_{reason}")
        return record

    def evict_failed_structures(self, now: float) -> List[EvictionRecord]:
        """Apply the structure-failure rule of footnote 3.

        A structure fails once no selected plan has used it for more than
        ``max_idle_s`` of simulated time (and it has been resident for at
        least ``min_residency_s``): its maintenance has been accruing with
        nobody paying for it, so the cloud stops keeping it.
        """
        config = self._config
        if config.max_idle_s is None:
            return []
        # The horizon is a lower bound on the first time any entry can
        # fail: usage and eviction only push failure times later, and
        # admitting a new entry clears it, so skipping the scan before the
        # horizon cannot change which structures fail or when.
        if self._failure_horizon is not None and now < self._failure_horizon:
            return []
        failed: List[EvictionRecord] = []
        horizon = float("inf")
        for key in list(self._entries):
            entry = self._entries[key]
            limit = config.max_idle_s
            if entry.structure.kind is StructureKind.COLUMN:
                limit *= config.column_idle_multiplier
            if now - entry.built_at < config.min_residency_s:
                horizon = min(horizon,
                              max(entry.built_at + config.min_residency_s,
                                  entry.last_used_at + limit))
                continue
            if entry.idle_time(now) > limit:
                failed.append(self.evict(key, now, reason="idle_failure"))
            else:
                horizon = min(horizon, entry.last_used_at + limit)
        self._failure_horizon = horizon
        return failed

    def _evict_to_fit(self, incoming_bytes: int, now: float) -> List[EvictionRecord]:
        """LRU-evict until ``incoming_bytes`` fits in the capacity budget."""
        capacity = self._config.capacity_bytes
        assert capacity is not None
        evicted: List[EvictionRecord] = []
        while self.disk_used_bytes + incoming_bytes > capacity:
            victim = self._lru.least_recently_used()
            if victim is None:
                raise InsufficientSpaceError(
                    f"cannot free {incoming_bytes} bytes: cache is empty"
                )
            evicted.append(self.evict(victim, now, reason="capacity_lru"))
        return evicted
