"""The caching schemes evaluated in Section VII.

* ``bypass`` (net-only): the bypass-yield baseline of Malik et al. — only
  network traffic matters, only table columns are cached, the cache budget is
  30 % of the database size.
* ``econ-col``: the economic model restricted to cached columns.
* ``econ-cheap``: the full economic model (columns, indexes, extra CPU
  nodes) choosing the cheapest affordable plan.
* ``econ-fast``: like econ-cheap but choosing the fastest affordable plan.
"""

from repro.policies.base import CachingScheme, SchemeStep
from repro.policies.bypass_yield import BypassYieldConfig, BypassYieldScheme
from repro.policies.economic import (
    EconomicScheme,
    EconomicSchemeConfig,
    build_econ_cheap,
    build_econ_col,
    build_econ_fast,
)
from repro.policies.factory import SCHEME_NAMES, build_scheme

__all__ = [
    "CachingScheme",
    "SchemeStep",
    "BypassYieldConfig",
    "BypassYieldScheme",
    "EconomicScheme",
    "EconomicSchemeConfig",
    "build_econ_col",
    "build_econ_cheap",
    "build_econ_fast",
    "SCHEME_NAMES",
    "build_scheme",
]
