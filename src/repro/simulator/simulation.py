"""The simulation loop.

The simulation pushes one arrival event per workload query onto the event
queue and processes them in time order. Between consecutive events it
integrates the time-proportional maintenance cost of everything the scheme
currently keeps built (disk storage of cached columns and indexes, uptime of
extra CPU nodes), which is how the inter-arrival time ends up mattering for
the operating cost even though per-query work is unchanged — exactly the
effect Figures 4 and 5 study.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import SimulationError
from repro.policies.base import CachingScheme
from repro.simulator.clock import SimulationClock
from repro.simulator.events import EventQueue, QueryArrivalEvent
from repro.simulator.metrics import MetricsCollector
from repro.simulator.results import SimulationResult
from repro.workload.query import Query


@dataclass(frozen=True)
class SimulationConfig:
    """Run-level options.

    Attributes:
        warmup_queries: number of initial queries excluded from the metrics
            (they still update the scheme's state). The paper's measurements
            start from an operating cloud; a small warm-up avoids crediting
            or penalising schemes for the very first cold-cache queries.
        trailing_settlement: whether maintenance is also charged for the
            interval between the last two arrivals after the final query
            (keeps total duration equal to ``count * interarrival``).
    """

    warmup_queries: int = 0
    trailing_settlement: bool = True

    def __post_init__(self) -> None:
        if self.warmup_queries < 0:
            raise SimulationError("warmup_queries must be non-negative")


class CloudSimulation:
    """Replays a workload against a caching scheme and collects metrics."""

    def __init__(self, scheme: CachingScheme,
                 config: SimulationConfig = SimulationConfig()) -> None:
        self._scheme = scheme
        self._config = config

    @property
    def scheme(self) -> CachingScheme:
        """The scheme under simulation."""
        return self._scheme

    def run(self, queries: Sequence[Query]) -> SimulationResult:
        """Process all queries in arrival order and return the result."""
        query_list = list(queries)
        if not query_list:
            raise SimulationError("the workload contains no queries")
        if self._config.warmup_queries >= len(query_list):
            raise SimulationError(
                f"warmup_queries={self._config.warmup_queries} leaves no "
                f"measured queries out of {len(query_list)}"
            )

        events = EventQueue()
        events.push_all(
            QueryArrivalEvent(time_s=query.arrival_time, query=query)
            for query in query_list
        )

        clock = SimulationClock(start_time_s=query_list[0].arrival_time)
        collector = MetricsCollector(self._scheme.name)
        processed = 0
        last_interval = 0.0

        while not events.empty:
            event = events.pop()
            if not isinstance(event, QueryArrivalEvent):
                raise SimulationError(f"unexpected event type: {event!r}")
            elapsed = clock.advance_to(event.time_s)
            last_interval = elapsed if elapsed > 0 else last_interval
            self._settle_maintenance(collector, elapsed, measured=processed >= self._config.warmup_queries)

            step = self._scheme.process(event.query)
            processed += 1
            if processed > self._config.warmup_queries:
                collector.record_step(step)

        if self._config.trailing_settlement and last_interval > 0:
            clock.advance_by(last_interval)
            self._settle_maintenance(collector, last_interval, measured=True)

        return SimulationResult(summary=collector.summary(), steps=collector.steps)

    def _settle_maintenance(self, collector: MetricsCollector, elapsed_s: float,
                            measured: bool) -> None:
        """Charge storage/uptime for the elapsed interval (if being measured)."""
        if elapsed_s <= 0 or not measured:
            return
        rate = self._scheme.maintenance_rate()
        collector.record_maintenance(rate * elapsed_s, elapsed_s)


def run_scheme(scheme: CachingScheme, queries: Iterable[Query],
               warmup_queries: int = 0) -> SimulationResult:
    """Convenience one-call simulation used by examples and benchmarks."""
    simulation = CloudSimulation(
        scheme, SimulationConfig(warmup_queries=warmup_queries)
    )
    return simulation.run(list(queries))
