"""Deterministic structure → partition and query → partition assignment.

Two mappings define a partitioned run, both built on the stable content
hash of :mod:`repro.partitioning` (the helper shared with tenant
sharding, so the two layers cannot drift):

* :class:`StructurePartitioner` — which cache partition **owns** a
  structure key. Only the owner may build, hold, bill, or evict the
  structure; every other partition sees it through the
  :class:`~repro.distcache.directory.CrossShardDirectory` and pays a
  remote-access surcharge to use it. Ownership disjointness is what makes
  the per-partition caches and provider sub-accounts mergeable exactly.
  An **ownership-override table** is consulted before the hash fallback:
  adaptive placement (:mod:`repro.distcache.placement`) hands structures
  to the partition deriving the most priced benefit from them, and the
  override table is how those handoffs become the new ownership truth —
  every consumer (directory checks, admission guards, regret routing)
  reads ownership through :meth:`StructurePartitioner.partition_of`, so
  an override takes effect everywhere at once.
* :class:`QueryRouter` — which partition **serves** a query. Routing is
  by template affinity (stable hash of the template name): queries
  instantiated from one template touch the same columns and indexes, so
  sending a template always to the same partition maximises the chance
  that the structures it wants are owned locally. This is the axis that
  scales per-query compute — each query is planned, priced, and
  negotiated by exactly one partition, where the replicated-replay
  sharding mode re-runs every query on every worker.

Example:
    >>> partitioner = StructurePartitioner(partition_count=4)
    >>> 0 <= partitioner.partition_of("column:lineitem.l_quantity") < 4
    True
    >>> partitioner.partition_of("x") == StructurePartitioner(4).partition_of("x")
    True
    >>> StructurePartitioner(1).partition_of("anything")
    0
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import DistCacheError
from repro.partitioning import partition_index
from repro.workload.query import Query


@dataclass(frozen=True)
class StructurePartitioner:
    """Maps structure keys onto ``partition_count`` partitions by stable hash.

    Frozen (hashable, picklable) so it can ride inside a partition task to
    a worker process and be reconstructed bit-for-bit on the other side.

    Attributes:
        partition_count: number of cache partitions; any count >= 1 is valid.
        overrides: the ownership-override table — ``(key, partition)``
            pairs consulted before the hash fallback, normalised to
            key-sorted order with no entry that merely restates the hash
            owner (so two partitioners with the same effective mapping
            compare and hash equal). Empty by default: pure hash
            placement, byte-identical to the pre-placement behaviour.

    Example:
        >>> base = StructurePartitioner(partition_count=2)
        >>> key = "column:lineitem.l_quantity"
        >>> moved = base.with_overrides({key: 1 - base.partition_of(key)})
        >>> moved.partition_of(key) == 1 - base.partition_of(key)
        True
        >>> moved.hash_owner_of(key) == base.partition_of(key)
        True
        >>> moved.with_overrides({key: base.partition_of(key)}).overrides
        ()
    """

    partition_count: int
    overrides: Tuple[Tuple[str, int], ...] = ()
    _override_map: Dict[str, int] = field(
        init=False, repr=False, compare=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.partition_count < 1:
            raise DistCacheError(
                f"partition_count must be >= 1, got {self.partition_count}"
            )
        seen: Dict[str, int] = {}
        for key, partition in self.overrides:
            if not key:
                raise DistCacheError("override key must not be empty")
            if key in seen:
                raise DistCacheError(
                    f"duplicate ownership override for {key!r}")
            if not 0 <= partition < self.partition_count:
                raise DistCacheError(
                    f"override for {key!r} targets partition {partition}, "
                    f"outside [0, {self.partition_count})"
                )
            seen[key] = partition
        canonical = tuple(sorted(
            (key, partition) for key, partition in seen.items()
            if partition_index(key, self.partition_count) != partition
        ))
        object.__setattr__(self, "overrides", canonical)
        object.__setattr__(self, "_override_map", dict(canonical))

    def partition_of(self, key: str) -> int:
        """The partition that owns structure ``key``: the override table
        first, the stable hash as fallback."""
        if not key:
            raise DistCacheError("structure key must not be empty")
        override = self._override_map.get(key)
        if override is not None:
            return override
        return partition_index(key, self.partition_count)

    def hash_owner_of(self, key: str) -> int:
        """The pure hash owner of ``key``, ignoring any override."""
        if not key:
            raise DistCacheError("structure key must not be empty")
        return partition_index(key, self.partition_count)

    def override_of(self, key: str) -> Optional[int]:
        """The override entry for ``key``, if one is in force."""
        return self._override_map.get(key)

    def with_overrides(self, handoffs: Mapping[str, int]
                       ) -> "StructurePartitioner":
        """A new partitioner with ``handoffs`` merged over the current table.

        A handoff that restores a key to its hash owner *removes* the
        key's entry (the canonical form keeps no redundant overrides), so
        repeated handoffs cannot grow the table without bound.
        """
        merged = dict(self._override_map)
        merged.update(handoffs)
        return StructurePartitioner(
            partition_count=self.partition_count,
            overrides=tuple(merged.items()),
        )

    def owns(self, partition: int, key: str) -> bool:
        """Whether ``partition`` is the owner of structure ``key``."""
        self.validate_index(partition)
        return self.partition_of(key) == partition

    def validate_index(self, partition: int) -> int:
        """Check a partition index is in range; returns it for chaining."""
        if not 0 <= partition < self.partition_count:
            raise DistCacheError(
                f"partition index must be in [0, {self.partition_count}), "
                f"got {partition}"
            )
        return partition

    def assignment(self, keys: Iterable[str]) -> Dict[str, int]:
        """``key -> partition`` for every key, in input order."""
        return {key: self.partition_of(key) for key in keys}


@dataclass(frozen=True)
class QueryRouter:
    """Routes queries to partitions by stable hash of their template name.

    Attributes:
        partition_count: number of cache partitions; must match the
            :class:`StructurePartitioner` of the run.

    Example:
        >>> from repro.workload.query import Query
        >>> query = Query(query_id=7, template_name="q1_pricing_summary",
        ...               table_name="lineitem", predicates=(),
        ...               projection_columns=("l_quantity",))
        >>> router = QueryRouter(partition_count=4)
        >>> router.partition_of(query) == router.partition_of(query)
        True
        >>> QueryRouter(partition_count=1).partition_of(query)
        0
    """

    partition_count: int

    def __post_init__(self) -> None:
        if self.partition_count < 1:
            raise DistCacheError(
                f"partition_count must be >= 1, got {self.partition_count}"
            )

    def partition_of(self, query: Query) -> int:
        """The partition that serves ``query`` (template-affinity routing)."""
        if not query.template_name:
            raise DistCacheError("query template_name must not be empty")
        return partition_index(query.template_name, self.partition_count)

    def split(self, queries: Sequence[Query]) -> List[List[Query]]:
        """Partition queries into per-partition streams (order preserved).

        Example:
            >>> from repro.workload.query import Query
            >>> queries = [Query(query_id=i, template_name=f"t{i % 3}",
            ...                  table_name="lineitem", predicates=(),
            ...                  projection_columns=("l_quantity",))
            ...            for i in range(6)]
            >>> parts = QueryRouter(partition_count=2).split(queries)
            >>> sorted(q.query_id for part in parts for q in part)
            [0, 1, 2, 3, 4, 5]
        """
        parts: List[List[Query]] = [[] for _ in range(self.partition_count)]
        for query in queries:
            parts[self.partition_of(query)].append(query)
        return parts
