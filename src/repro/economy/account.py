"""The cloud account (credit ``CR``).

User payments for query services are deposited here; investments in new
cache structures and maintenance losses are paid from here. The account
keeps a full transaction ledger so experiments can report where the money
went.

Example:
    >>> account = CloudAccount(initial_credit=10.0)
    >>> account.deposit(5.0, time_s=1.0, category="query_payment")
    >>> account.withdraw(3.0, time_s=2.0, category="structure_build")
    >>> round(account.credit, 6)
    12.0
    >>> len(account.transactions)
    3
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import EconomyError, InsufficientCreditError


@dataclass(frozen=True)
class Transaction:
    """One ledger entry: a signed amount with a category and a note."""

    time_s: float
    category: str
    amount: float
    note: str = ""


class CloudAccount:
    """Tracks the cloud credit ``CR`` and every deposit/withdrawal.

    Args:
        initial_credit: seed working capital; booked as a ``seed_capital``
            ledger entry when non-zero.
        allow_negative: permit withdrawals past zero (used for tenant
            wallets, which go into debt instead of dropping charges).

    Example:
        >>> account = CloudAccount(initial_credit=2.0)
        >>> account.can_afford(3.0)
        False
        >>> CloudAccount(initial_credit=2.0, allow_negative=True).can_afford(3.0)
        True
    """

    #: Ledger categories used by the engine; free-form strings are allowed
    #: but these are the ones reports aggregate on.
    CATEGORY_SEED = "seed_capital"
    CATEGORY_QUERY_PAYMENT = "query_payment"
    CATEGORY_EXECUTION_COST = "execution_cost"
    CATEGORY_BUILD = "structure_build"
    CATEGORY_MAINTENANCE_RECOVERED = "maintenance_recovered"
    CATEGORY_MAINTENANCE_LOSS = "maintenance_loss"

    def __init__(self, initial_credit: float = 0.0,
                 allow_negative: bool = False) -> None:
        if initial_credit < 0:
            raise EconomyError(
                f"initial_credit must be non-negative, got {initial_credit}"
            )
        self._credit = float(initial_credit)
        self._allow_negative = allow_negative
        self._transactions: List[Transaction] = []
        if initial_credit:
            self._transactions.append(Transaction(
                time_s=0.0, category=self.CATEGORY_SEED,
                amount=initial_credit, note="initial working capital",
            ))

    @property
    def credit(self) -> float:
        """The current credit ``CR``."""
        return self._credit

    @property
    def transactions(self) -> Tuple[Transaction, ...]:
        """The full ledger, oldest first."""
        return tuple(self._transactions)

    def deposit(self, amount: float, time_s: float, category: str,
                note: str = "") -> None:
        """Add money to the account (user payments, recovered maintenance).

        Args:
            amount: the (non-negative) amount to credit.
            time_s: simulated instant of the deposit.
            category: ledger category (see the ``CATEGORY_*`` constants).
            note: free-form ledger note.

        Example:
            >>> account = CloudAccount()
            >>> account.deposit(1.5, time_s=0.0, category="query_payment")
            >>> account.credit
            1.5
        """
        if amount < 0:
            raise EconomyError(f"deposit amount must be non-negative, got {amount}")
        self._credit += amount
        self._transactions.append(Transaction(
            time_s=time_s, category=category, amount=amount, note=note,
        ))

    def withdraw(self, amount: float, time_s: float, category: str,
                 note: str = "") -> None:
        """Spend money (structure builds, execution costs, maintenance losses).

        Args:
            amount: the (non-negative) amount to debit.
            time_s: simulated instant of the withdrawal.
            category: ledger category (see the ``CATEGORY_*`` constants).
            note: free-form ledger note.

        Raises:
            InsufficientCreditError: if the account would go negative and
                was created with ``allow_negative=False``.

        Example:
            >>> account = CloudAccount(initial_credit=1.0)
            >>> account.withdraw(2.0, time_s=0.0, category="structure_build")
            Traceback (most recent call last):
                ...
            repro.errors.InsufficientCreditError: cannot withdraw 2.0000: credit is 1.0000
        """
        if amount < 0:
            raise EconomyError(f"withdraw amount must be non-negative, got {amount}")
        if not self._allow_negative and amount > self._credit + 1e-12:
            raise InsufficientCreditError(
                f"cannot withdraw {amount:.4f}: credit is {self._credit:.4f}"
            )
        self._credit -= amount
        self._transactions.append(Transaction(
            time_s=time_s, category=category, amount=-amount, note=note,
        ))

    def can_afford(self, amount: float) -> bool:
        """Whether a withdrawal of ``amount`` would be allowed."""
        if self._allow_negative:
            return True
        return amount <= self._credit + 1e-12

    def totals_by_category(self) -> Dict[str, float]:
        """Signed totals per ledger category.

        Returns:
            ``category -> signed total`` over the full ledger.

        Example:
            >>> account = CloudAccount()
            >>> account.deposit(4.0, 0.0, "query_payment")
            >>> account.withdraw(1.0, 1.0, "execution_cost")
            >>> account.totals_by_category() == {
            ...     "query_payment": 4.0, "execution_cost": -1.0}
            True
        """
        totals: Dict[str, float] = {}
        for transaction in self._transactions:
            totals[transaction.category] = (
                totals.get(transaction.category, 0.0) + transaction.amount
            )
        return totals

    def total_deposited(self) -> float:
        """Sum of all positive ledger entries."""
        return sum(t.amount for t in self._transactions if t.amount > 0)

    def total_withdrawn(self) -> float:
        """Sum of the magnitudes of all negative ledger entries."""
        return sum(-t.amount for t in self._transactions if t.amount < 0)
