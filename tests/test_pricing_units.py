"""Unit tests for the pricing unit-conversion helpers."""

import pytest

from repro import constants
from repro.errors import PricingError
from repro.pricing import units


class TestPerHourToPerSecond:
    def test_converts_ec2_instance_hour(self):
        assert units.per_hour_to_per_second(0.10) == pytest.approx(0.10 / 3600.0)

    def test_zero_price_is_allowed(self):
        assert units.per_hour_to_per_second(0.0) == 0.0

    def test_negative_price_is_rejected(self):
        with pytest.raises(PricingError):
            units.per_hour_to_per_second(-0.1)


class TestStorageConversion:
    def test_gb_month_to_byte_second(self):
        rate = units.per_gb_month_to_per_byte_second(0.15)
        expected = 0.15 / constants.GB / constants.SECONDS_PER_MONTH
        assert rate == pytest.approx(expected)

    def test_one_gb_for_one_month_costs_the_quoted_price(self):
        rate = units.per_gb_month_to_per_byte_second(0.15)
        assert rate * constants.GB * constants.SECONDS_PER_MONTH == pytest.approx(0.15)

    def test_negative_is_rejected(self):
        with pytest.raises(PricingError):
            units.per_gb_month_to_per_byte_second(-1.0)


class TestTransferConversion:
    def test_per_gb_to_per_byte(self):
        assert units.per_gb_to_per_byte(0.17) == pytest.approx(0.17 / constants.GB)

    def test_per_million_ops(self):
        assert units.per_million_ops_to_per_op(0.10) == pytest.approx(1e-7)


class TestThroughputConversion:
    def test_25_mbps_is_3_125_megabytes_per_second(self):
        bps = units.megabits_per_second_to_bytes_per_second(25.0)
        assert bps == pytest.approx(3.125e6)

    def test_zero_throughput_is_rejected(self):
        with pytest.raises(PricingError):
            units.megabits_per_second_to_bytes_per_second(0.0)


class TestByteHelpers:
    def test_bytes_to_gigabytes_round_trip(self):
        assert units.gigabytes_to_bytes(units.bytes_to_gigabytes(2_500_000_000)) == 2_500_000_000

    def test_negative_bytes_rejected(self):
        with pytest.raises(PricingError):
            units.bytes_to_gigabytes(-1)


class TestFormatDollars:
    def test_large_amounts_have_no_decimals(self):
        assert units.format_dollars(1234.56) == "$1,235"

    def test_mid_amounts_have_two_decimals(self):
        assert units.format_dollars(12.345) == "$12.35"

    def test_small_amounts_have_four_decimals(self):
        assert units.format_dollars(0.01234) == "$0.0123"
