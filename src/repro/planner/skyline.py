"""Skyline filtering of candidate plans.

Footnote 2 of the paper: "We assume that PQ holds only the skyline query
plans (w.r.t. execution time and overall cost); i.e. if there are two plans
with the same execution time, only the cheapest one is encompassed in PQ."

A plan is dominated if another plan is at least as fast *and* at least as
cheap (and strictly better in one of the two dimensions).

The walk over the time-ordered candidates lives in :func:`skyline_indices`,
which operates on pre-extracted ``(times, costs)`` sequences and returns the
selected *positions*. :func:`skyline_filter` decorates once (a single
``time_of``/``cost_of`` call per plan instead of one per comparison) and
:mod:`repro.costmodel.vectorized` reuses the same walk over numpy-ordered
arrays, so the scalar and batched planners share one skyline definition.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

PlanT = TypeVar("PlanT")


def skyline_indices(times: Sequence[float], costs: Sequence[float],
                    tolerance: float = 1e-12,
                    order: Optional[Sequence[int]] = None) -> List[int]:
    """Positions of the non-dominated ``(time, cost)`` points, time-ascending.

    Args:
        times: execution time per candidate.
        costs: overall cost per candidate.
        tolerance: two values closer than this are considered equal, so that
            floating-point noise does not create spurious skyline points.
        order: optional pre-computed stable ordering of the candidate
            positions by ``(time, cost)`` (e.g. from ``numpy.lexsort``);
            computed here when omitted.
    """
    count = len(times)
    if count == 0:
        return []
    if order is None:
        # Decorate-sort: position as the last tuple element makes the sort
        # a stable (time, cost) ordering with C-level tuple comparisons.
        order = [decorated[2]
                 for decorated in sorted(zip(times, costs, range(count)))]
    skyline: List[int] = []
    best_cost = float("inf")
    for position in order:
        point_time = times[position]
        point_cost = costs[position]
        if skyline and abs(point_time - times[skyline[-1]]) <= tolerance:
            # Same execution time as the previous skyline point: footnote 2
            # keeps only the cheapest of the two.
            if point_cost < costs[skyline[-1]]:
                skyline[-1] = position
                best_cost = min(best_cost, point_cost)
            continue
        if point_cost < best_cost - tolerance:
            skyline.append(position)
            best_cost = point_cost
    return skyline


def skyline_filter(plans: Sequence[PlanT],
                   time_of: Callable[[PlanT], float],
                   cost_of: Callable[[PlanT], float],
                   tolerance: float = 1e-12) -> List[PlanT]:
    """Return the non-dominated plans, sorted by ascending execution time.

    Args:
        plans: candidate plans.
        time_of: accessor returning a plan's execution time.
        cost_of: accessor returning a plan's overall cost.
        tolerance: two values closer than this are considered equal, so that
            floating-point noise does not create spurious skyline points.
    """
    if not plans:
        return []
    times = [time_of(plan) for plan in plans]
    costs = [cost_of(plan) for plan in plans]
    return [plans[i] for i in skyline_indices(times, costs, tolerance)]
