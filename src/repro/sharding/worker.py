"""One shard's execution: a full deterministic replay with scoped ownership.

A :class:`ShardWorker` rebuilds the populated workload from the frozen
cell config (never pickling queries across the process boundary), runs the
complete event stream through its own
:class:`~repro.simulator.kernel.SimulationKernel` and
:class:`~repro.economy.engine.EconomyEngine`, and owns — materialises
mutable state and produces accounting for — only the tenants its shard is
assigned by the :class:`~repro.sharding.partition.TenantPartitioner`.

Because every worker replays the same deterministic stream, the shared
trajectory (cache contents, provider account, negotiation outcomes) is
bitwise identical across shards; only the *ownership* of the per-tenant
outputs differs. At every maintenance settlement the worker snapshots a
:class:`SettlementCheckpoint`; the coordinator later aligns these across
shards, turning each settlement boundary into a determinism barrier and a
credit-conservation audit point.

``run_shard`` is a module-level function so tasks pickle cleanly into a
``ProcessPoolExecutor``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.economy.account import CloudAccount
from repro.economy.engine import EconomyConfig
from repro.errors import ShardingError
from repro.obs.metrics import MetricsTimeseries, attach_observability
from repro.obs.trace import TraceRecorder
from repro.experiments.tenants import (
    ARRIVAL_STREAMED,
    TenantExperimentConfig,
    build_population,
    sorted_breakdowns,
)
from repro.policies.economic import EconomicSchemeConfig
from repro.sharding.partition import TenantPartitioner
from repro.sharding.registry import ShardScopedRegistry
from repro.simulator.events import MaintenanceSettlementEvent, QueryArrivalEvent
from repro.simulator.metrics import MetricsSummary, TenantBreakdown
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.system import CloudSystem
from repro.workload.generator import WorkloadGenerator
from repro.workload.grammar import (
    compile_shock_events,
    compile_shock_events_for_span,
)
from repro.workload.population import GenerativeProfileSource, TenantPopulation


@dataclass(frozen=True)
class ShardTask:
    """Everything a worker process needs: the cell config plus its slot."""

    config: TenantExperimentConfig
    shard_index: int
    shard_count: int
    trace: bool = False
    metrics: bool = False

    def __post_init__(self) -> None:
        TenantPartitioner(self.shard_count).validate_index(self.shard_index)


@dataclass(frozen=True)
class SettlementCheckpoint:
    """One shard's snapshot at a settlement boundary.

    ``time_s``, ``queries_dispatched``, ``provider_credit`` and
    ``provider_query_payments`` describe the *replicated* trajectory and
    must be bitwise identical on every shard; ``owned_wallet_credit``,
    ``owned_charged`` and ``owned_seed_credit`` are the shard-local halves
    that only add up across shards (the conservation audit).

    ``owned_seed_credit`` is the seed credit of the owned tenants *minted
    by this barrier*: with eager registration the whole population is
    seeded up front, so it is constant over the run; with a generative
    registry it grows with arrivals. Either way the per-barrier identity
    ``owned_seed_credit == owned_wallet_credit + owned_charged`` holds —
    wallets only ever change by seeding and by charges.
    """

    time_s: float
    queries_dispatched: int
    provider_credit: float
    provider_query_payments: float
    owned_wallet_credit: float
    owned_charged: float
    owned_seed_credit: float = 0.0


@dataclass(frozen=True)
class ShardResult:
    """Everything one shard sends back to the coordinator."""

    shard_index: int
    shard_count: int
    scheme: str
    summary: MetricsSummary
    tenants: Tuple[TenantBreakdown, ...]
    wallets: Tuple[Tuple[int, str, float], ...]
    owned_tenant_count: int
    owned_initial_credit: float
    foreign_charged: float
    checkpoints: Tuple[SettlementCheckpoint, ...]
    population_size: int
    churn_waves: int
    trace: Optional[TraceRecorder] = None
    metrics: Optional[MetricsTimeseries] = None


class SettlementCheckpointRecorder:
    """Read-only settlement observer: snapshots the two conservation sides."""

    def __init__(self, registry: ShardScopedRegistry,
                 account: CloudAccount) -> None:
        self._registry = registry
        self._account = account
        self.checkpoints: List[SettlementCheckpoint] = []

    def __call__(self, event, kernel) -> None:
        self.checkpoints.append(self.snapshot(
            time_s=event.time_s,
            queries_dispatched=kernel.dispatch_count(QueryArrivalEvent),
        ))

    def snapshot(self, time_s: float,
                 queries_dispatched: int) -> SettlementCheckpoint:
        """Snapshot the accounts now (also used for the final barrier)."""
        payments = self._account.totals_by_category().get(
            CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0)
        return SettlementCheckpoint(
            time_s=time_s,
            queries_dispatched=queries_dispatched,
            provider_credit=self._account.credit,
            provider_query_payments=payments,
            owned_wallet_credit=self._registry.total_credit(),
            owned_charged=self._registry.total_charged(),
            owned_seed_credit=self._registry.owned_seed_credit(),
        )


class ShardWorker:
    """Runs one :class:`ShardTask` end to end inside the current process."""

    def __init__(self, task: ShardTask) -> None:
        self._task = task
        self._partitioner = TenantPartitioner(task.shard_count)

    @property
    def task(self) -> ShardTask:
        """The task this worker executes."""
        return self._task

    def run(self) -> ShardResult:
        """Replay the cell's event stream; account only the owned tenants."""
        task = self._task
        config = task.config
        streamed = config.arrival_mode == ARRIVAL_STREAMED
        system = CloudSystem()

        populated = None
        stream = None
        if streamed:
            # Nothing population-sized materialises: queries flow from the
            # generator through the population stream into the kernel's
            # lookahead window, and the registry derives profiles on
            # demand. Every shard consumes an identical stream, so the
            # replicated trajectory is unchanged.
            population_spec = config.population_spec()
            source = GenerativeProfileSource(spec=population_spec,
                                             tiers=config.tenant_tiers)
            generator = WorkloadGenerator(config.workload_spec())
            envelope = generator.arrival_envelope()
            stream = TenantPopulation(population_spec).stream(
                generator.iter_queries(), source=source)
        else:
            populated = build_population(config)

        registry: Optional[ShardScopedRegistry] = None
        recorder: Optional[SettlementCheckpointRecorder] = None
        observers = []
        if config.scheme == "bypass":
            # The baseline runs no economy: there is nothing tenant-owned
            # to scope, so the worker only filters the step accounting.
            scheme = system.scheme(config.scheme)
        else:
            if streamed:
                registry = ShardScopedRegistry.generative(
                    source, self._partitioner, task.shard_index)
            else:
                registry = ShardScopedRegistry(
                    populated.profiles, self._partitioner, task.shard_index)
            scheme = system.scheme(
                config.scheme,
                economic_config=EconomicSchemeConfig(
                    economy=EconomyConfig(
                        planning=config.planning,
                        strict_maintenance=config.strict_maintenance,
                    ),
                    tenants=registry,
                ),
            )
            recorder = SettlementCheckpointRecorder(
                registry, scheme.engine.account)
            observers.append((MaintenanceSettlementEvent, recorder))

        trace: Optional[TraceRecorder] = None
        metrics: Optional[MetricsTimeseries] = None
        if task.trace or task.metrics:
            # Per-shard recorders, merged by the coordinator at the same
            # barriers that align the settlement checkpoints. Counters and
            # samples stay tagged with this shard's source so the
            # replicated replay is reported per shard, never
            # double-counted.
            if task.trace:
                trace = TraceRecorder(source=f"shard{task.shard_index}")
            if task.metrics:
                metrics = MetricsTimeseries(
                    source=f"shard{task.shard_index}")
            observers.extend(attach_observability(scheme, trace=trace,
                                                  metrics=metrics,
                                                  rss=streamed))

        simulation = CloudSimulation(scheme, SimulationConfig(
            warmup_queries=config.warmup_queries,
            settlement_period_s=config.settlement_period_s,
        ))
        # Shock events replicate with the rest of the stream: every shard
        # compiles the identical events from the shared frozen config, so
        # the replicated trajectory stays bitwise identical under faults.
        if streamed:
            result = simulation.run_streamed(
                stream, envelope,
                observers=observers,
                shock_events=compile_shock_events_for_span(
                    config.shocks, envelope.start_s, envelope.last_s),
            )
            start_s = envelope.start_s
            total_queries = envelope.query_count
        else:
            result = simulation.run(
                populated.queries,
                tenant_lifecycle=populated.lifecycle,
                observers=observers,
                shock_events=compile_shock_events(config.shocks,
                                                  populated.queries),
            )
            start_s = populated.queries[0].arrival_time
            total_queries = len(populated.queries)

        checkpoints: Tuple[SettlementCheckpoint, ...] = ()
        if recorder is not None:
            # The run always ends on one more barrier: the final fold the
            # coordinator merges at, present even when the trailing
            # settlement degenerated (single query, zero span).
            final = recorder.snapshot(
                time_s=result.summary.duration_s + start_s,
                queries_dispatched=total_queries,
            )
            checkpoints = tuple(recorder.checkpoints) + (final,)

        owned = tuple(
            item for item in sorted_breakdowns(result.steps)
            if self._partitioner.owns(task.shard_index, item.tenant_id)
        )
        wallets: Tuple[Tuple[int, str, float], ...] = ()
        owned_count = 0
        owned_seed = 0.0
        foreign_charged = 0.0
        if registry is not None:
            wallets = registry.owned_wallets()
            owned_count = len(registry)
            owned_seed = registry.owned_initial_credit()
            foreign_charged = registry.foreign_charged

        return ShardResult(
            shard_index=task.shard_index,
            shard_count=task.shard_count,
            scheme=config.scheme,
            summary=result.summary,
            tenants=owned,
            wallets=wallets,
            owned_tenant_count=owned_count,
            owned_initial_credit=owned_seed,
            foreign_charged=foreign_charged,
            checkpoints=checkpoints,
            population_size=(stream.tenants_minted if streamed
                             else populated.tenant_count),
            churn_waves=(stream.churn_events if streamed
                         else populated.churn_waves),
            trace=trace,
            metrics=metrics,
        )


def run_shard(task: ShardTask) -> ShardResult:
    """Process-pool entry point: run one shard task to completion."""
    if not isinstance(task, ShardTask):
        raise ShardingError(f"expected a ShardTask, got {type(task).__name__}")
    return ShardWorker(task).run()
