"""Ablation studies on the design choices DESIGN.md calls out.

These are not figures from the paper; they probe the sensitivity of the
economy to its main knobs:

* the regret-threshold fraction ``a`` of Eq. 3,
* the amortisation horizon ``n`` of Eq. 7 (and the declining-balance
  alternative),
* the workload's locality (Section VI argues the economy needs it),
* the bypass baseline's cache budget (the paper fixes 30 %).

Each ablation returns rows ``[knob value, operating cost, mean response,
hit rate, builds]`` for one scheme at one inter-arrival time, so the effect
of the knob is isolated from the figure sweep.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Optional, Sequence

from repro.cache.manager import CacheConfig
from repro.economy.engine import EconomyConfig
from repro.errors import ExperimentError
from repro.experiments.config import ExperimentProfile, QUICK_PROFILE
from repro.experiments.runner import build_system
from repro.policies.bypass_yield import BypassYieldConfig
from repro.policies.economic import EconomicSchemeConfig
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def _run_scheme(system, profile: ExperimentProfile, scheme_name: str,
                interarrival_s: float,
                economic_config: Optional[EconomicSchemeConfig] = None,
                bypass_config: Optional[BypassYieldConfig] = None,
                workload_spec: Optional[WorkloadSpec] = None) -> List[object]:
    spec = workload_spec or WorkloadSpec(
        query_count=profile.query_count,
        interarrival_s=interarrival_s,
        seed=profile.seed,
    )
    workload = WorkloadGenerator(spec.with_interarrival(interarrival_s)).generate()
    scheme = system.scheme(scheme_name, economic_config=economic_config,
                           bypass_config=bypass_config)
    result = CloudSimulation(
        scheme, SimulationConfig(warmup_queries=profile.warmup_queries)
    ).run(workload)
    summary = result.summary
    return [summary.operating_cost, summary.mean_response_time_s,
            summary.cache_hit_rate, summary.builds]


def regret_fraction_ablation(
        fractions: Sequence[float] = (0.005, 0.01, 0.05, 0.2),
        profile: ExperimentProfile = QUICK_PROFILE,
        scheme_name: str = "econ-cheap",
        interarrival_s: float = 1.0) -> List[List[object]]:
    """Sweep the regret-threshold fraction ``a`` (Eq. 3)."""
    if not fractions:
        raise ExperimentError("at least one fraction is required")
    system = build_system(profile)
    rows: List[List[object]] = []
    for fraction in fractions:
        config = EconomicSchemeConfig(
            economy=EconomyConfig(regret_fraction=fraction),
        )
        rows.append([fraction] + _run_scheme(
            system, profile, scheme_name, interarrival_s, economic_config=config,
        ))
    return rows


def amortization_ablation(
        horizons: Sequence[int] = (100, 1_000, 5_000, 20_000),
        profile: ExperimentProfile = QUICK_PROFILE,
        scheme_name: str = "econ-cheap",
        interarrival_s: float = 1.0) -> List[List[object]]:
    """Sweep the amortisation horizon ``n`` (Eq. 7)."""
    if not horizons:
        raise ExperimentError("at least one horizon is required")
    system = build_system(profile)
    rows: List[List[object]] = []
    for horizon in horizons:
        config = EconomicSchemeConfig(
            economy=EconomyConfig(amortization_horizon=horizon),
        )
        rows.append([horizon] + _run_scheme(
            system, profile, scheme_name, interarrival_s, economic_config=config,
        ))
    return rows


def locality_ablation(
        hot_probabilities: Sequence[float] = (0.3, 0.6, 0.85, 0.95),
        profile: ExperimentProfile = QUICK_PROFILE,
        scheme_name: str = "econ-cheap",
        interarrival_s: float = 1.0) -> List[List[object]]:
    """Sweep the workload's temporal locality (Section VI viability argument).

    Lower hot-set probability means queries are spread more evenly over the
    templates, so investments pay off more slowly.
    """
    if not hot_probabilities:
        raise ExperimentError("at least one probability is required")
    system = build_system(profile)
    rows: List[List[object]] = []
    for probability in hot_probabilities:
        spec = WorkloadSpec(
            query_count=profile.query_count,
            interarrival_s=interarrival_s,
            seed=profile.seed,
            hot_template_probability=probability,
        )
        rows.append([probability] + _run_scheme(
            system, profile, scheme_name, interarrival_s, workload_spec=spec,
        ))
    return rows


def bypass_budget_ablation(
        cache_fractions: Sequence[float] = (0.1, 0.3, 0.6),
        profile: ExperimentProfile = QUICK_PROFILE,
        interarrival_s: float = 1.0) -> List[List[object]]:
    """Sweep the bypass baseline's cache budget (the paper fixes 30 %)."""
    if not cache_fractions:
        raise ExperimentError("at least one cache fraction is required")
    system = build_system(profile)
    rows: List[List[object]] = []
    for fraction in cache_fractions:
        config = BypassYieldConfig(cache_fraction=fraction)
        rows.append([fraction] + _run_scheme(
            system, profile, "bypass", interarrival_s, bypass_config=config,
        ))
    return rows


ABLATION_HEADERS = ["knob", "operating_cost", "mean_response_s", "hit_rate", "builds"]
