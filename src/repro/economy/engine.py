"""The economy engine: one object that processes queries end to end.

For every incoming query the engine

1. lets structures whose unpaid maintenance grew too large fail (footnote 3),
2. enumerates and prices the candidate plans against the cache state,
3. applies the skyline filter of footnote 2,
4. builds the user's budget function and negotiates a plan (cases A/B/C),
5. settles the money flows (user payment in, execution cost out, structure
   usage, maintenance recovery, amortisation recovery),
6. distributes the regret of the plans that were not chosen to the
   structures they are missing, and
7. evaluates the investment rule (Eq. 3), building structures whose regret
   justifies it and whose build cost the account can afford.

The engine is scheme-agnostic: the four caching schemes of Section VII are
thin configurations of this engine (or, for the bypass-yield baseline, a
different decision procedure entirely — see :mod:`repro.policies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro import constants
from repro.cache.manager import CacheConfig, CacheManager
from repro.cache.storage import EvictionRecord
from repro.costmodel.amortization import AmortizationPolicy, UniformAmortization
from repro.costmodel.build import StructureCostModel
from repro.costmodel.execution import ExecutionCostModel
from repro.economy.account import CloudAccount
from repro.economy.budget import BudgetFunction
from repro.economy.investment import InvestmentPolicy
from repro.economy.negotiation import (
    NegotiationCase,
    NegotiationResult,
    PlanSelection,
    negotiate,
)
from repro.economy.pricing import PlanPricer, PricedPlan
from repro.economy.regret import RegretTracker
from repro.economy.tenancy import TenantRegistry
from repro.economy.user_model import UserModel
from repro.errors import ConfigurationError, PlanningError
from repro.planner.enumerator import PlanEnumerator
from repro.planner.plan import PlanKind, QueryPlan
from repro.planner.skyline import skyline_filter
from repro.structures.base import CacheStructure, StructureKind
from repro.structures.cached_index import CachedIndex
from repro.workload.query import Query


@dataclass(frozen=True)
class EconomyConfig:
    """Tunables of the economy engine.

    Attributes:
        regret_fraction: ``a`` of Eq. 3.
        amortization_horizon: ``n`` of Eq. 7 for the default uniform policy.
        initial_credit: working capital the provider starts with; the paper's
            cloud has been operating long before the measured window, so a
            non-zero float makes short simulations representative.
        divide_regret: whether a plan's regret is split equally over its
            missing structures (True) or charged in full to each (False,
            the default — Section IV-C adds the regret "to the positions in
            regretS that correspond to the S employed by PQ").
        plan_selection: how the chosen plan is picked in cases B/C.
        require_affordable_build: the "conservative provider" rule — only
            build when the account can pay the full build cost.
        max_investments_per_query: cap on how many structures are built in
            response to a single query, keeping per-query work bounded.
        regret_pool_capacity: LRU bound on the number of structures tracked
            by the regret array (Section IV-B).
        user_model: how budget functions are derived for incoming queries.

    Example:
        >>> EconomyConfig().regret_fraction == 0.01
        True
        >>> EconomyConfig(amortization_horizon=0)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: amortization_horizon must be positive
    """

    regret_fraction: float = constants.DEFAULT_REGRET_FRACTION
    amortization_horizon: int = constants.DEFAULT_AMORTIZATION_QUERIES
    initial_credit: float = constants.DEFAULT_INITIAL_CREDIT
    divide_regret: bool = False
    plan_selection: PlanSelection = PlanSelection.MIN_PROFIT
    require_affordable_build: bool = True
    max_investments_per_query: int = 8
    regret_pool_capacity: int = 512
    user_model: UserModel = field(default_factory=UserModel)

    def __post_init__(self) -> None:
        if self.amortization_horizon <= 0:
            raise ConfigurationError("amortization_horizon must be positive")
        if self.initial_credit < 0:
            raise ConfigurationError("initial_credit must be non-negative")
        if self.max_investments_per_query < 0:
            raise ConfigurationError("max_investments_per_query must be non-negative")
        if self.regret_pool_capacity <= 0:
            raise ConfigurationError("regret_pool_capacity must be positive")


@dataclass(frozen=True)
class StructureBuild:
    """Record of one investment made by the engine."""

    key: str
    kind: StructureKind
    build_cost: float
    built_at: float
    triggered_by_query: int


@dataclass(frozen=True)
class QueryOutcome:
    """Everything the simulator needs to know about one processed query.

    ``uncovered_costs`` surfaces withdrawals the account could not fully
    honour: each entry is a ``(ledger category, shortfall)`` pair for a
    payment that was capped at the available credit. An empty tuple means
    every cost of the query was paid in full.
    """

    query: Query
    case: NegotiationCase
    plan_kind: PlanKind
    plan_label: str
    served_in_cache: bool
    response_time_s: float
    charge: float
    profit: float
    execution_cost: float
    execution_cpu_dollars: float
    execution_io_dollars: float
    execution_network_dollars: float
    network_bytes: float
    maintenance_recovered: float
    builds: Tuple[StructureBuild, ...]
    build_spend: float
    evictions: Tuple[EvictionRecord, ...]
    eviction_losses: float
    credit_after: float
    tenant_id: str = "default"
    uncovered_costs: Tuple[Tuple[str, float], ...] = ()

    @property
    def uncovered_total(self) -> float:
        """Total dollars of withdrawals the credit could not cover."""
        return sum(amount for _, amount in self.uncovered_costs)


class EconomyEngine:
    """Processes queries through the self-tuned economy."""

    def __init__(self, enumerator: PlanEnumerator,
                 structure_costs: StructureCostModel,
                 cache: Optional[CacheManager] = None,
                 config: EconomyConfig = EconomyConfig(),
                 amortization: Optional[AmortizationPolicy] = None,
                 tenants: Optional[TenantRegistry] = None) -> None:
        self._enumerator = enumerator
        self._structure_costs = structure_costs
        self._cache = cache if cache is not None else CacheManager(CacheConfig())
        self._config = config
        self._amortization = amortization or UniformAmortization(
            config.amortization_horizon
        )
        self._pricer = PlanPricer(structure_costs, self._amortization)
        self._account = CloudAccount(initial_credit=config.initial_credit)
        self._regret = RegretTracker(pool_capacity=config.regret_pool_capacity)
        self._investment = InvestmentPolicy(
            regret_fraction=config.regret_fraction,
            require_affordable=config.require_affordable_build,
        )
        self._tenants = tenants
        self._outcomes: List[QueryOutcome] = []
        self._uncovered: List[Tuple[str, float]] = []

    # -- accessors -----------------------------------------------------------------

    @property
    def config(self) -> EconomyConfig:
        """The engine configuration."""
        return self._config

    @property
    def cache(self) -> CacheManager:
        """The cache manager holding the built structures."""
        return self._cache

    @property
    def account(self) -> CloudAccount:
        """The cloud account (credit ``CR`` and ledger)."""
        return self._account

    @property
    def regret_tracker(self) -> RegretTracker:
        """The per-structure regret array."""
        return self._regret

    @property
    def tenants(self) -> Optional[TenantRegistry]:
        """The tenant registry, or ``None`` for the single-tenant engine."""
        return self._tenants

    @property
    def outcomes(self) -> Tuple[QueryOutcome, ...]:
        """Outcomes of every processed query, in processing order."""
        return tuple(self._outcomes)

    @property
    def execution_model(self) -> ExecutionCostModel:
        """The execution cost model used by the enumerator."""
        return self._structure_costs.execution_model

    # -- main entry point --------------------------------------------------------------

    def process_query(self, query: Query,
                      now: Optional[float] = None) -> QueryOutcome:
        """Run one query through the economy and return its outcome."""
        time_s = query.arrival_time if now is None else now
        self._uncovered = []

        evictions = tuple(self._cache.evict_failed_structures(time_s))
        eviction_losses = sum(
            record.unpaid_maintenance + record.unrecovered_build_cost
            for record in evictions
        )

        priced = self._price_plans(query, time_s)
        skyline = skyline_filter(
            priced,
            time_of=lambda plan: plan.response_time_s,
            cost_of=lambda plan: plan.price,
        )
        skyline = self._ensure_existing_plan(priced, skyline)
        budget = self._budget_for(query, priced)
        result = negotiate(budget, skyline, self._config.plan_selection)

        maintenance_recovered = self._settle_chosen_plan(query, result, time_s)
        self._distribute_regret(query, result)
        builds, build_spend = self._consider_investments(query, time_s)

        outcome = self._build_outcome(
            query, result, time_s, maintenance_recovered,
            builds, build_spend, evictions, eviction_losses,
        )
        self._outcomes.append(outcome)
        return outcome

    def process_workload(self, queries: Sequence[Query]) -> List[QueryOutcome]:
        """Process queries in order (convenience wrapper for tests/examples)."""
        return [self.process_query(query) for query in queries]

    # -- steps -----------------------------------------------------------------------

    def _price_plans(self, query: Query, now: float) -> List[PricedPlan]:
        plans = self._enumerator.enumerate(query)
        if not plans:
            raise PlanningError(f"no plans enumerated for query {query.query_id}")
        return self._pricer.price_plans(plans, self._cache, now)

    def _ensure_existing_plan(self, priced: List[PricedPlan],
                              skyline: List[PricedPlan]) -> List[PricedPlan]:
        """Guarantee the skyline still offers at least one existing plan.

        The skyline is computed over price and time only; if every existing
        plan got dominated by not-yet-built plans, negotiation would have
        nothing executable, so the cheapest existing plan is re-added.
        """
        if any(plan.is_existing for plan in skyline):
            return skyline
        existing = [plan for plan in priced if plan.is_existing]
        if not existing:
            return skyline
        cheapest = min(existing, key=lambda plan: plan.price)
        return skyline + [cheapest]

    def _budget_for(self, query: Query,
                    priced: List[PricedPlan]) -> BudgetFunction:
        backend = [plan for plan in priced
                   if plan.plan.kind is PlanKind.BACKEND]
        if backend:
            reference = backend[0]
        else:
            reference = min(
                (plan for plan in priced if plan.is_existing),
                key=lambda plan: plan.price,
                default=priced[0],
            )
        if self._tenants is not None:
            return self._tenants.budget_for(
                query, reference.price, reference.response_time_s,
                default_model=self._config.user_model,
            )
        return self._config.user_model.budget_for(
            query, reference.price, reference.response_time_s
        )

    def _settle_chosen_plan(self, query: Query, result: NegotiationResult,
                            now: float) -> float:
        """Move the money and update structure bookkeeping for the chosen plan."""
        chosen = result.chosen
        account = self._account
        account.deposit(result.charge, now, CloudAccount.CATEGORY_QUERY_PAYMENT,
                        note=f"query {query.query_id} ({chosen.label})")
        if self._tenants is not None:
            # Mirror transaction: the payment the provider just banked is
            # withdrawn from the issuing tenant's wallet (and only theirs),
            # so the registry's books balance against the provider's.
            self._tenants.charge(query.tenant_id, result.charge, now,
                                 note=f"query {query.query_id} ({chosen.label})")
        execution_cost = chosen.execution_dollars
        self._safe_withdraw(execution_cost, now,
                            CloudAccount.CATEGORY_EXECUTION_COST,
                            note=f"query {query.query_id}")

        maintenance_recovered = 0.0
        used_keys = [structure.key for structure in chosen.plan.structures
                     if self._cache.contains(structure.key)]
        if used_keys:
            billed = self._cache.bill_maintenance(used_keys, now)
            maintenance_recovered = sum(billed.values())
            self._cache.record_usage(used_keys, now)
            for key in used_keys:
                recovered = chosen.amortized_by_structure.get(key, 0.0)
                if recovered:
                    self._cache.record_amortized_recovery(key, recovered)
        return maintenance_recovered

    def _distribute_regret(self, query: Query,
                           result: NegotiationResult) -> None:
        """Spread each non-chosen plan's regret over its missing structures."""
        built_keys = self._cache.built_keys
        for plan, regret in result.regrets:
            missing = plan.plan.new_structures(built_keys)
            if not missing:
                continue
            self._regret.distribute(missing, regret,
                                    divide=self._config.divide_regret)
            if self._tenants is not None:
                self._tenants.record_regret(query.tenant_id, missing, regret,
                                            divide=self._config.divide_regret)

    def _consider_investments(self, query: Query,
                              now: float) -> Tuple[Tuple[StructureBuild, ...], float]:
        """Apply Eq. 3 and build the structures whose regret justifies it."""
        builds: List[StructureBuild] = []
        total_spend = 0.0
        limit = self._config.max_investments_per_query
        if limit == 0:
            return tuple(builds), total_spend

        decisions = self._investment.candidates(
            self._regret, self._account,
            build_cost_of=self._estimate_build_cost,
            built_keys=self._cache.built_keys,
        )
        for decision in decisions:
            if len(builds) >= limit:
                break
            structure = decision.structure
            if self._cache.contains(structure.key):
                continue
            built = self._build_structure(structure, query.query_id, now)
            if not built:
                continue
            builds.extend(built)
            total_spend += sum(record.build_cost for record in built)
        return tuple(builds), total_spend

    def _available_column_keys(self) -> Set[str]:
        """Column keys a build may read instead of re-extracting.

        The base engine only has its own cache; partitioned engines
        (:mod:`repro.distcache`) override this to add columns that exist
        on a remote partition, which a build can read over the network.
        """
        return {
            key for key in self._cache.built_keys if key.startswith("column:")
        }

    def _estimate_build_cost(self, structure: CacheStructure) -> float:
        return self._structure_costs.build_cost(
            structure, self._available_column_keys()
        )

    def _build_structure(self, structure: CacheStructure, query_id: int,
                         now: float) -> List[StructureBuild]:
        """Build one structure (plus, for an index, its missing key columns).

        Returns an empty list if the account can no longer afford the build
        (credit may have dropped since the decision was evaluated).
        """
        plan: List[Tuple[CacheStructure, float]] = []
        cached_columns = self._available_column_keys()
        if isinstance(structure, CachedIndex):
            for column in structure.required_columns():
                if column.key not in cached_columns:
                    plan.append((column, self._structure_costs.build_cost(column)))
                    cached_columns.add(column.key)
            sort_only_cost = self._structure_costs.build_cost(
                structure, cached_columns=cached_columns | {
                    column.key for column, _ in plan
                },
            )
            plan.append((structure, sort_only_cost))
        else:
            plan.append((structure, self._structure_costs.build_cost(
                structure, cached_columns=cached_columns
            )))

        total_cost = sum(cost for _, cost in plan)
        if self._config.require_affordable_build and not self._account.can_afford(total_cost):
            return []

        builds: List[StructureBuild] = []
        schema = self._structure_costs.schema
        for piece, cost in plan:
            if self._cache.contains(piece.key):
                continue
            self._safe_withdraw(cost, now, CloudAccount.CATEGORY_BUILD,
                                note=piece.key)
            self._cache.admit(
                piece,
                size_bytes=piece.size_bytes(schema),
                build_cost=cost,
                maintenance_rate=self._structure_costs.maintenance_rate(piece),
                now=now,
            )
            self._regret.reset(piece.key)
            if self._tenants is not None:
                self._tenants.reset_regret(piece.key)
            builds.append(StructureBuild(
                key=piece.key,
                kind=piece.kind,
                build_cost=cost,
                built_at=now,
                triggered_by_query=query_id,
            ))
        return builds

    def _safe_withdraw(self, amount: float, now: float, category: str,
                       note: str = "") -> float:
        """Withdraw, capping at the available credit.

        Any shortfall — the part of ``amount`` the credit could not cover —
        used to be dropped silently; it is now recorded per category and
        surfaced on the query's :class:`QueryOutcome` as ``uncovered_costs``,
        so reports can see exactly which payments were capped.

        Args:
            amount: the payment due.
            now: simulated instant of the withdrawal.
            category: ledger category of the payment.
            note: free-form ledger note.

        Returns:
            The shortfall (0.0 when the payment was covered in full).
        """
        if amount <= 0:
            return 0.0
        affordable = min(amount, max(0.0, self._account.credit))
        if affordable > 0:
            self._account.withdraw(affordable, now, category, note=note)
        shortfall = amount - affordable
        if shortfall > 1e-12:
            self._uncovered.append((category, shortfall))
            return shortfall
        return 0.0

    def _build_outcome(self, query: Query, result: NegotiationResult, now: float,
                       maintenance_recovered: float,
                       builds: Tuple[StructureBuild, ...], build_spend: float,
                       evictions: Tuple[EvictionRecord, ...],
                       eviction_losses: float) -> QueryOutcome:
        chosen = result.chosen
        execution = chosen.plan.execution
        return QueryOutcome(
            query=query,
            case=result.case,
            plan_kind=chosen.plan.kind,
            plan_label=chosen.label,
            served_in_cache=chosen.plan.runs_in_cache,
            response_time_s=chosen.response_time_s,
            charge=result.charge,
            profit=result.profit,
            execution_cost=chosen.execution_dollars,
            execution_cpu_dollars=execution.cpu_dollars,
            execution_io_dollars=execution.io_dollars,
            execution_network_dollars=execution.network_dollars,
            network_bytes=execution.network_bytes,
            maintenance_recovered=maintenance_recovered,
            builds=builds,
            build_spend=build_spend,
            evictions=evictions,
            eviction_losses=eviction_losses,
            credit_after=self._account.credit,
            tenant_id=query.tenant_id,
            uncovered_costs=tuple(self._uncovered),
        )
