"""The bypass-yield (net-only) baseline of Malik et al., ICDE 2005.

Section VII-A describes how the baseline is emulated: "associating cost only
with network bandwidth, therefore setting costs for CPU, disk and I/O to
zero. This cache, denoted as net-only, tries to reduce the network bandwidth
and caches only table columns. The experiments employ the ideal cache size
for net-only, which is 30% of the total database size. The net-only cache
avoids using indexes to speed up queries."

The scheme's *decisions* therefore look only at bytes moved over the
network: a column is loaded into the cache once the result traffic it has
caused (its accumulated *yield*) justifies the one-time transfer of the
column. Its *measured* operating cost, however, is computed with the full
resource pricing, so Figures 4 and 5 compare all schemes on the same meter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.cache.manager import CacheConfig, CacheManager
from repro.catalog.schema import Schema
from repro.costmodel.build import StructureCostModel
from repro.costmodel.execution import ExecutionCostModel
from repro.errors import ConfigurationError
from repro.planner.plan import required_columns_for
from repro.policies.base import CachingScheme, SchemeStep
from repro.structures.cached_column import CachedColumn
from repro.workload.query import Query


@dataclass(frozen=True)
class BypassYieldConfig:
    """Tunables of the bypass-yield baseline.

    Attributes:
        cache_fraction: cache budget as a fraction of the database size
            (the paper's ideal 30 %).
        yield_fraction: a column is loaded once the result bytes shipped by
            queries that wanted it exceed this fraction of the column's size;
            the smaller the value, the less conservative the baseline.
    """

    cache_fraction: float = constants.BYPASS_CACHE_FRACTION
    yield_fraction: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.cache_fraction <= 1.0:
            raise ConfigurationError("cache_fraction must be in (0, 1]")
        if self.yield_fraction <= 0:
            raise ConfigurationError("yield_fraction must be positive")


class BypassYieldScheme(CachingScheme):
    """Net-only caching: bypass the cache until loading a column pays off in bytes."""

    def __init__(self, execution_model: ExecutionCostModel,
                 structure_costs: StructureCostModel,
                 config: BypassYieldConfig = BypassYieldConfig()) -> None:
        self._execution = execution_model
        self._structure_costs = structure_costs
        self._config = config
        schema = execution_model.estimator.schema
        capacity = int(config.cache_fraction * schema.total_size_bytes)
        self._cache = CacheManager(CacheConfig(capacity_bytes=capacity))
        self._yield_bytes: Dict[str, float] = {}

    @property
    def name(self) -> str:
        return "bypass"

    @property
    def cache(self) -> CacheManager:
        return self._cache

    @property
    def config(self) -> BypassYieldConfig:
        """The baseline's configuration."""
        return self._config

    def eviction_loss(self, record) -> float:
        """The bypass baseline only books the unrecovered build cost (it has
        no maintenance-recovery accounting), matching its per-query steps."""
        return record.unrecovered_build_cost

    # -- query processing ----------------------------------------------------------

    def process(self, query: Query) -> SchemeStep:
        now = query.arrival_time
        required = required_columns_for(query)
        missing = [column for column in required
                   if not self._cache.contains(column.key)]

        if not missing:
            return self._serve_from_cache(query, required, now)
        return self._serve_from_backend(query, missing, now)

    # -- the two service paths --------------------------------------------------------

    def _serve_from_cache(self, query: Query,
                          required: Tuple[CachedColumn, ...],
                          now: float) -> SchemeStep:
        estimate = self._execution.cache_execution(query, index=None, node_count=1)
        self._cache.record_usage([column.key for column in required], now)
        return self._step(query, now, estimate.response_time_s, True,
                          "cache_column_scan", estimate, build_dollars=0.0,
                          builds=0, evictions=0, eviction_losses=0.0)

    def _serve_from_backend(self, query: Query, missing: List[CachedColumn],
                            now: float) -> SchemeStep:
        estimate = self._execution.backend_execution(query)
        result_bytes = query.result_bytes(self._execution.estimator)

        build_dollars = 0.0
        builds = 0
        evictions = 0
        eviction_losses = 0.0
        schema = self._execution.estimator.schema
        for column in missing:
            accumulated = self._yield_bytes.get(column.key, 0.0) + result_bytes
            self._yield_bytes[column.key] = accumulated
            threshold = self._config.yield_fraction * column.size_bytes(schema)
            if accumulated < threshold:
                continue
            cost, evicted = self._load_column(column, now)
            build_dollars += cost
            builds += 1
            evictions += len(evicted)
            eviction_losses += sum(record.unrecovered_build_cost
                                   for record in evicted)
        return self._step(query, now, estimate.response_time_s, False,
                          "backend", estimate, build_dollars=build_dollars,
                          builds=builds, evictions=evictions,
                          eviction_losses=eviction_losses)

    def _load_column(self, column: CachedColumn, now: float):
        """Transfer a column into the cache, LRU-evicting under the 30 % budget."""
        schema = self._execution.estimator.schema
        cost = self._structure_costs.build_cost(column)
        evicted = self._cache.admit(
            column,
            size_bytes=column.size_bytes(schema),
            build_cost=cost,
            maintenance_rate=self._structure_costs.maintenance_rate(column),
            now=now,
        )
        self._yield_bytes.pop(column.key, None)
        return cost, evicted

    # -- record assembly -----------------------------------------------------------------

    def _step(self, query: Query, now: float, response_time_s: float,
              served_in_cache: bool, plan_label: str, estimate,
              build_dollars: float, builds: int, evictions: int,
              eviction_losses: float) -> SchemeStep:
        return SchemeStep(
            query_id=query.query_id,
            template_name=query.template_name,
            arrival_time_s=now,
            response_time_s=response_time_s,
            served_in_cache=served_in_cache,
            plan_label=plan_label,
            execution_cpu_dollars=estimate.cpu_dollars,
            execution_io_dollars=estimate.io_dollars,
            execution_network_dollars=estimate.network_dollars,
            build_dollars=build_dollars,
            network_bytes=estimate.network_bytes,
            charge=estimate.dollars,
            profit=0.0,
            builds=builds,
            evictions=evictions,
            eviction_losses=eviction_losses,
            tenant_id=query.tenant_id,
        )
