"""The economy engine: one object that processes queries end to end.

For every incoming query the engine

1. lets structures whose unpaid maintenance grew too large fail (footnote 3),
2. enumerates and prices the candidate plans against the cache state,
3. applies the skyline filter of footnote 2,
4. builds the user's budget function and negotiates a plan (cases A/B/C),
5. settles the money flows (user payment in, execution cost out, structure
   usage, maintenance recovery, amortisation recovery),
6. distributes the regret of the plans that were not chosen to the
   structures they are missing, and
7. evaluates the investment rule (Eq. 3), building structures whose regret
   justifies it and whose build cost the account can afford.

The engine is scheme-agnostic: the four caching schemes of Section VII are
thin configurations of this engine (or, for the bypass-yield baseline, a
different decision procedure entirely — see :mod:`repro.policies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro import constants
from repro.cache.manager import CacheConfig, CacheManager
from repro.cache.storage import EvictionRecord
from repro.costmodel.amortization import AmortizationPolicy, UniformAmortization
from repro.costmodel.build import StructureCostModel
from repro.costmodel.execution import ExecutionCostModel
from repro.economy.account import CloudAccount
from repro.economy.batch import BatchPricingContext, BatchScheduler
from repro.economy.budget import BudgetFunction
from repro.economy.investment import InvestmentPolicy
from repro.economy.negotiation import (
    NegotiationCase,
    NegotiationResult,
    PlanSelection,
    negotiate,
)
from repro.economy.pricing import PlanPricer, PricedPlan
from repro.economy.regret import RegretTracker
from repro.economy.tenancy import TenantRegistry
from repro.economy.user_model import UserModel
from repro.errors import ConfigurationError, PlanningError
from repro.planner.enumerator import PlanEnumerator
from repro.planner.plan import PlanKind, QueryPlan
from repro.planner.plan_table import PlanTable, PlanTableCache
from repro.planner.skyline import skyline_filter, skyline_indices
from repro.structures.base import CacheStructure, StructureKind
from repro.structures.cached_index import CachedIndex
from repro.workload.query import Query

#: Planning-mode names accepted by :attr:`EconomyConfig.planning` (and the
#: CLI's ``--planning`` flag).
PLANNING_SCALAR = "scalar"
PLANNING_BATCHED = "batched"
PLANNING_MODES = (PLANNING_SCALAR, PLANNING_BATCHED)


@dataclass(frozen=True)
class EconomyConfig:
    """Tunables of the economy engine.

    Attributes:
        regret_fraction: ``a`` of Eq. 3.
        amortization_horizon: ``n`` of Eq. 7 for the default uniform policy.
        initial_credit: working capital the provider starts with; the paper's
            cloud has been operating long before the measured window, so a
            non-zero float makes short simulations representative.
        divide_regret: whether a plan's regret is split equally over its
            missing structures (True) or charged in full to each (False,
            the default — Section IV-C adds the regret "to the positions in
            regretS that correspond to the S employed by PQ").
        plan_selection: how the chosen plan is picked in cases B/C.
        require_affordable_build: the "conservative provider" rule — only
            build when the account can pay the full build cost.
        max_investments_per_query: cap on how many structures are built in
            response to a single query, keeping per-query work bounded.
        regret_pool_capacity: LRU bound on the number of structures tracked
            by the regret array (Section IV-B).
        user_model: how budget functions are derived for incoming queries.
        planning: ``"scalar"`` (the default) prices every query through the
            per-plan pipeline; ``"batched"`` lets a primed engine score
            whole arrival batches through the vectorized plan-table path
            (:mod:`repro.economy.batch`), with outcomes bit-for-bit
            identical to scalar processing.
        strict_maintenance: the shutdown-priority policy — at every
            settlement, when maintenance accrued since the last
            enforcement exceeds the query-payment income earned over the
            same stretch, the lowest-benefit structures are shut down
            (evicted) until the books balance. Off by default: the
            paper's provider carries structures through lean periods.

    Example:
        >>> EconomyConfig().regret_fraction == 0.01
        True
        >>> EconomyConfig(amortization_horizon=0)
        Traceback (most recent call last):
            ...
        repro.errors.ConfigurationError: amortization_horizon must be positive
    """

    regret_fraction: float = constants.DEFAULT_REGRET_FRACTION
    amortization_horizon: int = constants.DEFAULT_AMORTIZATION_QUERIES
    initial_credit: float = constants.DEFAULT_INITIAL_CREDIT
    divide_regret: bool = False
    plan_selection: PlanSelection = PlanSelection.MIN_PROFIT
    require_affordable_build: bool = True
    max_investments_per_query: int = 8
    regret_pool_capacity: int = 512
    user_model: UserModel = field(default_factory=UserModel)
    planning: str = PLANNING_SCALAR
    strict_maintenance: bool = False

    def __post_init__(self) -> None:
        if self.amortization_horizon <= 0:
            raise ConfigurationError("amortization_horizon must be positive")
        if self.initial_credit < 0:
            raise ConfigurationError("initial_credit must be non-negative")
        if self.max_investments_per_query < 0:
            raise ConfigurationError("max_investments_per_query must be non-negative")
        if self.regret_pool_capacity <= 0:
            raise ConfigurationError("regret_pool_capacity must be positive")
        if self.planning not in PLANNING_MODES:
            raise ConfigurationError(
                f"planning must be one of {PLANNING_MODES}, got {self.planning!r}"
            )


@dataclass(frozen=True)
class StructureBuild:
    """Record of one investment made by the engine."""

    key: str
    kind: StructureKind
    build_cost: float
    built_at: float
    triggered_by_query: int


@dataclass(frozen=True)
class QueryOutcome:
    """Everything the simulator needs to know about one processed query.

    ``uncovered_costs`` surfaces withdrawals the account could not fully
    honour: each entry is a ``(ledger category, shortfall)`` pair for a
    payment that was capped at the available credit. An empty tuple means
    every cost of the query was paid in full.
    """

    query: Query
    case: NegotiationCase
    plan_kind: PlanKind
    plan_label: str
    served_in_cache: bool
    response_time_s: float
    charge: float
    profit: float
    execution_cost: float
    execution_cpu_dollars: float
    execution_io_dollars: float
    execution_network_dollars: float
    network_bytes: float
    maintenance_recovered: float
    builds: Tuple[StructureBuild, ...]
    build_spend: float
    evictions: Tuple[EvictionRecord, ...]
    eviction_losses: float
    credit_after: float
    tenant_id: str = "default"
    uncovered_costs: Tuple[Tuple[str, float], ...] = ()

    @property
    def uncovered_total(self) -> float:
        """Total dollars of withdrawals the credit could not cover."""
        return sum(amount for _, amount in self.uncovered_costs)


class _TablePricingState:
    """Cache-version-invariant parts of batched pricing for one plan table.

    Between two cache-content changes, the charge of every *not-yet-built*
    structure is fixed (its build cost is memoized and it has served zero
    queries), and therefore so are the existing-plan flags and the full
    amortized total of any row whose structures are all unbuilt. Only the
    currently built structures need re-pricing per query (their
    amortization advances with ``queries_served`` and their maintenance
    accrues with time), so the hot loop touches exactly those slots.
    """

    __slots__ = ("table", "version", "charges", "cached_flags", "maintenance",
                 "cached_slots", "cached_entries", "existing", "row_totals")

    def __init__(self, table, version, charges, cached_flags, maintenance,
                 cached_slots, cached_entries, existing, row_totals):
        self.table = table
        self.version = version
        self.charges = charges
        self.cached_flags = cached_flags
        self.maintenance = maintenance
        self.cached_slots = cached_slots
        self.cached_entries = cached_entries
        self.existing = existing
        self.row_totals = row_totals


class EconomyEngine:
    """Processes queries through the self-tuned economy."""

    def __init__(self, enumerator: PlanEnumerator,
                 structure_costs: StructureCostModel,
                 cache: Optional[CacheManager] = None,
                 config: EconomyConfig = EconomyConfig(),
                 amortization: Optional[AmortizationPolicy] = None,
                 tenants: Optional[TenantRegistry] = None) -> None:
        self._enumerator = enumerator
        self._structure_costs = structure_costs
        self._cache = cache if cache is not None else CacheManager(CacheConfig())
        self._config = config
        self._amortization = amortization or UniformAmortization(
            config.amortization_horizon
        )
        self._pricer = PlanPricer(structure_costs, self._amortization)
        self._account = CloudAccount(initial_credit=config.initial_credit)
        self._regret = RegretTracker(pool_capacity=config.regret_pool_capacity)
        self._investment = InvestmentPolicy(
            regret_fraction=config.regret_fraction,
            require_affordable=config.require_affordable_build,
        )
        self._tenants = tenants
        self._outcomes: List[QueryOutcome] = []
        self._uncovered: List[Tuple[str, float]] = []
        # Batched-planning state: populated by prime_queries when the
        # configured planning mode is "batched"; None keeps every query on
        # the scalar path.
        self._batch: Optional[BatchScheduler] = None
        self._plan_tables: Optional[PlanTableCache] = None
        self._build_cost_memo: Dict[Tuple[str, Optional[FrozenSet[str]]], float] = {}
        # Cached-column key set, memoized against the cache version so the
        # hot loop does not rescan the cache on every query.
        self._column_keys_memo: FrozenSet[str] = frozenset()
        self._column_keys_version: int = -1
        self._pricing_states: Dict[str, _TablePricingState] = {}
        # Market-shock state. Price shocks scale what the *provider* pays
        # (spot build spend and the investment rule's estimates); budget
        # squeezes scale every tenant's willingness-to-pay at offer time.
        # Users keep amortizing the price actually paid for a structure,
        # so both factors leave credit conservation bitwise-exact.
        self._price_factor: float = 1.0
        self._budget_factor: float = 1.0
        self._shock_counts: Dict[str, int] = {}
        # Query-payment watermark of the last strict-maintenance
        # enforcement: income earned since is what may cover accrual.
        # The instant guard keeps enforcement idempotent when several
        # settlement events land on one instant (a periodic settlement
        # coinciding with the trailing one): re-enforcing with zero
        # elapsed income would shut down everything still accruing.
        self._strict_income_mark: float = 0.0
        self._strict_enforced_at: Optional[float] = None
        # Observability sink (duck-typed TraceRecorder). Always None unless
        # attach_trace() is called; the hot loop pays one attribute check.
        self._trace = None

    # -- accessors -----------------------------------------------------------------

    @property
    def config(self) -> EconomyConfig:
        """The engine configuration."""
        return self._config

    @property
    def cache(self) -> CacheManager:
        """The cache manager holding the built structures."""
        return self._cache

    @property
    def account(self) -> CloudAccount:
        """The cloud account (credit ``CR`` and ledger)."""
        return self._account

    @property
    def regret_tracker(self) -> RegretTracker:
        """The per-structure regret array."""
        return self._regret

    @property
    def tenants(self) -> Optional[TenantRegistry]:
        """The tenant registry, or ``None`` for the single-tenant engine."""
        return self._tenants

    @property
    def outcomes(self) -> Tuple[QueryOutcome, ...]:
        """Outcomes of every processed query, in processing order."""
        return tuple(self._outcomes)

    @property
    def execution_model(self) -> ExecutionCostModel:
        """The execution cost model used by the enumerator."""
        return self._structure_costs.execution_model

    @property
    def plan_tables(self) -> Optional[PlanTableCache]:
        """The per-template plan-table cache (batched planning only)."""
        return self._plan_tables

    @property
    def trace(self):
        """The attached trace recorder, or ``None`` (tracing disabled)."""
        return self._trace

    def attach_trace(self, recorder) -> None:
        """Attach a read-only trace recorder to the engine and its parts.

        The recorder (duck-typed :class:`repro.obs.trace.TraceRecorder`)
        observes values the run computes anyway — it must never perturb
        outcomes. Propagates to the cache manager and, when batched
        planning is active, the batch scheduler; ``prime_queries`` also
        forwards it to any scheduler created later.
        """
        self._trace = recorder
        self._cache.attach_trace(recorder)
        if self._batch is not None:
            self._batch.attach_trace(recorder)

    # -- main entry point --------------------------------------------------------------

    def prime_queries(self, queries: Sequence[Query],
                      settlement_period_s: Optional[float] = None,
                      plan_tables: Optional[PlanTableCache] = None) -> None:
        """Announce upcoming arrivals to the batched planner.

        A no-op unless the engine is configured with
        ``planning="batched"``. Queries not primed (or primed queries
        arriving twice) simply take the scalar path, whose outcomes are
        identical by construction.

        Args:
            queries: the upcoming arrivals, in arrival order.
            settlement_period_s: the simulation's settlement period, used
                as the batching epoch grid.
            plan_tables: optional externally owned plan-table cache (e.g.
                shared across benchmark repetitions to measure warm-table
                throughput).
        """
        if self._config.planning != PLANNING_BATCHED:
            return
        if plan_tables is not None:
            self._plan_tables = plan_tables
            self._batch = None
        if self._plan_tables is None:
            self._plan_tables = PlanTableCache()
        if self._batch is None:
            self._batch = BatchScheduler(
                self._enumerator, self.execution_model,
                tables=self._plan_tables,
            )
            if self._trace is not None:
                self._batch.attach_trace(self._trace)
        self._batch.prime(queries, settlement_period_s)

    def process_query(self, query: Query,
                      now: Optional[float] = None) -> QueryOutcome:
        """Run one query through the economy and return its outcome."""
        time_s = query.arrival_time if now is None else now
        self._uncovered = []

        evictions = tuple(self._cache.evict_failed_structures(time_s))
        eviction_losses = sum(
            record.unpaid_maintenance + record.unrecovered_build_cost
            for record in evictions
        )

        batch_view = (self._batch.view_for(query)
                      if self._batch is not None else None)
        if batch_view is not None:
            skyline, budget = self._plan_batched(query, time_s, batch_view)
        else:
            priced = self._price_plans(query, time_s)
            skyline = skyline_filter(
                priced,
                time_of=lambda plan: plan.response_time_s,
                cost_of=lambda plan: plan.price,
            )
            skyline = self._ensure_existing_plan(priced, skyline)
            budget = self._budget_for(query, priced)
        result = negotiate(budget, skyline, self._config.plan_selection)

        maintenance_recovered = self._settle_chosen_plan(query, result, time_s)
        self._distribute_regret(query, result)
        builds, build_spend = self._consider_investments(query, time_s)

        outcome = self._build_outcome(
            query, result, time_s, maintenance_recovered,
            builds, build_spend, evictions, eviction_losses,
        )
        self._outcomes.append(outcome)
        if self._trace is not None:
            self._trace.count("engine:queries")
            self._trace.count(f"engine:case_{result.case.name}")
            if outcome.served_in_cache:
                self._trace.count("engine:cache_hits")
            if builds:
                self._trace.count("engine:builds", len(builds))
        return outcome

    def process_workload(self, queries: Sequence[Query]) -> List[QueryOutcome]:
        """Process queries in order (convenience wrapper for tests/examples)."""
        return [self.process_query(query) for query in queries]

    # -- market shocks -----------------------------------------------------------------
    #
    # Shock semantics (the conservation-under-faults contract, see
    # docs/scenarios.md): invalidation moves no money, price shocks scale
    # only provider-side spending (spot build spend + investment
    # estimates + the maintenance *metric*), and budget squeezes scale
    # offers whose charges still mirror into tenant wallets — so credit
    # conservation stays bitwise-exact through arbitrary shock sequences.

    @property
    def price_factor(self) -> float:
        """The currently active provider price-shock factor."""
        return self._price_factor

    @property
    def budget_factor(self) -> float:
        """The currently active tenant budget-squeeze factor."""
        return self._budget_factor

    @property
    def shock_counts(self) -> Dict[str, int]:
        """Count of shock applications by kind (reporting/diagnostics)."""
        return dict(self._shock_counts)

    def apply_price_shock(self, factor: float) -> None:
        """Reprice provider build/maintenance by ``factor`` from now on.

        ``factor == 1.0`` ends a shock window. Structures built during the
        window are admitted at the spot (scaled) cost actually paid, so
        their amortization recovers the real spend after the shock lifts.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"price shock factor must be positive, got {factor}"
            )
        self._price_factor = factor
        self._shock_counts["price_shock"] = (
            self._shock_counts.get("price_shock", 0) + 1
        )

    def apply_budget_squeeze(self, factor: float) -> None:
        """Scale every tenant's willingness-to-pay by ``factor`` from now on.

        ``factor == 1.0`` ends a squeeze window. The scaled budget caps
        the negotiated charge, which still mirrors into the issuing
        tenant's wallet, so provider and tenant books keep balancing.
        """
        if factor <= 0:
            raise ConfigurationError(
                f"budget squeeze factor must be positive, got {factor}"
            )
        self._budget_factor = factor
        self._shock_counts["budget_squeeze"] = (
            self._shock_counts.get("budget_squeeze", 0) + 1
        )

    def invalidate_structures(self, predicate: str,
                              now: float) -> Tuple[EvictionRecord, ...]:
        """Destroy cached structures whose key contains ``predicate``.

        An empty predicate destroys everything. Beyond evicting, the
        enumerator's generation is bumped (so batched plan tables
        rebuild) and the batched pricing memos are dropped — the next
        query re-prices against the post-fault cache on either planning
        path, and the economy must re-earn the lost structures through
        its normal investment rule.
        """
        matching = [entry.structure.key for entry in self._cache.entries
                    if predicate in entry.structure.key]
        records = tuple(
            self._cache.evict(key, now=now, reason="invalidated")
            for key in matching
        )
        self._enumerator.invalidate()
        self._pricing_states.clear()
        self._shock_counts["invalidation"] = (
            self._shock_counts.get("invalidation", 0) + 1
        )
        return records

    def enforce_maintenance(self, now: float) -> Tuple[EvictionRecord, ...]:
        """The strict-maintenance shutdown-priority policy.

        When :attr:`EconomyConfig.strict_maintenance` is set: compare the
        spot-priced maintenance accrued (unbilled) across the cache with
        the query-payment income earned since the previous enforcement,
        and shut down — evict — the lowest-benefit structures first until
        accrual no longer exceeds income. Benefit is what a structure has
        actually earned back (maintenance billed plus amortization
        recovered); ties break on the key for determinism.
        """
        if not self._config.strict_maintenance:
            return ()
        if (self._strict_enforced_at is not None
                and now <= self._strict_enforced_at):
            return ()
        self._strict_enforced_at = now
        income_total = self._account.totals_by_category().get(
            CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0
        )
        income = income_total - self._strict_income_mark
        self._strict_income_mark = income_total
        accrued_by_key = self._cache.accrued_maintenance(now)
        accrued = sum(accrued_by_key.values()) * self._price_factor
        if accrued <= income:
            return ()
        ranked = sorted(
            self._cache.entries,
            key=lambda entry: (
                entry.maintenance_billed + entry.amortized_recovered,
                entry.structure.key,
            ),
        )
        records: List[EvictionRecord] = []
        for entry in ranked:
            if accrued <= income:
                break
            key = entry.structure.key
            accrued -= accrued_by_key.get(key, 0.0) * self._price_factor
            records.append(
                self._cache.evict(key, now=now, reason="maintenance_shutdown")
            )
        if records:
            self._pricing_states.clear()
        return tuple(records)

    # -- steps -----------------------------------------------------------------------

    def _price_plans(self, query: Query, now: float) -> List[PricedPlan]:
        plans = self._enumerator.enumerate(query)
        if not plans:
            raise PlanningError(f"no plans enumerated for query {query.query_id}")
        return self._pricer.price_plans(plans, self._cache, now)

    def _ensure_existing_plan(self, priced: List[PricedPlan],
                              skyline: List[PricedPlan]) -> List[PricedPlan]:
        """Guarantee the skyline still offers at least one existing plan.

        The skyline is computed over price and time only; if every existing
        plan got dominated by not-yet-built plans, negotiation would have
        nothing executable, so the cheapest existing plan is re-added.
        """
        if any(plan.is_existing for plan in skyline):
            return skyline
        existing = [plan for plan in priced if plan.is_existing]
        if not existing:
            return skyline
        cheapest = min(existing, key=lambda plan: plan.price)
        return skyline + [cheapest]

    def _budget_for(self, query: Query,
                    priced: List[PricedPlan]) -> BudgetFunction:
        backend = [plan for plan in priced
                   if plan.plan.kind is PlanKind.BACKEND]
        if backend:
            reference = backend[0]
        else:
            reference = min(
                (plan for plan in priced if plan.is_existing),
                key=lambda plan: plan.price,
                default=priced[0],
            )
        if self._tenants is not None:
            budget = self._tenants.budget_for(
                query, reference.price, reference.response_time_s,
                default_model=self._config.user_model,
            )
        else:
            budget = self._config.user_model.budget_for(
                query, reference.price, reference.response_time_s
            )
        return self._squeeze(budget)

    def _squeeze(self, budget: BudgetFunction) -> BudgetFunction:
        """Apply the active budget-squeeze factor to an offered budget."""
        if self._budget_factor == 1.0:
            return budget
        return budget.scaled(self._budget_factor)

    # -- batched planning --------------------------------------------------------------
    #
    # The batched path replaces _price_plans + skyline_filter +
    # _ensure_existing_plan + _budget_for with array arithmetic over a
    # per-template plan table, but every float it produces is the output of
    # the identical scalar expression tree, so negotiation and settlement
    # downstream see bit-for-bit identical inputs. Pricing against the
    # mutable cache stays per-query; what moves out of the hot loop is the
    # per-instance execution estimation (vectorized per epoch) and the
    # per-plan re-pricing of shared structures (each distinct structure is
    # priced once per query instead of once per plan).

    def _plan_batched(self, query: Query, now: float,
                      view: Tuple) -> Tuple[List[PricedPlan], BudgetFunction]:
        """Price, skyline-filter, and budget one query from its batch view."""
        table, estimates, column = view
        times = estimates.times_for(column)
        execution_dollars = estimates.execution_dollars_for(column)
        state = self._pricing_state_for(table)
        amortization = self._pricer.amortization

        # Re-price only the built structures: their amortization advances
        # with queries_served and their maintenance accrues with time. The
        # unbuilt slots keep the charges precomputed for this cache version.
        charges = state.charges
        maintenance = state.maintenance
        for position, slot in enumerate(state.cached_slots):
            entry = state.cached_entries[position]
            charge = amortization.charge(entry.build_cost,
                                         entry.queries_served)
            charges[slot] = min(charge, entry.unrecovered_build_cost())
            maintenance[slot] = entry.accrued_maintenance(now)

        amortized: List[float] = []
        prices: List[float] = []
        rows = table.rows
        row_totals = state.row_totals
        for row_index in range(table.row_count):
            total = row_totals[row_index]
            if total is None:
                # Accumulate in plan-structure order — the scalar pricer's
                # addition order — so the float sums match bitwise.
                total = 0.0
                for slot in rows[row_index].structure_indices:
                    total += charges[slot]
            amortized.append(total)
            prices.append(execution_dollars[row_index] + total)

        context = BatchPricingContext(
            table=table, estimates=estimates, column=column, times=times,
            execution_dollars=execution_dollars, charges=charges,
            cached_flags=state.cached_flags, maintenance=maintenance,
            amortized=amortized, prices=prices, existing=list(state.existing),
            remote_surcharges=None,
        )
        self._adjust_batched_pricing(context, now)

        selected = skyline_indices(context.times, context.prices)
        if not any(context.existing[row_index] for row_index in selected):
            # _ensure_existing_plan: re-add the cheapest existing plan
            # (first strict minimum, matching min()'s tie-breaking).
            cheapest: Optional[int] = None
            cheapest_price = float("inf")
            for row_index in range(table.row_count):
                if (context.existing[row_index]
                        and context.prices[row_index] < cheapest_price):
                    cheapest = row_index
                    cheapest_price = context.prices[row_index]
            if cheapest is not None:
                selected = selected + [cheapest]

        skyline = [self._materialize_row(query, context, row_index, now)
                   for row_index in selected]
        budget = self._batched_budget(query, context)
        return skyline, budget

    def _pricing_state_for(self, table: PlanTable) -> _TablePricingState:
        """The cache-version-invariant pricing state of one plan table.

        Rebuilt whenever the cache contents change (tracked through
        :attr:`CacheManager.version`) or the template's plan table was
        regenerated; otherwise reused as-is across the queries in between.
        """
        state = self._pricing_states.get(table.template_name)
        version = self._cache.version
        if (state is not None and state.table is table
                and state.version == version):
            return state

        cache = self._cache
        amortization = self._pricer.amortization
        cached_column_keys = self._cached_column_keys()
        charges: List[float] = []
        cached_flags: List[bool] = []
        maintenance: List[float] = []
        cached_slots: List[int] = []
        cached_entries: List[object] = []
        for slot, structure in enumerate(table.unique_structures):
            if cache.contains(structure.key):
                cached_flags.append(True)
                cached_slots.append(slot)
                cached_entries.append(cache.entry(structure.key))
                charges.append(0.0)      # overwritten on every query
                maintenance.append(0.0)  # overwritten on every query
            else:
                build_cost = self._memoized_build_cost(
                    structure, cached_column_keys
                )
                charges.append(amortization.charge(build_cost, 0))
                cached_flags.append(False)
                maintenance.append(0.0)

        existing: List[bool] = []
        row_totals: List[Optional[float]] = []
        for row in table.rows:
            row_existing = True
            has_cached = False
            for slot in row.structure_indices:
                if cached_flags[slot]:
                    has_cached = True
                else:
                    row_existing = False
            existing.append(row_existing)
            if has_cached:
                # The row mixes built structures in; its total changes per
                # query and is accumulated in the hot loop.
                row_totals.append(None)
            else:
                # All-unbuilt row: its amortized total is fixed until the
                # cache changes. Same accumulation order as the hot loop.
                total = 0.0
                for slot in row.structure_indices:
                    total += charges[slot]
                row_totals.append(total)

        state = _TablePricingState(
            table=table, version=version, charges=charges,
            cached_flags=cached_flags, maintenance=maintenance,
            cached_slots=cached_slots, cached_entries=cached_entries,
            existing=existing, row_totals=row_totals,
        )
        self._pricing_states[table.template_name] = state
        return state

    def _adjust_batched_pricing(self, context: BatchPricingContext,
                                now: float) -> None:
        """Hook: rewrite the batch pricing context before skyline selection.

        The base engine prices purely against its own cache and adjusts
        nothing; the partitioned engine (:mod:`repro.distcache`) overrides
        this to fold remote-access surcharges into rows whose missing
        structures are advertised by the directory, mirroring its scalar
        ``_apply_remote`` re-pricing.
        """

    def _batched_budget(self, query: Query,
                        context: BatchPricingContext) -> BudgetFunction:
        """Mirror of :meth:`_budget_for` over the batch pricing context."""
        table = context.table
        if table.backend_row is not None:
            reference = table.backend_row
        else:
            reference = 0
            best_price = float("inf")
            for row_index in range(table.row_count):
                if (context.existing[row_index]
                        and context.prices[row_index] < best_price):
                    reference = row_index
                    best_price = context.prices[row_index]
        price = context.prices[reference]
        response_time = context.times[reference]
        if self._tenants is not None:
            budget = self._tenants.budget_for(
                query, price, response_time,
                default_model=self._config.user_model,
            )
        else:
            budget = self._config.user_model.budget_for(query, price,
                                                        response_time)
        return self._squeeze(budget)

    def _materialize_row(self, query: Query, context: BatchPricingContext,
                         row_index: int, now: float) -> PricedPlan:
        """Instantiate one plan-table row as the scalar pipeline's PricedPlan."""
        table = context.table
        row = table.rows[row_index]
        charges = context.charges
        cached_flags = context.cached_flags
        maintenance = context.maintenance
        surcharges = context.remote_surcharges

        amortized_by_structure: Dict[str, float] = {}
        new_structures: List[CacheStructure] = []
        maintenance_total = 0.0
        remote_dollars = 0.0
        remote_seconds = 0.0
        remote_shipped = 0.0
        has_remote = False
        for slot, structure in zip(row.structure_indices,
                                   row.plan.structures):
            if cached_flags[slot]:
                amortized_by_structure[structure.key] = charges[slot]
                maintenance_total += maintenance[slot]
                continue
            surcharge = surcharges[slot] if surcharges is not None else None
            if surcharge is not None:
                # Remote access: no build, no amortisation entry — the
                # surcharge folds into the execution estimate below.
                dollars, seconds, shipped = surcharge
                remote_dollars += dollars
                remote_seconds += seconds
                remote_shipped += shipped
                has_remote = True
                continue
            new_structures.append(structure)
            amortized_by_structure[structure.key] = charges[slot]

        if row.constant:
            execution = row.plan.execution
        else:
            execution = context.estimates.estimate_for(row_index,
                                                       context.column)
        if has_remote:
            execution = replace(
                execution,
                network_bytes=execution.network_bytes + remote_shipped,
                network_dollars=execution.network_dollars + remote_dollars,
                response_time_s=execution.response_time_s + remote_seconds,
            )
        # Direct construction instead of dataclasses.replace(): this runs
        # for every skyline row of every query.
        proto = row.plan
        plan = QueryPlan(
            query=query, kind=proto.kind, execution=execution,
            structures=proto.structures, index=proto.index,
            node_count=proto.node_count,
        )

        return PricedPlan(
            plan=plan,
            execution_dollars=context.execution_dollars[row_index],
            amortized_dollars=context.amortized[row_index],
            maintenance_dollars=maintenance_total,
            new_structures=tuple(new_structures),
            amortized_by_structure=amortized_by_structure,
        )

    def _memoized_build_cost(self, structure: CacheStructure,
                             available_columns: Set[str]) -> float:
        """Build-cost estimate, memoized while batched planning is active.

        A build cost depends only on the structure and — for an index —
        on which of its key columns must still be transferred, so the memo
        key is ``(structure key, frozenset of missing column keys)``. The
        scalar path keeps calling the cost model directly.
        """
        if self._batch is None:
            return self._structure_costs.build_cost(
                structure, cached_columns=available_columns
            )
        if isinstance(structure, CachedIndex):
            missing = frozenset(
                column.key for column in structure.required_columns()
                if column.key not in available_columns
            )
            memo_key: Tuple[str, Optional[FrozenSet[str]]] = (
                structure.key, missing
            )
        else:
            memo_key = (structure.key, None)
        cost = self._build_cost_memo.get(memo_key)
        if cost is None:
            cost = self._structure_costs.build_cost(
                structure, cached_columns=available_columns
            )
            self._build_cost_memo[memo_key] = cost
        return cost

    def _settle_chosen_plan(self, query: Query, result: NegotiationResult,
                            now: float) -> float:
        """Move the money and update structure bookkeeping for the chosen plan."""
        chosen = result.chosen
        account = self._account
        account.deposit(result.charge, now, CloudAccount.CATEGORY_QUERY_PAYMENT,
                        note=f"query {query.query_id} ({chosen.label})")
        if self._tenants is not None:
            # Mirror transaction: the payment the provider just banked is
            # withdrawn from the issuing tenant's wallet (and only theirs),
            # so the registry's books balance against the provider's.
            self._tenants.charge(query.tenant_id, result.charge, now,
                                 note=f"query {query.query_id} ({chosen.label})")
        execution_cost = chosen.execution_dollars
        self._safe_withdraw(execution_cost, now,
                            CloudAccount.CATEGORY_EXECUTION_COST,
                            note=f"query {query.query_id}")

        maintenance_recovered = 0.0
        used_keys = [structure.key for structure in chosen.plan.structures
                     if self._cache.contains(structure.key)]
        if used_keys:
            billed = self._cache.bill_maintenance(used_keys, now)
            maintenance_recovered = sum(billed.values())
            self._cache.record_usage(used_keys, now)
            for key in used_keys:
                recovered = chosen.amortized_by_structure.get(key, 0.0)
                if recovered:
                    self._cache.record_amortized_recovery(key, recovered)
        return maintenance_recovered

    def _distribute_regret(self, query: Query,
                           result: NegotiationResult) -> None:
        """Spread each non-chosen plan's regret over its missing structures."""
        built_keys = self._cache.built_keys
        for plan, regret in result.regrets:
            missing = plan.plan.new_structures(built_keys)
            if not missing:
                continue
            self._regret.distribute(missing, regret,
                                    divide=self._config.divide_regret)
            if self._tenants is not None:
                self._tenants.record_regret(query.tenant_id, missing, regret,
                                            divide=self._config.divide_regret)

    def _consider_investments(self, query: Query,
                              now: float) -> Tuple[Tuple[StructureBuild, ...], float]:
        """Apply Eq. 3 and build the structures whose regret justifies it."""
        builds: List[StructureBuild] = []
        total_spend = 0.0
        limit = self._config.max_investments_per_query
        if limit == 0:
            return tuple(builds), total_spend

        decisions = self._investment.candidates(
            self._regret, self._account,
            build_cost_of=self._estimate_build_cost,
            built_keys=self._cache.built_keys,
        )
        for decision in decisions:
            if len(builds) >= limit:
                break
            structure = decision.structure
            if self._cache.contains(structure.key):
                continue
            built = self._build_structure(structure, query.query_id, now)
            if not built:
                continue
            builds.extend(built)
            total_spend += sum(record.build_cost for record in built)
        return tuple(builds), total_spend

    def _cached_column_keys(self) -> FrozenSet[str]:
        """Keys of the cached columns in the local cache (memoized).

        The memo is keyed on :attr:`CacheManager.version`, so it refreshes
        exactly when the set of built structures changes.
        """
        version = self._cache.version
        if self._column_keys_version != version:
            self._column_keys_memo = frozenset(
                key for key in self._cache.built_keys
                if key.startswith("column:")
            )
            self._column_keys_version = version
        return self._column_keys_memo

    def _available_column_keys(self) -> Set[str]:
        """Column keys a build may read instead of re-extracting.

        The base engine only has its own cache; partitioned engines
        (:mod:`repro.distcache`) override this to add columns that exist
        on a remote partition, which a build can read over the network.
        Returns a fresh mutable set: callers extend it while planning
        multi-column index builds.
        """
        return set(self._cached_column_keys())

    def _estimate_build_cost(self, structure: CacheStructure) -> float:
        # The investment rule sees the *spot* (shock-scaled) price: a
        # 3x provider shock must make marginal builds unattractive. The
        # memoized catalog cost stays unscaled — it is shared with the
        # batched pricing of unbuilt plans, which (like the scalar
        # pricer) always quotes users catalog prices.
        return self._memoized_build_cost(
            structure, self._available_column_keys()
        ) * self._price_factor

    def _build_structure(self, structure: CacheStructure, query_id: int,
                         now: float) -> List[StructureBuild]:
        """Build one structure (plus, for an index, its missing key columns).

        Returns an empty list if the account can no longer afford the build
        (credit may have dropped since the decision was evaluated).
        """
        plan: List[Tuple[CacheStructure, float]] = []
        cached_columns = self._available_column_keys()
        # Builds are paid at spot: the active price-shock factor scales
        # every component of the build, and the admitted entry records the
        # cost actually paid so amortization recovers the real spend.
        spot = self._price_factor
        if isinstance(structure, CachedIndex):
            for column in structure.required_columns():
                if column.key not in cached_columns:
                    plan.append(
                        (column, self._structure_costs.build_cost(column) * spot)
                    )
                    cached_columns.add(column.key)
            sort_only_cost = self._structure_costs.build_cost(
                structure, cached_columns=cached_columns | {
                    column.key for column, _ in plan
                },
            ) * spot
            plan.append((structure, sort_only_cost))
        else:
            plan.append((structure, self._structure_costs.build_cost(
                structure, cached_columns=cached_columns
            ) * spot))

        total_cost = sum(cost for _, cost in plan)
        if self._config.require_affordable_build and not self._account.can_afford(total_cost):
            return []

        builds: List[StructureBuild] = []
        schema = self._structure_costs.schema
        for piece, cost in plan:
            if self._cache.contains(piece.key):
                continue
            self._safe_withdraw(cost, now, CloudAccount.CATEGORY_BUILD,
                                note=piece.key)
            self._cache.admit(
                piece,
                size_bytes=piece.size_bytes(schema),
                build_cost=cost,
                maintenance_rate=self._structure_costs.maintenance_rate(piece),
                now=now,
            )
            self._regret.reset(piece.key)
            if self._tenants is not None:
                self._tenants.reset_regret(piece.key)
            builds.append(StructureBuild(
                key=piece.key,
                kind=piece.kind,
                build_cost=cost,
                built_at=now,
                triggered_by_query=query_id,
            ))
        return builds

    def _safe_withdraw(self, amount: float, now: float, category: str,
                       note: str = "") -> float:
        """Withdraw, capping at the available credit.

        Any shortfall — the part of ``amount`` the credit could not cover —
        used to be dropped silently; it is now recorded per category and
        surfaced on the query's :class:`QueryOutcome` as ``uncovered_costs``,
        so reports can see exactly which payments were capped.

        Args:
            amount: the payment due.
            now: simulated instant of the withdrawal.
            category: ledger category of the payment.
            note: free-form ledger note.

        Returns:
            The shortfall (0.0 when the payment was covered in full).
        """
        if amount <= 0:
            return 0.0
        affordable = min(amount, max(0.0, self._account.credit))
        if affordable > 0:
            self._account.withdraw(affordable, now, category, note=note)
        shortfall = amount - affordable
        if shortfall > 1e-12:
            self._uncovered.append((category, shortfall))
            return shortfall
        return 0.0

    def _build_outcome(self, query: Query, result: NegotiationResult, now: float,
                       maintenance_recovered: float,
                       builds: Tuple[StructureBuild, ...], build_spend: float,
                       evictions: Tuple[EvictionRecord, ...],
                       eviction_losses: float) -> QueryOutcome:
        chosen = result.chosen
        execution = chosen.plan.execution
        return QueryOutcome(
            query=query,
            case=result.case,
            plan_kind=chosen.plan.kind,
            plan_label=chosen.label,
            served_in_cache=chosen.plan.runs_in_cache,
            response_time_s=chosen.response_time_s,
            charge=result.charge,
            profit=result.profit,
            execution_cost=chosen.execution_dollars,
            execution_cpu_dollars=execution.cpu_dollars,
            execution_io_dollars=execution.io_dollars,
            execution_network_dollars=execution.network_dollars,
            network_bytes=execution.network_bytes,
            maintenance_recovered=maintenance_recovered,
            builds=builds,
            build_spend=build_spend,
            evictions=evictions,
            eviction_losses=eviction_losses,
            credit_after=self._account.credit,
            tenant_id=query.tenant_id,
            uncovered_costs=tuple(self._uncovered),
        )
