"""Multi-tenant economy: 100 tenants with their own wallets and budgets.

Run with::

    python examples/multi_tenant.py

The script generates a short workload, assigns a Zipf-skewed population of
100 tenants to it (with one mid-run churn wave schedule), runs the
econ-cheap scheme with a tenant-aware economy, and prints per-tenant budget
outcomes: who issued the traffic, who got served from the cache, and what
each wallet looks like at the end of the run.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable as a script)

from repro import CloudSystem, WorkloadGenerator, WorkloadSpec
from repro.economy.tenancy import TenantRegistry
from repro.policies.economic import EconomicSchemeConfig
from repro.simulator.metrics import breakdown_by_tenant
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.workload.population import PopulationSpec, TenantPopulation


def main() -> None:
    workload = WorkloadGenerator(
        WorkloadSpec(query_count=600, interarrival_s=10.0, seed=11)
    ).generate()

    population = TenantPopulation(PopulationSpec(
        tenant_count=100,
        zipf_exponent=1.1,
        initial_credit=25.0,
        churn_period=200,       # one wave every 200 queries
        churn_fraction=0.05,
        seed=11,
    ))
    populated = population.populate(workload)
    print(f"{len(populated.queries)} queries from "
          f"{populated.tenant_count} tenants "
          f"({populated.churn_waves} churned mid-run)")

    registry = TenantRegistry()
    registry.register_all(populated.profiles)
    system = CloudSystem()
    scheme = system.scheme(
        "econ-cheap", economic_config=EconomicSchemeConfig(tenants=registry)
    )
    result = CloudSimulation(scheme, SimulationConfig()).run(
        populated.queries, tenant_lifecycle=populated.lifecycle
    )

    summary = result.summary
    print()
    print(f"Scheme:             {summary.scheme_name}")
    print(f"Operating cost:     ${summary.operating_cost:,.2f}")
    print(f"Overall hit rate:   {summary.cache_hit_rate:.0%}")
    print(f"User charges:       ${summary.total_charge:,.2f}")
    print(f"Provider credit:    ${scheme.engine.account.credit:,.2f}")
    print(f"Wallets remaining:  ${registry.total_credit():,.2f} "
          f"(of ${25.0 * populated.tenant_count:,.2f} deposited)")

    breakdowns = sorted(
        breakdown_by_tenant(result.steps).values(),
        key=lambda item: (-item.query_count, item.tenant_id),
    )
    wallets = registry.credit_by_tenant()
    print()
    print("Top 10 tenants by traffic (per-tenant budget outcomes):")
    print(f"  {'tenant':8s} {'queries':>7s} {'hit rate':>8s} "
          f"{'charged':>9s} {'wallet':>9s}")
    for item in breakdowns[:10]:
        print(f"  {item.tenant_id:8s} {item.query_count:7d} "
              f"{item.cache_hit_rate:8.0%} "
              f"${item.total_charge:8.2f} "
              f"${wallets[item.tenant_id]:8.2f}")

    quiet = [item for item in breakdowns if item.query_count == 1]
    print()
    print(f"Long tail: {len(quiet)} tenants issued exactly one query; "
          f"{populated.tenant_count - len(breakdowns)} issued none.")


if __name__ == "__main__":
    main()
