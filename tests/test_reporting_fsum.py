"""Permutation-invariance regression for the aggregate-table mean.

``distribution_cells`` used ``sum(data)/len(data)``, whose result depends
on summation order — so two byte-identical runs whose per-tenant rows
arrived in different orders could render different aggregate tables. The
``math.fsum`` mean is exact and therefore permutation-invariant, matching
the placement layer's fsum-exact bid folding.
"""

import math
import random

from repro.experiments.reporting import distribution_cells, format_table

#: Values chosen so naive left-to-right float summation is order-sensitive
#: (large magnitude spread forces rounding in some association orders).
ORDER_SENSITIVE = [1e16, 1.0, -1e16, 1.0, 3.14159, 1e-8, 2.71828, -1.0]


class TestDistributionCells:
    def test_mean_is_permutation_invariant(self):
        rng = random.Random(0)
        baseline = distribution_cells(ORDER_SENSITIVE)
        for _ in range(50):
            shuffled = ORDER_SENSITIVE[:]
            rng.shuffle(shuffled)
            assert distribution_cells(shuffled) == baseline

    def test_naive_sum_would_have_failed(self):
        """The bug this regression pins: plain sum() is order-sensitive."""
        reordered = sorted(ORDER_SENSITIVE)
        assert sum(ORDER_SENSITIVE) != sum(reordered)
        assert math.fsum(ORDER_SENSITIVE) == math.fsum(reordered)

    def test_mean_is_exact(self):
        values = ORDER_SENSITIVE
        assert distribution_cells(values)[0] == (
            math.fsum(values) / len(values))

    def test_empty_renders_dashes(self):
        assert distribution_cells([]) == ["-", "-", "-"]

    def test_min_max_unchanged(self):
        cells = distribution_cells([3.0, 1.0, 2.0])
        assert cells[1:] == [1.0, 3.0]


class TestRenderedTablesAreShuffleInvariant:
    def test_rendered_table_bytes_survive_shuffles(self):
        rng = random.Random(1)
        headers = ["metric", "mean", "min", "max"]

        def render(values):
            rows = [["credit", *distribution_cells(values)]]
            return format_table(headers, rows, title="aggregate")

        baseline = render(ORDER_SENSITIVE)
        for _ in range(20):
            shuffled = ORDER_SENSITIVE[:]
            rng.shuffle(shuffled)
            assert render(shuffled) == baseline
