"""Analytic query model.

A :class:`Query` does not carry SQL text: it carries exactly the information
the planner and cost model need —

* the table it scans and the columns it touches,
* its predicates (kind + selectivity), so index benefit can be estimated,
* the columns it returns and an aggregation factor, so the result size
  ``S(Q)`` of Eq. 9 can be computed,
* a parallelisable fraction, feeding the multi-node scaling law.

Queries are produced from :class:`QueryTemplate` objects by the workload
generator, which fills in the per-instance selectivities that give the
workload its data locality.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from repro.catalog.schema import Schema
from repro.catalog.statistics import SelectivityEstimator
from repro.errors import WorkloadError


class PredicateKind(enum.Enum):
    """The two predicate shapes the selectivity estimator distinguishes."""

    EQUALITY = "equality"
    RANGE = "range"


@dataclass(frozen=True)
class Predicate:
    """One predicate of a query: a column, a shape, and a selectivity.

    ``selectivity`` may be ``None`` on a template predicate, in which case the
    generator (or the estimator defaults) fill it in at instantiation time.
    """

    table_name: str
    column_name: str
    kind: PredicateKind
    selectivity: Optional[float] = None

    def __post_init__(self) -> None:
        if self.selectivity is not None and not 0.0 < self.selectivity <= 1.0:
            raise WorkloadError(
                f"predicate on {self.table_name}.{self.column_name} has "
                f"selectivity {self.selectivity}, expected (0, 1]"
            )

    @property
    def qualified_column(self) -> str:
        """``table.column`` name of the predicated column."""
        return f"{self.table_name}.{self.column_name}"

    def resolved_selectivity(self, estimator: SelectivityEstimator) -> float:
        """Selectivity of this predicate, falling back to estimator defaults."""
        if self.selectivity is not None:
            return self.selectivity
        if self.kind is PredicateKind.EQUALITY:
            return estimator.equality_selectivity(self.table_name, self.column_name)
        return estimator.range_selectivity(self.table_name, self.column_name)

    def with_selectivity(self, selectivity: float) -> "Predicate":
        """Copy of the predicate with an explicit selectivity."""
        return Predicate(
            table_name=self.table_name,
            column_name=self.column_name,
            kind=self.kind,
            selectivity=selectivity,
        )


@dataclass(frozen=True)
class QueryTemplate:
    """A parameterised query shape, the unit the workload generator draws from.

    Attributes:
        name: template identifier (e.g. ``"q1_pricing_summary"``).
        table_name: the (fact) table the template scans.
        predicates: template predicates; their selectivities may be ``None``.
        projection_columns: columns returned to the user.
        order_by_columns: columns the result is sorted on (drives which
            candidate indexes the advisor proposes).
        aggregation_factor: fraction of the selected rows that survive
            aggregation (1.0 for non-aggregating queries, small for
            GROUP-BY-few-groups queries).
        join_tables: additional (dimension) tables the query joins with; the
            cost model charges their scans but results are dominated by the
            fact table.
        parallel_fraction: fraction of the work that can be spread over
            extra CPU nodes (Amdahl-style).
        base_cost_factor: multiplier on the scanned-data work, representing
            per-template CPU heaviness (expressions, grouping, sorting).
    """

    name: str
    table_name: str
    predicates: Tuple[Predicate, ...]
    projection_columns: Tuple[str, ...]
    order_by_columns: Tuple[str, ...] = ()
    aggregation_factor: float = 1.0
    join_tables: Tuple[str, ...] = ()
    parallel_fraction: float = 0.9
    base_cost_factor: float = 1.0

    def __post_init__(self) -> None:
        if not self.projection_columns:
            raise WorkloadError(f"template {self.name!r} projects no columns")
        if not 0.0 < self.aggregation_factor <= 1.0:
            raise WorkloadError(
                f"template {self.name!r} aggregation_factor must be in (0, 1]"
            )
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise WorkloadError(
                f"template {self.name!r} parallel_fraction must be in [0, 1]"
            )
        if self.base_cost_factor <= 0:
            raise WorkloadError(
                f"template {self.name!r} base_cost_factor must be positive"
            )

    @property
    def predicate_columns(self) -> Tuple[str, ...]:
        """Column names (unqualified) referenced by predicates on the fact table."""
        return tuple(
            predicate.column_name for predicate in self.predicates
            if predicate.table_name == self.table_name
        )

    @property
    def touched_columns(self) -> Tuple[str, ...]:
        """All fact-table columns the template reads (predicates + projection + sort)."""
        ordered: Dict[str, None] = {}
        for name in self.predicate_columns:
            ordered.setdefault(name, None)
        for name in self.projection_columns:
            ordered.setdefault(name, None)
        for name in self.order_by_columns:
            ordered.setdefault(name, None)
        return tuple(ordered)

    def validate_against(self, schema: Schema) -> None:
        """Raise if the template references tables/columns not in ``schema``."""
        table = schema.table(self.table_name)
        for column_name in self.touched_columns:
            table.column(column_name)
        for predicate in self.predicates:
            schema.column(predicate.table_name, predicate.column_name)
        for join_table in self.join_tables:
            schema.table(join_table)

    def instantiate(self, query_id: int, arrival_time: float,
                    selectivities: Optional[Dict[str, float]] = None,
                    budget_scale: float = 1.0,
                    tenant_id: str = "default") -> "Query":
        """Create a concrete :class:`Query` from this template.

        Args:
            query_id: unique, monotonically increasing identifier.
            arrival_time: simulation time (seconds) at which the query arrives.
            selectivities: optional map ``table.column -> selectivity``
                overriding template predicate selectivities.
            budget_scale: multiplier the generator uses to vary how much the
                user is willing to pay relative to the baseline.
            tenant_id: the tenant (user account) issuing the query; defaults
                to the single shared tenant of the original paper pipeline.
        """
        overrides = selectivities or {}
        predicates = tuple(
            predicate.with_selectivity(overrides[predicate.qualified_column])
            if predicate.qualified_column in overrides else predicate
            for predicate in self.predicates
        )
        return Query(
            query_id=query_id,
            template_name=self.name,
            table_name=self.table_name,
            predicates=predicates,
            projection_columns=self.projection_columns,
            order_by_columns=self.order_by_columns,
            aggregation_factor=self.aggregation_factor,
            join_tables=self.join_tables,
            parallel_fraction=self.parallel_fraction,
            base_cost_factor=self.base_cost_factor,
            arrival_time=arrival_time,
            budget_scale=budget_scale,
            tenant_id=tenant_id,
        )


@dataclass(frozen=True)
class Query:
    """A concrete query instance flowing through the simulator."""

    query_id: int
    template_name: str
    table_name: str
    predicates: Tuple[Predicate, ...]
    projection_columns: Tuple[str, ...]
    order_by_columns: Tuple[str, ...] = ()
    aggregation_factor: float = 1.0
    join_tables: Tuple[str, ...] = ()
    parallel_fraction: float = 0.9
    base_cost_factor: float = 1.0
    arrival_time: float = 0.0
    budget_scale: float = 1.0
    tenant_id: str = "default"

    def __post_init__(self) -> None:
        if self.query_id < 0:
            raise WorkloadError(f"query_id must be non-negative, got {self.query_id}")
        if self.arrival_time < 0:
            raise WorkloadError(
                f"arrival_time must be non-negative, got {self.arrival_time}"
            )
        if self.budget_scale <= 0:
            raise WorkloadError(
                f"budget_scale must be positive, got {self.budget_scale}"
            )
        if not self.tenant_id:
            raise WorkloadError("tenant_id must not be empty")

    @property
    def predicate_columns(self) -> Tuple[str, ...]:
        """Unqualified fact-table predicate column names."""
        return tuple(
            predicate.column_name for predicate in self.predicates
            if predicate.table_name == self.table_name
        )

    @property
    def touched_columns(self) -> Tuple[str, ...]:
        """All fact-table columns the query reads."""
        ordered: Dict[str, None] = {}
        for name in self.predicate_columns:
            ordered.setdefault(name, None)
        for name in self.projection_columns:
            ordered.setdefault(name, None)
        for name in self.order_by_columns:
            ordered.setdefault(name, None)
        return tuple(ordered)

    @property
    def touched_column_set(self) -> FrozenSet[str]:
        """Set form of :attr:`touched_columns`, for subset tests."""
        return frozenset(self.touched_columns)

    # -- analytic properties consumed by the cost model -----------------------

    def fact_selectivity(self, estimator: SelectivityEstimator) -> float:
        """Combined selectivity of the predicates on the fact table only.

        This is what index usability and scan reduction are judged on: join
        filters on dimension tables do not reduce how much of the fact table
        a scan or an index probe has to touch.
        """
        fact_predicates = [
            predicate for predicate in self.predicates
            if predicate.table_name == self.table_name
        ]
        if not fact_predicates:
            return 1.0
        return estimator.conjunction_selectivity(
            predicate.resolved_selectivity(estimator)
            for predicate in fact_predicates
        )

    def selectivity(self, estimator: SelectivityEstimator) -> float:
        """Combined selectivity of *all* predicates (fact and join filters).

        This drives the result size ``S(Q)``: rows only reach the user if
        they survive the dimension-table filters as well.
        """
        if not self.predicates:
            return 1.0
        return estimator.conjunction_selectivity(
            predicate.resolved_selectivity(estimator)
            for predicate in self.predicates
        )

    def result_rows(self, estimator: SelectivityEstimator) -> int:
        """Number of rows the query returns to the user."""
        selected = estimator.output_rows(self.table_name, self.selectivity(estimator))
        return max(1, int(round(selected * self.aggregation_factor)))

    def result_bytes(self, estimator: SelectivityEstimator) -> int:
        """``S(Q)`` of Eq. 9: bytes shipped back to the cache / user."""
        table = estimator.schema.table(self.table_name)
        width = sum(
            table.column(name).width_bytes for name in self.projection_columns
        )
        return max(1, self.result_rows(estimator) * width)

    def scanned_bytes(self, estimator: SelectivityEstimator,
                      column_names: Optional[Iterable[str]] = None) -> int:
        """Bytes a column scan reads for this query.

        Args:
            column_names: restrict the scan to these columns; defaults to all
                columns the query touches.
        """
        names = tuple(column_names) if column_names is not None else self.touched_columns
        scanned = estimator.scanned_bytes(self.table_name, names)
        for join_table in self.join_tables:
            scanned += estimator.schema.table(join_table).size_bytes
        return scanned
