"""Direct tests of the cache's eviction-policy interplay.

Capacity (LRU) eviction and idle-failure eviction were previously only
exercised indirectly through the figure reproductions; these tests pin
how the two policies interact under one clock — who wins when both could
fire, and how the ``min_residency_s`` grace shields a fresh structure
from one but not the other.
"""

import pytest

from repro.cache.manager import CacheConfig, CacheManager
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex


def admit(manager, structure, size=100, cost=10.0, rate=0.01, now=0.0):
    return manager.admit(structure, size_bytes=size, build_cost=cost,
                         maintenance_rate=rate, now=now)


@pytest.fixture
def columns():
    return [CachedColumn("lineitem", f"c{i}") for i in range(4)]


class TestCapacityRacingFailure:
    def test_idle_structure_can_fail_then_capacity_needs_no_victim(
            self, columns):
        """Failure eviction frees the space a simultaneous admission would
        otherwise have taken by LRU: same clock, checked first (the engine
        always applies the failure rule before admitting)."""
        manager = CacheManager(CacheConfig(capacity_bytes=1_000,
                                           max_idle_s=50.0,
                                           column_idle_multiplier=1.0))
        admit(manager, columns[0], size=600, now=0.0)
        admit(manager, columns[1], size=300, now=10.0)
        manager.record_usage([columns[1].key], now=60.0)

        failed = manager.evict_failed_structures(now=70.0)
        assert [record.key for record in failed] == [columns[0].key]
        assert [record.reason for record in failed] == ["idle_failure"]

        evicted = admit(manager, columns[2], size=600, now=70.0)
        assert evicted == []
        assert manager.built_keys == {columns[1].key, columns[2].key}

    def test_without_failure_check_capacity_takes_the_lru_victim(
            self, columns):
        """The same state without the failure pass: capacity eviction
        picks by recency, so the idle structure is evicted as the LRU
        victim with a ``capacity_lru`` record instead of failing."""
        manager = CacheManager(CacheConfig(capacity_bytes=1_000,
                                           max_idle_s=50.0))
        admit(manager, columns[0], size=600, now=0.0)
        admit(manager, columns[1], size=300, now=10.0)
        manager.record_usage([columns[1].key], now=60.0)

        evicted = admit(manager, columns[2], size=600, now=70.0)
        assert [record.key for record in evicted] == [columns[0].key]
        assert [record.reason for record in evicted] == ["capacity_lru"]

    def test_eviction_records_carry_the_loss_sides(self, columns):
        """Both policies account the same way: unpaid maintenance accrues
        with the clock, unrecovered build cost with amortisation."""
        manager = CacheManager(CacheConfig(capacity_bytes=500,
                                           max_idle_s=50.0))
        admit(manager, columns[0], size=500, cost=8.0, rate=0.1, now=0.0)
        manager.record_amortized_recovery(columns[0].key, 3.0)

        evicted = admit(manager, columns[1], size=500, now=20.0)
        record = evicted[0]
        assert record.unpaid_maintenance == pytest.approx(0.1 * 20.0)
        assert record.unrecovered_build_cost == pytest.approx(5.0)


class TestMinResidencyGrace:
    def test_grace_shields_from_failure_but_not_capacity(self, columns):
        """Under one clock: a fresh idle structure survives the failure
        check inside its residency grace, yet the same instant's capacity
        pressure may still evict it — the grace is a failure-rule notion,
        not a pin."""
        manager = CacheManager(CacheConfig(capacity_bytes=1_000,
                                           max_idle_s=10.0,
                                           min_residency_s=100.0))
        admit(manager, columns[0], size=600, now=0.0)

        assert manager.evict_failed_structures(now=50.0) == []

        evicted = admit(manager, columns[1], size=600, now=50.0)
        assert [record.key for record in evicted] == [columns[0].key]
        assert [record.reason for record in evicted] == ["capacity_lru"]

    def test_failure_fires_once_grace_expires(self, columns):
        manager = CacheManager(CacheConfig(max_idle_s=10.0,
                                           min_residency_s=100.0))
        admit(manager, columns[0], now=0.0)
        assert manager.evict_failed_structures(now=99.0) == []
        failed = manager.evict_failed_structures(now=101.0)
        assert [record.key for record in failed] == [columns[0].key]

    def test_usage_inside_grace_still_resets_the_idle_clock(self, columns):
        manager = CacheManager(CacheConfig(max_idle_s=10.0,
                                           min_residency_s=20.0,
                                           column_idle_multiplier=1.0))
        admit(manager, columns[0], now=0.0)
        manager.record_usage([columns[0].key], now=19.0)
        # Grace has expired at t=25, but the structure was used at t=19,
        # so it is only 6 seconds idle — alive.
        assert manager.evict_failed_structures(now=25.0) == []
        failed = manager.evict_failed_structures(now=30.0)
        assert [record.key for record in failed] == [columns[0].key]

    def test_column_multiplier_and_grace_compose(self):
        """A column's idle limit is multiplied *and* the grace applies:
        the effective earliest failure is the later of the two."""
        manager = CacheManager(CacheConfig(max_idle_s=10.0,
                                           column_idle_multiplier=4.0,
                                           min_residency_s=15.0))
        column = CachedColumn("lineitem", "l_shipdate")
        index = CachedIndex("lineitem", ("l_shipdate",))
        admit(manager, column, now=0.0)
        admit(manager, index, now=0.0)
        # t=20: grace passed; the index (limit 10) has failed, the column
        # (limit 40) has not.
        failed = manager.evict_failed_structures(now=20.0)
        assert [record.key for record in failed] == [index.key]
        assert manager.evict_failed_structures(now=39.0) == []
        failed = manager.evict_failed_structures(now=41.0)
        assert [record.key for record in failed] == [column.key]
