"""Plan pricing: the discrete cloud budget function ``B_PQ(t)``.

The price of a plan (Eq. 4) is its execution cost plus the amortised build
cost of every structure it uses (Eqs. 5-7), plus — for structures that are
already built — the maintenance accrued since a paying plan last used them
(footnote 3). Plans in ``PQpos`` are priced with the estimated build cost of
their missing structures amortised from scratch, which is exactly the price
a future query would see once the cloud invests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.cache.manager import CacheManager
from repro.costmodel.amortization import AmortizationPolicy
from repro.costmodel.build import StructureCostModel
from repro.planner.plan import QueryPlan
from repro.structures.base import CacheStructure


@dataclass(frozen=True)
class PricedPlan:
    """A plan together with its price breakdown at a specific moment.

    The total ``price`` is the value of the cloud budget function
    ``B_PQ`` at the plan's execution time: execution cost plus amortised
    build cost (Eq. 4). The maintenance accrued by the plan's structures
    since they were last used (footnote 3) is reported separately in
    ``maintenance_dollars`` and recovered from the payment when the plan is
    selected, but it is deliberately *not* folded into the price: doing so
    would make a structure ever more expensive to use the longer it sits
    idle, a self-reinforcing spiral that locks the cache out at long
    inter-arrival times (the economy then never recovers the dues at all).

    Example:
        >>> from repro.costmodel.execution import ExecutionEstimate
        >>> from repro.planner.plan import PlanKind, QueryPlan
        >>> from repro.workload.query import Query
        >>> query = Query(query_id=0, template_name="t", table_name="lineitem",
        ...               predicates=(), projection_columns=("l_quantity",))
        >>> estimate = ExecutionEstimate(
        ...     cost_units=1.0, io_operations=0.0, cpu_seconds=1.0,
        ...     network_bytes=0.0, response_time_s=3.0, cpu_dollars=2.0,
        ...     io_dollars=0.0, network_dollars=0.0)
        >>> priced = PricedPlan(
        ...     plan=QueryPlan(query=query, kind=PlanKind.BACKEND,
        ...                    execution=estimate),
        ...     execution_dollars=2.0, amortized_dollars=0.5,
        ...     maintenance_dollars=0.25, new_structures=(),
        ...     amortized_by_structure={})
        >>> priced.price, priced.is_existing, priced.response_time_s
        (2.5, True, 3.0)
    """

    plan: QueryPlan
    execution_dollars: float
    amortized_dollars: float
    maintenance_dollars: float
    new_structures: Tuple[CacheStructure, ...]
    amortized_by_structure: Dict[str, float]

    @property
    def price(self) -> float:
        """``B_PQ(t_PQ)``: what a user would be charged at minimum for this plan."""
        return self.execution_dollars + self.amortized_dollars

    @property
    def response_time_s(self) -> float:
        """The plan's execution time ``t_PQ``."""
        return self.plan.response_time_s

    @property
    def is_existing(self) -> bool:
        """Whether the plan uses only structures that are already built."""
        return not self.new_structures

    @property
    def label(self) -> str:
        """The underlying plan's short label."""
        return self.plan.label


class PlanPricer:
    """Prices plans against the current cache state."""

    def __init__(self, structure_costs: StructureCostModel,
                 amortization: AmortizationPolicy) -> None:
        self._structure_costs = structure_costs
        self._amortization = amortization

    @property
    def amortization(self) -> AmortizationPolicy:
        """The amortisation policy in force."""
        return self._amortization

    def price_plan(self, plan: QueryPlan, cache: CacheManager,
                   now: float) -> PricedPlan:
        """Price a single plan against the cache state at time ``now``.

        Args:
            plan: the plan to price.
            cache: the cache whose built structures decide what is
                existing versus possible.
            now: pricing instant (drives accrued-maintenance dues).

        Returns:
            The plan's :class:`PricedPlan` breakdown.
        """
        built_keys = cache.built_keys
        cached_column_keys = {
            key for key in built_keys if key.startswith("column:")
        }
        amortized_total = 0.0
        maintenance_total = 0.0
        amortized_by_structure: Dict[str, float] = {}
        new_structures: List[CacheStructure] = []

        for structure in plan.structures:
            if cache.contains(structure.key):
                entry = cache.entry(structure.key)
                charge = self._amortization.charge(
                    entry.build_cost, entry.queries_served
                )
                charge = min(charge, entry.unrecovered_build_cost())
                maintenance_total += entry.accrued_maintenance(now)
            else:
                new_structures.append(structure)
                build_cost = self._structure_costs.build_cost(
                    structure, cached_columns=cached_column_keys
                )
                charge = self._amortization.charge(build_cost, 0)
            amortized_by_structure[structure.key] = charge
            amortized_total += charge

        return PricedPlan(
            plan=plan,
            execution_dollars=plan.execution_dollars,
            amortized_dollars=amortized_total,
            maintenance_dollars=maintenance_total,
            new_structures=tuple(new_structures),
            amortized_by_structure=amortized_by_structure,
        )

    def price_plans(self, plans: Sequence[QueryPlan], cache: CacheManager,
                    now: float) -> List[PricedPlan]:
        """Price every plan in ``plans`` (convenience wrapper)."""
        return [self.price_plan(plan, cache, now) for plan in plans]
