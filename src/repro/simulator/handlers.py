"""Standard event handlers wiring schemes and maintenance to the kernel.

The old simulation loop special-cased maintenance settlement inline
between arrivals; here the same accounting is expressed as handlers:

* :class:`SchemeTenant` — connects one caching scheme (and its metrics
  collector) to the kernel. Arrivals settle the tenant's maintenance up
  to the arrival instant and then drive the scheme; settlement and
  failure-check events settle without running a query. Several tenants
  can share one kernel (and therefore one clock) in a single run.
* :class:`PeriodicRescheduler` — re-schedules periodic settlement /
  failure-check events up to a horizon. Register it **once** per kernel
  (not per tenant), or periodic events would multiply.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.errors import SimulationError
from repro.policies.base import CachingScheme
from repro.simulator.events import (
    Event,
    MaintenanceSettlementEvent,
    ProviderPriceShockEvent,
    QueryArrivalEvent,
    StructureFailureCheckEvent,
    StructureInvalidationEvent,
    TenantArrivalEvent,
    TenantBudgetSqueezeEvent,
    TenantChurnEvent,
    WorkloadPhaseChangeEvent,
)
from repro.simulator.kernel import SimulationKernel
from repro.simulator.metrics import MetricsCollector


class SchemeTenant:
    """One scheme's view of a shared simulation run.

    Maintenance accrues continuously at the scheme's current rate; the
    rate only changes when the scheme processes a query, so settling at
    every event boundary integrates the cost exactly. Warm-up queries
    update the scheme's state but are excluded from the metrics, matching
    the original loop's semantics.
    """

    def __init__(self, scheme: CachingScheme, collector: MetricsCollector,
                 warmup_queries: int = 0, start_time_s: float = 0.0) -> None:
        if warmup_queries < 0:
            raise SimulationError("warmup_queries must be non-negative")
        self._scheme = scheme
        self._collector = collector
        self._warmup = warmup_queries
        self._processed = 0
        self._last_settled_s = start_time_s
        self._phase_changes = 0
        self._tenant_arrivals = 0
        self._tenant_churns = 0
        self._shock_events = 0

    # -- introspection ---------------------------------------------------------

    @property
    def scheme(self) -> CachingScheme:
        """The scheme this tenant drives."""
        return self._scheme

    @property
    def collector(self) -> MetricsCollector:
        """The metrics collector accumulating this tenant's run."""
        return self._collector

    @property
    def processed_queries(self) -> int:
        """Queries processed so far (warm-up included)."""
        return self._processed

    @property
    def phase_changes_seen(self) -> int:
        """Workload phase-change events observed so far."""
        return self._phase_changes

    @property
    def tenant_arrivals_seen(self) -> int:
        """Tenant arrival events observed so far."""
        return self._tenant_arrivals

    @property
    def tenant_churns_seen(self) -> int:
        """Tenant churn events observed so far."""
        return self._tenant_churns

    @property
    def shock_events_seen(self) -> int:
        """Market-shock events (invalidation/price/budget) observed so far."""
        return self._shock_events

    # -- wiring ----------------------------------------------------------------

    def register(self, kernel: SimulationKernel) -> None:
        """Register this tenant's handlers on ``kernel``."""
        kernel.register(QueryArrivalEvent, self.on_arrival)
        kernel.register(MaintenanceSettlementEvent, self.on_settlement)
        kernel.register(StructureFailureCheckEvent, self.on_failure_check)
        kernel.register(WorkloadPhaseChangeEvent, self.on_phase_change)
        kernel.register(TenantArrivalEvent, self.on_tenant_arrival)
        kernel.register(TenantChurnEvent, self.on_tenant_churn)
        kernel.register(StructureInvalidationEvent, self.on_invalidation)
        kernel.register(ProviderPriceShockEvent, self.on_price_shock)
        kernel.register(TenantBudgetSqueezeEvent, self.on_budget_squeeze)

    # -- handlers --------------------------------------------------------------

    def on_arrival(self, event: Event, kernel: SimulationKernel) -> None:
        """Settle maintenance up to the arrival, then serve the query."""
        assert isinstance(event, QueryArrivalEvent)
        self._settle(event.time_s)
        step = self._scheme.process(event.query)
        self._processed += 1
        if self._processed > self._warmup:
            self._collector.record_step(step)

    def on_settlement(self, event: Event, kernel: SimulationKernel) -> None:
        """Charge maintenance accrued since the last settlement.

        Settlement is also where the strict-maintenance shutdown policy
        runs (a no-op for schemes without one): accrual is compared with
        income and the lowest-benefit structures are shut down first.
        """
        self._settle(event.time_s)
        records = self._scheme.enforce_maintenance(event.time_s)
        if records and self._processed >= self._warmup:
            self._collector.record_kernel_evictions(
                records, loss_of=self._scheme.eviction_loss)

    def on_invalidation(self, event: Event, kernel: SimulationKernel) -> None:
        """Destroy matching cached structures mid-run (settle first).

        The losses are booked exactly like kernel failure evictions; the
        scheme must re-earn the structures through its normal admission
        path. No money moves.
        """
        assert isinstance(event, StructureInvalidationEvent)
        self._settle(event.time_s)
        self._shock_events += 1
        records = self._scheme.apply_invalidation(event.predicate,
                                                  event.time_s)
        if records and self._processed >= self._warmup:
            self._collector.record_kernel_evictions(
                records, loss_of=self._scheme.eviction_loss)

    def on_price_shock(self, event: Event, kernel: SimulationKernel) -> None:
        """Reprice the provider market (maintenance settles at the old rate
        first — the event boundary keeps the integral piecewise-exact)."""
        assert isinstance(event, ProviderPriceShockEvent)
        self._settle(event.time_s)
        self._shock_events += 1
        self._scheme.apply_price_shock(event.factor, event.time_s)

    def on_budget_squeeze(self, event: Event, kernel: SimulationKernel) -> None:
        """Scale tenant willingness-to-pay from this instant on."""
        assert isinstance(event, TenantBudgetSqueezeEvent)
        self._settle(event.time_s)
        self._shock_events += 1
        self._scheme.apply_budget_squeeze(event.factor, event.time_s)

    def on_failure_check(self, event: Event, kernel: SimulationKernel) -> None:
        """Release idle-failed structures (after settling up to now).

        The metrics gate mirrors the maintenance one: evictions during the
        warm-up window update the cache but stay out of the summary, exactly
        as an eviction inside a warm-up query step would.
        """
        self._settle(event.time_s)
        records = self._scheme.cache.evict_failed_structures(event.time_s)
        if records and self._processed >= self._warmup:
            self._collector.record_kernel_evictions(
                records, loss_of=self._scheme.eviction_loss)

    def on_phase_change(self, event: Event, kernel: SimulationKernel) -> None:
        """Observe a workload phase boundary (schemes are self-tuned; the
        boundary is informational, but counting it keeps runs auditable)."""
        self._phase_changes += 1

    def on_tenant_arrival(self, event: Event, kernel: SimulationKernel) -> None:
        """Activate the arriving tenant in the scheme's registry (if any)."""
        assert isinstance(event, TenantArrivalEvent)
        self._tenant_arrivals += 1
        registry = self._scheme.tenant_registry
        if registry is not None:
            registry.activate(event.tenant_id, now=event.time_s)

    def on_tenant_churn(self, event: Event, kernel: SimulationKernel) -> None:
        """Deactivate the churning tenant in the scheme's registry (if any).

        The tenant's wallet and regret history are retained: a returning
        tenant resumes with its old balance, and end-of-run reports still
        cover churned tenants.
        """
        assert isinstance(event, TenantChurnEvent)
        self._tenant_churns += 1
        registry = self._scheme.tenant_registry
        if registry is not None:
            registry.deactivate(event.tenant_id, now=event.time_s)

    # -- internals -------------------------------------------------------------

    def _settle(self, now: float) -> None:
        elapsed = now - self._last_settled_s
        self._last_settled_s = max(self._last_settled_s, now)
        if elapsed <= 0 or self._processed < self._warmup:
            return
        rate = self._scheme.maintenance_rate()
        self._collector.record_maintenance(rate * elapsed, elapsed)


class PeriodicRescheduler:
    """Chains periodic events: re-schedules any event carrying ``period_s``.

    Register once per kernel, for each periodic event type, *after* the
    tenants — registration order is dispatch order, so the follow-up is
    scheduled only after every tenant has handled the current occurrence.
    """

    def __init__(self, horizon_s: Optional[float] = None) -> None:
        if horizon_s is not None and horizon_s < 0:
            raise SimulationError("horizon_s must be non-negative")
        self._horizon_s = horizon_s

    def __call__(self, event: Event, kernel: SimulationKernel) -> None:
        period = getattr(event, "period_s", None)
        if not period:
            return
        next_time = event.time_s + period
        if self._horizon_s is not None and next_time > self._horizon_s:
            return
        kernel.schedule(replace(event, time_s=next_time))
