"""Partitioned-cache scaling benchmark: replicated vs partitioned modes.

The claim under test is the one ``docs/distcache.md`` makes: the
replicated-replay sharding mode multiplies per-query compute (every shard
replays every query), while the partitioned mode keeps it flat (each
query is planned and priced by exactly one partition) and shrinks each
worker's cache footprint to its owned slice.

Both modes therefore run on **one worker process** here: sequential
wall-clock is total compute, which is the quantity the modes differ in —
with N shards the replicated run does ~N times the engine work of the
unsharded run, the partitioned run ~1 times. Per-worker peak cache bytes
are read from the cache managers themselves. Each partitioned scale also
runs with ``placement="adaptive"``: template-affinity routing makes the
workload locality-skewed (a template's queries all land on one
partition, which keeps paying the remote surcharge for foreign-owned
structures), and the adaptive rows record how demand-driven handoffs cut
that surcharge and how delta publication cuts barrier bytes (the
dedicated sweep is ``bench_placement.py``). Results land in
``BENCH_distcache.json`` next to ``BENCH_sharding.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_distcache.py --tenants 100 --queries 300

or via the pytest wrapper (``benchmarks/test_bench_distcache.py``), which
uses a smaller population so the suite stays fast.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.distcache import run_partitioned_cell  # noqa: E402
from repro.experiments.tenants import (  # noqa: E402
    TenantExperimentConfig,
    run_tenant_cell,
)
from repro.sharding import ShardCoordinator  # noqa: E402

#: Default artifact path: the repository root, as a first-class record.
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_distcache.json")


def _peak_global_cache_bytes(config: TenantExperimentConfig) -> int:
    """Peak cache footprint of the shared-cache run (what every replicated
    worker materialises)."""
    import repro.experiments.tenants as tenants_module
    from repro.policies.economic import EconomicSchemeConfig
    from repro.economy.tenancy import TenantRegistry
    from repro.simulator.simulation import CloudSimulation, SimulationConfig
    from repro.system import CloudSystem

    populated = tenants_module.build_population(config)
    system = CloudSystem()
    registry = TenantRegistry()
    registry.register_all(populated.profiles)
    scheme = system.scheme(
        config.scheme, economic_config=EconomicSchemeConfig(tenants=registry))
    CloudSimulation(scheme, SimulationConfig(
        settlement_period_s=config.settlement_period_s,
    )).run(populated.queries, tenant_lifecycle=populated.lifecycle)
    return scheme.cache.peak_disk_used_bytes


def run_benchmark(tenant_count: int = 100, query_count: int = 300,
                  partition_counts: Sequence[int] = (1, 2, 4),
                  scheme: str = "econ-cheap", seed: int = 0,
                  settlement_period_s: float = 30.0) -> Dict:
    """Time both modes at each scale on one worker; record the artifact.

    Args:
        tenant_count: population size of the cell.
        query_count: queries replayed per run.
        partition_counts: scales to sweep; each count N is run as
            ``--shards N`` (replicated) and ``--cache-partitions N``
            (partitioned).
        scheme: the caching scheme under test.
        seed: workload/population seed.
        settlement_period_s: barrier period (directory sync cadence for
            the partitioned runs, checkpoint cadence for the sharded ones).

    Returns:
        The report dictionary written to ``BENCH_distcache.json``.
    """
    config = TenantExperimentConfig(
        scheme=scheme, tenant_count=tenant_count, query_count=query_count,
        interarrival_s=1.0, seed=seed,
        settlement_period_s=settlement_period_s,
    )
    started = time.perf_counter()
    run_tenant_cell(config)
    unsharded_s = time.perf_counter() - started
    global_peak = _peak_global_cache_bytes(config)

    runs: List[Dict] = []
    for count in partition_counts:
        coordinator = ShardCoordinator(count, max_workers=1)
        started = time.perf_counter()
        coordinator.run_cell(config)
        replicated_s = time.perf_counter() - started
        runs.append({
            "benchmark_mode": "replicated",
            "partitions": count,
            "elapsed_s": replicated_s,
            "queries_per_s": query_count / replicated_s,
            "engine_queries": query_count * count,
            "peak_worker_cache_bytes": global_peak,
        })

        for placement in ("hash", "adaptive"):
            started = time.perf_counter()
            report = run_partitioned_cell(config, partitions=count,
                                          compare_baseline=False,
                                          placement=placement)
            partitioned_s = time.perf_counter() - started
            runs.append({
                # "partitioned" == the hash-placement mode of PR 4; the
                # adaptive mode additionally hands hot structures to
                # their highest-benefit partition at barriers, cutting
                # the recurring remote surcharge the locality-skewed
                # template routing otherwise keeps paying.
                "benchmark_mode": ("partitioned" if placement == "hash"
                                   else "adaptive"),
                "partitions": count,
                "elapsed_s": partitioned_s,
                "queries_per_s": query_count / partitioned_s,
                "engine_queries": query_count,
                "peak_worker_cache_bytes": max(
                    stats.peak_cache_bytes for stats in report.partitions),
                "remote_hits": report.remote_hit_count,
                "remote_surcharge_dollars": report.remote_dollars_paid,
                "handoffs": report.handoff_count,
                "directory_bytes_published":
                    report.directory_bytes_published,
                "directory_bytes_full_republication":
                    report.directory_bytes_full,
                "cache_hit_rate": report.cell.summary.cache_hit_rate,
                "barriers_verified": report.barriers_verified,
            })
    return {
        "benchmark": "distcache",
        "scheme": scheme,
        "tenant_count": tenant_count,
        "query_count": query_count,
        "seed": seed,
        "settlement_period_s": settlement_period_s,
        "python": platform.python_version(),
        "unsharded": {
            "elapsed_s": unsharded_s,
            "queries_per_s": query_count / unsharded_s,
            "peak_worker_cache_bytes": global_peak,
        },
        "runs": runs,
    }


def write_report(report: Dict, path: str = DEFAULT_OUTPUT) -> str:
    """Write the report as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record replicated-vs-partitioned throughput to "
                    "BENCH_distcache.json")
    parser.add_argument("--tenants", type=int, default=100)
    parser.add_argument("--queries", type=int, default=300)
    parser.add_argument("--partitions", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--scheme", default="econ-cheap")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--settlement-period", type=float, default=30.0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--history", default=None, metavar="DIR",
                        help="additionally append a bench-history record "
                             "(git sha + config hash + headline metrics) "
                             "to DIR/<benchmark>.jsonl for "
                             "'repro report --baseline'")
    args = parser.parse_args(argv)
    report = run_benchmark(
        tenant_count=args.tenants, query_count=args.queries,
        partition_counts=tuple(args.partitions), scheme=args.scheme,
        seed=args.seed, settlement_period_s=args.settlement_period,
    )
    path = write_report(report, args.output)
    if args.history:
        from repro.obs.history import append_bench_history

        history_path = append_bench_history(report, args.history)
        print(f"history appended to {history_path}")
    for run in report["runs"]:
        print(f"{run['benchmark_mode']:>11} x{run['partitions']}: "
              f"{run['elapsed_s']:.2f}s ({run['queries_per_s']:.0f} q/s, "
              f"peak {run['peak_worker_cache_bytes'] / 1024 ** 3:.0f} GB "
              f"cache/worker)")
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
