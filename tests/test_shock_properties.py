"""Property tests: conservation under chaos.

Arbitrary seeded shock sequences — invalidations, price-shock windows,
budget-squeeze windows, the strict-maintenance shutdown policy — are
thrown at every scheme and every execution mode, and the books must stay
**bitwise** balanced:

* the provider's ``query_payment`` deposits fold to exactly what the
  outcomes charged (same floats, same order);
* every tenant wallet folds bitwise from its own ledger, and no wallet
  appears or disappears because of a shock (tenant isolation);
* the sharded and partitioned execution modes agree with the plain one
  under the same chaos — byte-identically for shards, barrier-audited
  for partitions.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.experiments.shocks import audited_shock_cell, baseline_config
from repro.experiments.tenants import (
    TenantExperimentConfig,
    run_tenant_cell,
    run_tenant_experiment,
)
from repro.workload.grammar import (
    BudgetSqueeze,
    InvalidationShock,
    PriceShock,
)


fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
durations = st.floats(min_value=0.05, max_value=0.5, allow_nan=False)
price_factors = st.floats(min_value=0.25, max_value=4.0, allow_nan=False,
                          exclude_min=False)
squeeze_factors = st.floats(min_value=0.25, max_value=2.0, allow_nan=False)

invalidations = st.builds(
    InvalidationShock,
    at_fraction=fractions,
    predicate=st.sampled_from(["", "index", "column", "lineitem"]),
)
price_shocks = st.builds(PriceShock, at_fraction=fractions,
                         duration_fraction=durations, factor=price_factors)
budget_squeezes = st.builds(BudgetSqueeze, at_fraction=fractions,
                            duration_fraction=durations,
                            factor=squeeze_factors)

shock_sequences = st.lists(
    st.one_of(invalidations, price_shocks, budget_squeezes),
    min_size=1, max_size=4,
).map(tuple)


def chaos_config(scheme, shocks, seed, strict):
    return TenantExperimentConfig(
        scheme=scheme,
        tenant_count=8,
        query_count=60,
        interarrival_s=5.0,
        seed=seed,
        settlement_period_s=25.0,
        shocks=shocks,
        strict_maintenance=strict,
    )


class TestConservationUnderChaos:
    @given(scheme=st.sampled_from(["econ-col", "econ-cheap", "econ-fast"]),
           shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**16),
           strict=st.booleans())
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_books_balance_bitwise_for_any_shock_sequence(
            self, scheme, shocks, seed, strict):
        config = chaos_config(scheme, shocks, seed, strict)
        cell, audit = audited_shock_cell(config)
        assert audit is not None
        assert audit.exact, (
            f"conservation violated: {audit.query_payments!r} != "
            f"{audit.outcome_charges!r} "
            f"({audit.wallet_ledger_mismatches} ledger mismatches)")
        assert cell.summary.query_count == config.query_count

    @given(shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_shocks_preserve_tenant_isolation(self, shocks, seed):
        """Chaos may drain wallets, never create or destroy them — and
        every wallet still folds bitwise from its own ledger."""
        config = chaos_config("econ-cheap", shocks, seed, strict=False)
        shocked, audit = audited_shock_cell(config)
        clean = run_tenant_cell(baseline_config(config))
        shocked_ids = {tenant for tenant, _ in shocked.wallet_credit}
        clean_ids = {tenant for tenant, _ in clean.wallet_credit}
        assert shocked_ids == clean_ids
        assert audit is not None and audit.wallet_ledger_mismatches == 0
        assert audit.wallets_audited == len(shocked_ids)

    @given(shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**16),
           strict=st.booleans())
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_chaos_is_deterministic(self, shocks, seed, strict):
        """The same (shocks, seed) replays byte-identically — chaos is
        seeded, not random."""
        config = chaos_config("econ-cheap", shocks, seed, strict)
        assert run_tenant_cell(config) == run_tenant_cell(config)


class TestExecutionModesUnderChaos:
    @given(shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**12),
           strict=st.booleans())
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_sharded_cells_bitwise_equal_under_chaos(self, shocks, seed,
                                                     strict):
        config = chaos_config("econ-cheap", shocks, seed, strict)
        plain = run_tenant_cell(config)
        sharded, = run_tenant_experiment([config], shards=2)
        assert sharded == plain

    @given(shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_partitioned_adaptive_cells_conserve_under_chaos(self, shocks,
                                                             seed):
        from repro.distcache import run_partitioned_cell

        config = chaos_config("econ-cheap", shocks, seed, strict=False)
        report = run_partitioned_cell(config, partitions=2,
                                      compare_baseline=False,
                                      placement="adaptive",
                                      handoff_threshold=0.0)
        assert report.barriers_verified > 0
        for checkpoint in report.checkpoints:
            assert checkpoint.query_payments == checkpoint.outcome_charges

    @given(shocks=shock_sequences,
           seed=st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_single_partition_bitwise_equals_plain_under_chaos(self, shocks,
                                                               seed):
        from repro.distcache import run_partitioned_cell

        config = chaos_config("econ-cheap", shocks, seed, strict=False)
        plain = run_tenant_cell(config)
        report = run_partitioned_cell(config, partitions=1,
                                      compare_baseline=False)
        assert report.cell.summary == plain.summary
        assert report.cell.tenants == plain.tenants
        assert report.cell.wallet_credit == plain.wallet_credit
