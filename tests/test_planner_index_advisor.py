"""Unit tests for the candidate-index advisor."""

import pytest

from repro.catalog.tpch import build_tpch_schema
from repro.errors import PlanningError
from repro.planner.index_advisor import IndexAdvisor
from repro.workload.templates import paper_templates


class TestCandidates:
    def test_candidates_are_deterministic(self, schema):
        first = IndexAdvisor(schema).candidates()
        second = IndexAdvisor(schema).candidates()
        assert [index.key for index in first] == [index.key for index in second]

    def test_candidate_pool_is_bounded(self, schema):
        advisor = IndexAdvisor(schema, pool_size=5)
        assert len(advisor.candidates()) <= 5

    def test_no_duplicate_candidates(self, schema):
        keys = [index.key for index in IndexAdvisor(schema).candidates()]
        assert len(keys) == len(set(keys))

    def test_every_predicated_column_gets_a_single_column_index(self, schema):
        candidates = IndexAdvisor(schema).candidates()
        keys = {index.key for index in candidates}
        for template in paper_templates():
            for column in template.predicate_columns:
                assert f"index:{template.table_name}({column})" in keys

    def test_composite_candidates_exist(self, schema):
        candidates = IndexAdvisor(schema).candidates()
        assert any(len(index.column_names) > 1 for index in candidates)

    def test_candidates_reference_real_columns(self, schema):
        for index in IndexAdvisor(schema).candidates():
            table = schema.table(index.table_name)
            for column in index.column_names:
                assert table.has_column(column)

    def test_rejects_bad_pool_size(self, schema):
        with pytest.raises(PlanningError):
            IndexAdvisor(schema, pool_size=0)


class TestSchemaRegistration:
    def test_register_with_schema_adds_definitions(self):
        schema = build_tpch_schema()
        advisor = IndexAdvisor(schema)
        candidates = advisor.register_with_schema()
        assert len(schema.index_names) == len(candidates)

    def test_registration_is_idempotent(self):
        schema = build_tpch_schema()
        advisor = IndexAdvisor(schema)
        advisor.register_with_schema()
        advisor.register_with_schema()
        assert len(schema.index_names) == len(advisor.candidates())
