"""Metrics timeseries: per-epoch samples of the run's hot counters.

Where :mod:`repro.obs.trace` records *everything that happened* (spans,
events, cumulative counters), a :class:`MetricsTimeseries` records *how
the hot metrics evolved over simulated time*: at every settlement barrier
a sampler snapshots the counter deltas since the previous barrier plus a
handful of gauges read off the live components (provider credit, wallet
credit flow, cache bytes, remote surcharge dollars), producing one
``sample`` record per ``(source, epoch)``.

The collector honours the same **zero-perturbation contract** as the
trace recorder (see ``docs/observability.md``): it duck-types the
recorder surface (``count`` / ``event`` / ``span``), so the engine,
cache, and batch scheduler feed it through the existing
``attach_trace`` hook behind one attribute check; samplers are read-only
kernel observers that never touch RNG state or account arithmetic; and
per-shard / per-partition collectors are plain picklable data absorbed
at barriers exactly like :class:`~repro.obs.trace.TraceRecorder`.

When both ``--trace`` and ``--metrics`` are requested, the two sinks are
fanned out through a :class:`RecorderTee` (components still hold a
single attribute) and unwrapped again with :func:`trace_part` /
:func:`metrics_part` at absorb time.

Emission is deterministic: :meth:`MetricsTimeseries.jsonl_lines` sorts
samples by ``(time_s, source, epoch)`` and serializes with sorted keys,
so the same run always produces the same bytes.

Example:
    >>> metrics = MetricsTimeseries(source="demo")
    >>> metrics.count("engine:queries", 4)
    >>> metrics.count("engine:cache_hits", 3)
    >>> metrics.sample(time_s=60.0, provider_credit=12.5)
    >>> [record["hit_rate"] for record in metrics.samples]
    [0.75]
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Optional, Tuple

from repro.simulator.events import MaintenanceSettlementEvent, QueryArrivalEvent
from repro.obs.trace import TraceRecorder, kernel_observer_pair

#: Bumped whenever the metrics JSONL record shape changes incompatibly.
METRICS_SCHEMA_VERSION = 1

#: One stored sample: ``(time_s, epoch, source, payload)``.
MetricsSample = Tuple[float, int, str, Dict[str, object]]


class MetricsTimeseries:
    """Per-epoch counter deltas and gauges, sampled at settlement barriers.

    Duck-types the :class:`~repro.obs.trace.TraceRecorder` surface
    (``count``/``event``/``span``) so it can sit behind the existing
    ``attach_trace`` attach points — but unlike the trace recorder it
    keeps no per-event record list: events are folded straight into
    counters, so memory is bounded by the counter-name and sample
    cardinality, not the query count.

    Args:
        source: label stamped on every sample (``"run"`` for the main
            path, ``"shard3"`` / ``"partition1"`` for per-worker
            collectors merged later).
    """

    def __init__(self, source: str = "run") -> None:
        self.source = source
        self._counters: Dict[str, Dict[str, int]] = {}
        self._samples: List[MetricsSample] = []
        # Per-source snapshot of the counters at the last sample, and the
        # per-source epoch cursor (epochs are 1-based like the settlement
        # barriers they mirror).
        self._marks: Dict[str, Dict[str, int]] = {}
        self._epochs: Dict[str, int] = {}

    # -- recorder surface (fed through attach_trace) -----------------------

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the named counter of this collector's source."""
        bucket = self._counters.setdefault(self.source, {})
        bucket[name] = bucket.get(name, 0) + n

    def event(self, kind: str, time_s: float, **fields: object) -> None:
        """Fold one event into counters (no per-event storage).

        Batch-window events additionally feed the occupancy counters so
        :meth:`sample` can report per-epoch batch-window occupancy.
        """
        self.count(f"event:{kind}")
        if kind == "batch_window":
            size = fields.get("size")
            if isinstance(size, int):
                self.count("batch:windows")
                self.count("batch:window_queries", size)

    def span(self, kind: str, start_s: float, end_s: float,
             **fields: object) -> None:
        """Spans fold exactly like events (timestamped at their end)."""
        self.event(kind, time_s=end_s, **fields)

    # -- sampling ----------------------------------------------------------

    def sample(self, time_s: float, epoch: Optional[int] = None,
               final: bool = False, **gauges: object) -> None:
        """Record one per-epoch sample for this collector's source.

        The sample carries the *delta* of every counter that moved since
        the previous sample (cumulative values reconstruct by summing),
        derived rates (``hit_rate``, ``batch_occupancy``) computed from
        those deltas, and whatever ``gauges`` the sampler read off the
        live components.

        Args:
            time_s: simulated time of the settlement barrier.
            epoch: 1-based barrier index; auto-increments when omitted.
            final: marks the trailing barrier that closes the run.
            **gauges: point-in-time values (credit, bytes, surcharge
                dollars, ...) observed at the barrier.
        """
        bucket = self._counters.get(self.source, {})
        mark = self._marks.get(self.source, {})
        deltas = {name: value - mark.get(name, 0)
                  for name, value in bucket.items()
                  if value != mark.get(name, 0)}
        self._marks[self.source] = dict(bucket)
        if epoch is None:
            epoch = self._epochs.get(self.source, 0) + 1
        self._epochs[self.source] = epoch

        payload: Dict[str, object] = {"final": final, "counters": deltas}
        queries = deltas.get("engine:queries", 0)
        if queries:
            payload["hit_rate"] = (
                deltas.get("engine:cache_hits", 0) / queries)
        windows = deltas.get("batch:windows", 0)
        if windows:
            payload["batch_occupancy"] = (
                deltas.get("batch:window_queries", 0) / windows)
        payload.update(gauges)
        self._samples.append((time_s, epoch, self.source, payload))

    # -- introspection -----------------------------------------------------

    @property
    def samples(self) -> List[Dict[str, object]]:
        """Every sample as a flat dict, in sorted emission order."""
        ordered = sorted(self._samples,
                         key=lambda item: (item[0], item[2], item[1]))
        return [dict(payload, time_s=time_s, epoch=epoch, source=source)
                for time_s, epoch, source, payload in ordered]

    @property
    def counters(self) -> Dict[str, Dict[str, int]]:
        """Cumulative counters per source (a copy)."""
        return {source: dict(bucket)
                for source, bucket in self._counters.items()}

    def counter(self, name: str, source: Optional[str] = None) -> int:
        """One cumulative counter (defaults to this collector's source)."""
        bucket = self._counters.get(source or self.source, {})
        return bucket.get(name, 0)

    def __len__(self) -> int:
        return len(self._samples)

    # -- merging -----------------------------------------------------------

    def absorb(self, other: "MetricsTimeseries") -> None:
        """Fold another collector's samples and counters into this one.

        Samples keep their original source tags, so a merged collector
        still emits deterministically; counters merge per source (summed
        only within the same source, mirroring the trace recorder's
        no-double-counting rule for replicated shard replays).
        """
        self._samples.extend(other._samples)
        for source, bucket in other._counters.items():
            target = self._counters.setdefault(source, {})
            for name, value in bucket.items():
                target[name] = target.get(name, 0) + value
        for source, mark in other._marks.items():
            self._marks.setdefault(source, dict(mark))
        for source, epoch in other._epochs.items():
            self._epochs[source] = max(self._epochs.get(source, 0), epoch)

    # -- emission ----------------------------------------------------------

    def jsonl_lines(self) -> List[str]:
        """The timeseries as sorted JSONL lines (deterministic bytes).

        Line 1 is a header carrying the schema version; then one
        ``sample`` line per ``(time_s, source, epoch)`` in sorted order;
        then one cumulative ``counter`` line per ``(source, name)`` pair.
        """
        lines = [json.dumps(
            {"kind": "metrics_header",
             "schema_version": METRICS_SCHEMA_VERSION,
             "samples": len(self._samples),
             "sources": sorted({item[2] for item in self._samples}
                               | set(self._counters))},
            sort_keys=True)]
        for record in self.samples:
            lines.append(json.dumps(dict(record, kind="sample"),
                                    sort_keys=True))
        for source in sorted(self._counters):
            bucket = self._counters[source]
            for name in sorted(bucket):
                lines.append(json.dumps(
                    {"kind": "counter", "source": source, "name": name,
                     "value": bucket[name]},
                    sort_keys=True))
        return lines

    def write(self, path: str) -> None:
        """Write the timeseries as JSONL to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            for line in self.jsonl_lines():
                handle.write(line + "\n")


def peak_rss_bytes() -> Optional[int]:
    """This process's peak resident set size in bytes, or ``None``.

    Reads ``getrusage(RUSAGE_SELF).ru_maxrss`` — the high-water mark the
    kernel tracked for the whole process lifetime, which is exactly the
    quantity the memory-budget CI lane asserts on. Linux reports it in
    KiB, macOS in bytes; platforms without ``resource`` report nothing.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if usage <= 0:  # pragma: no cover - defensive
        return None
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(usage)
    return int(usage) * 1024


class MetricsSampler:
    """Read-only settlement observer that drives :meth:`sample`.

    Registered for :class:`~repro.simulator.events.MaintenanceSettlementEvent`
    through the standard ``run(observers=...)`` hook (observers run
    *after* the built-in handlers, so it snapshots post-settlement
    state). At each barrier it reads gauges off the scheme's live
    components — all plain attribute/property reads; nothing is mutated
    and no RNG is touched, which is what keeps metrics-enabled runs
    byte-identical to disabled ones.

    Args:
        metrics: the collector to drive.
        scheme: the scheme whose components the gauges read.
        rss: also sample :func:`peak_rss_bytes` at every barrier.
            Off by default because the OS high-water mark is **not**
            deterministic across runs — only the streamed drivers (whose
            memory bound it audits) enable it, keeping eager metrics
            emission bitwise reproducible.
    """

    def __init__(self, metrics: MetricsTimeseries, scheme,
                 rss: bool = False) -> None:
        self._metrics = metrics
        self._engine = getattr(scheme, "engine", None)
        self._cache = scheme.cache
        self._rss = rss

    def __call__(self, event: MaintenanceSettlementEvent, kernel) -> None:
        gauges: Dict[str, object] = {
            "queries_dispatched": kernel.dispatch_count(QueryArrivalEvent),
            "cache_entries": len(self._cache.entries),
            "disk_used_bytes": self._cache.disk_used_bytes,
        }
        engine = self._engine
        if engine is not None:
            from repro.economy.account import CloudAccount

            gauges["provider_credit"] = engine.account.credit
            gauges["query_payments"] = engine.account.totals_by_category().get(
                CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0)
            registry = engine.tenants
            if registry is not None:
                gauges["wallet_credit"] = registry.total_credit()
                gauges["wallet_charged"] = registry.total_charged()
                live = getattr(registry, "live_tenant_count", None)
                if live is not None:
                    gauges["live_tenants"] = live()
                materialized = getattr(
                    registry, "materialized_tenant_count", None)
                if materialized is not None:
                    gauges["materialized_tenants"] = materialized()
        if self._rss:
            rss = peak_rss_bytes()
            if rss is not None:
                gauges["peak_rss_bytes"] = rss
        self._metrics.sample(time_s=event.time_s, final=event.final, **gauges)


def metrics_observer_pair(metrics: MetricsTimeseries, scheme,
                          rss: bool = False):
    """The ``(event type, handler)`` pair ``run(observers=...)`` expects."""
    return (MaintenanceSettlementEvent, MetricsSampler(metrics, scheme,
                                                       rss=rss))


# -- composing trace + metrics behind one attach point ----------------------


class RecorderTee:
    """Fans the recorder surface out to several sinks.

    Components hold a single observability attribute (``self._trace``);
    when a run wants both a trace and a metrics timeseries, the tee lets
    them share the attach point. Plain picklable data, so it rides the
    same process-pool round-trips its sinks do.
    """

    def __init__(self, *sinks) -> None:
        self.sinks = tuple(sink for sink in sinks if sink is not None)

    def count(self, name: str, n: int = 1) -> None:
        for sink in self.sinks:
            sink.count(name, n)

    def event(self, kind: str, time_s: float, **fields: object) -> None:
        for sink in self.sinks:
            sink.event(kind, time_s=time_s, **fields)

    def span(self, kind: str, start_s: float, end_s: float,
             **fields: object) -> None:
        for sink in self.sinks:
            sink.span(kind, start_s=start_s, end_s=end_s, **fields)


def combined_recorder(trace: Optional[TraceRecorder],
                      metrics: Optional[MetricsTimeseries]):
    """The single sink to attach for a (trace, metrics) pair.

    Returns whichever one is present, a :class:`RecorderTee` when both
    are, or ``None`` when neither is (nothing to attach).
    """
    if trace is None:
        return metrics
    if metrics is None:
        return trace
    return RecorderTee(trace, metrics)


def trace_part(recorder) -> Optional[TraceRecorder]:
    """The :class:`TraceRecorder` inside an attached sink, if any."""
    if isinstance(recorder, RecorderTee):
        for sink in recorder.sinks:
            if isinstance(sink, TraceRecorder):
                return sink
        return None
    return recorder if isinstance(recorder, TraceRecorder) else None


def metrics_part(recorder) -> Optional[MetricsTimeseries]:
    """The :class:`MetricsTimeseries` inside an attached sink, if any."""
    if isinstance(recorder, RecorderTee):
        for sink in recorder.sinks:
            if isinstance(sink, MetricsTimeseries):
                return sink
        return None
    return recorder if isinstance(recorder, MetricsTimeseries) else None


def attach_observability(scheme, trace: Optional[TraceRecorder] = None,
                         metrics: Optional[MetricsTimeseries] = None,
                         rss: bool = False) -> list:
    """Attach recorders to a scheme; return the kernel observers to run.

    The one helper every execution path (plain cells, scenario runs,
    shard workers, shocked cells) uses, so trace and metrics attach
    identically everywhere: the combined sink lands on the engine (which
    propagates to cache and batch scheduler) or, for the economy-less
    bypass baseline, directly on the cache; a single kernel dispatch
    observer feeds the sink (trace keeps per-event records, metrics folds
    them to counters); the metrics collector additionally gets the
    settlement sampler, registered after the kernel observer so each
    sample's deltas include its own barrier's dispatch.
    """
    observers: list = []
    sink = combined_recorder(trace, metrics)
    if sink is None:
        return observers
    engine = getattr(scheme, "engine", None)
    if engine is not None:
        engine.attach_trace(sink)
    else:
        scheme.cache.attach_trace(sink)
    observers.append(kernel_observer_pair(sink))
    if metrics is not None:
        observers.append(metrics_observer_pair(metrics, scheme, rss=rss))
    return observers
