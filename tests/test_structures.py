"""Unit tests for the three cache-structure types."""

import pytest

from repro.errors import ConfigurationError
from repro.structures.base import StructureKind
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode
from repro.catalog.schema import Index


class TestCpuNode:
    def test_kind_and_key(self):
        node = CpuNode(2)
        assert node.kind is StructureKind.CPU_NODE
        assert node.key == "cpu_node:2"
        assert node.ordinal == 2

    def test_occupies_no_disk(self, schema):
        assert CpuNode(1).size_bytes(schema) == 0

    def test_rejects_non_positive_ordinal(self):
        with pytest.raises(ConfigurationError):
            CpuNode(0)


class TestCachedColumn:
    def test_kind_key_and_names(self):
        column = CachedColumn("lineitem", "l_shipdate")
        assert column.kind is StructureKind.COLUMN
        assert column.key == "column:lineitem.l_shipdate"
        assert column.qualified_name == "lineitem.l_shipdate"

    def test_size_matches_schema(self, schema):
        column = CachedColumn("lineitem", "l_shipdate")
        expected = schema.table("lineitem").column_size_bytes("l_shipdate")
        assert column.size_bytes(schema) == expected

    def test_size_validates_names(self, schema):
        with pytest.raises(Exception):
            CachedColumn("lineitem", "no_such").size_bytes(schema)


class TestCachedIndex:
    def test_kind_and_key(self):
        index = CachedIndex("lineitem", ("l_shipdate", "l_discount"))
        assert index.kind is StructureKind.INDEX
        assert index.key == "index:lineitem(l_shipdate,l_discount)"
        assert index.leading_column == "l_shipdate"

    def test_size_includes_pointer(self, schema):
        index = CachedIndex("lineitem", ("l_shipdate",), pointer_bytes=8)
        rows = schema.table("lineitem").row_count
        assert index.size_bytes(schema) == (4 + 8) * rows

    def test_required_columns(self):
        index = CachedIndex("lineitem", ("l_shipdate", "l_discount"))
        keys = [column.key for column in index.required_columns()]
        assert keys == ["column:lineitem.l_shipdate", "column:lineitem.l_discount"]

    def test_serves_predicate_on_leading_column_only(self):
        index = CachedIndex("lineitem", ("l_shipdate", "l_discount"))
        assert index.serves_predicate_on("lineitem", "l_shipdate")
        assert not index.serves_predicate_on("lineitem", "l_discount")
        assert not index.serves_predicate_on("orders", "l_shipdate")

    def test_covers_columns(self):
        index = CachedIndex("lineitem", ("l_shipdate", "l_discount"))
        assert index.covers_columns("lineitem", ["l_discount"])
        assert not index.covers_columns("lineitem", ["l_partkey"])
        assert not index.covers_columns("orders", ["l_discount"])

    def test_from_definition(self, schema):
        definition = Index("idx", "orders", ("o_orderdate",))
        index = CachedIndex.from_definition(definition)
        assert index.table_name == "orders"
        assert index.column_names == ("o_orderdate",)

    def test_rejects_empty_or_duplicate_keys(self):
        with pytest.raises(ConfigurationError):
            CachedIndex("lineitem", ())
        with pytest.raises(ConfigurationError):
            CachedIndex("lineitem", ("a", "a"))


class TestValueSemantics:
    def test_equality_is_by_key(self):
        assert CachedColumn("lineitem", "l_shipdate") == CachedColumn("lineitem", "l_shipdate")
        assert CachedColumn("lineitem", "l_shipdate") != CachedColumn("lineitem", "l_discount")
        assert CpuNode(1) == CpuNode(1)
        assert CpuNode(1) != CpuNode(2)

    def test_hashable_and_usable_in_sets(self):
        structures = {CachedColumn("lineitem", "l_shipdate"),
                      CachedColumn("lineitem", "l_shipdate"),
                      CpuNode(1)}
        assert len(structures) == 2

    def test_not_equal_to_other_types(self):
        assert CachedColumn("lineitem", "l_shipdate") != "column:lineitem.l_shipdate"

    def test_repr_contains_key(self):
        assert "cpu_node:3" in repr(CpuNode(3))
