"""Report pipeline tests: schema validation, fail-soft ingest, artifacts."""

import json
import os

import pytest

from repro.obs.report import (
    BENCH_NAMES,
    REPORT_SCHEMA_VERSION,
    ingest_bench_files,
    render_report,
    write_report_artifacts,
)
from repro.obs.schema import validate_bench, validate_report

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The five checked-in perf-history files (the backfill satellite).
CHECKED_IN = [os.path.join(REPO_ROOT, name) for _, name in BENCH_NAMES]


def _require_checked_in():
    missing = [path for path in CHECKED_IN if not os.path.exists(path)]
    if missing:
        pytest.skip(f"checked-in bench files not present: {missing}")


class TestValidateBench:
    def test_all_checked_in_bench_files_are_schema_valid(self):
        _require_checked_in()
        for path in CHECKED_IN:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            assert validate_bench(document) == [], path

    def test_missing_required_field(self):
        problems = validate_bench({"benchmark": "planner", "python": "3.11"})
        assert any("seed" in problem for problem in problems)

    def test_unknown_kind(self):
        document = {"benchmark": "nope", "python": "x", "seed": 0,
                    "runs": [{}]}
        assert any("unknown benchmark kind" in problem
                   for problem in validate_bench(document))

    def test_kind_mismatch_against_file_name(self):
        document = {"benchmark": "planner", "python": "x", "seed": 0,
                    "runs": [{}], "scheme": "s", "query_count": 1,
                    "repetitions": 1, "outcomes_identical": True,
                    "speedup": {}}
        assert validate_bench(document, expected_kind="planner") == []
        assert validate_bench(document, expected_kind="shocks")

    def test_bool_int_confusion_is_caught(self):
        document = {"benchmark": "planner", "python": "x", "seed": 0,
                    "runs": [{}], "scheme": "s", "query_count": 1,
                    "repetitions": 1, "outcomes_identical": 1,
                    "speedup": {}}
        assert any("outcomes_identical" in problem
                   for problem in validate_bench(document))

    def test_non_object_document(self):
        assert validate_bench([1, 2, 3])


class TestIngest:
    def test_always_covers_all_five_kinds(self, tmp_path):
        ingests = ingest_bench_files([])
        assert [ingest.kind for ingest in ingests] == [
            kind for kind, _ in BENCH_NAMES]
        assert all(ingest.status == "missing" for ingest in ingests)

    def test_legacy_file_degrades_to_warning(self, tmp_path):
        legacy = tmp_path / "BENCH_planner.json"
        legacy.write_text(json.dumps({"benchmark": "planner"}))
        ingests = ingest_bench_files([str(legacy)])
        planner = next(i for i in ingests if i.kind == "planner")
        assert planner.found and not planner.valid
        assert planner.status == "invalid"

    def test_unreadable_file_degrades_to_missing(self, tmp_path):
        ingests = ingest_bench_files([str(tmp_path / "BENCH_shocks.json")])
        shocks = next(i for i in ingests if i.kind == "shocks")
        assert shocks.status == "missing"


class TestRenderReport:
    def test_report_is_schema_valid_over_checked_in_files(self):
        _require_checked_in()
        report, markdown = render_report(CHECKED_IN)
        assert validate_report(report) == []
        assert report["schema_version"] == REPORT_SCHEMA_VERSION
        assert report["warnings"] == []
        assert sorted(report["benches"]) == sorted(
            kind for kind, _ in BENCH_NAMES)
        # The backfill summary table renders one row per benchmark.
        for kind, name in BENCH_NAMES:
            assert f"| {kind} | {name} | ok |" in markdown

    def test_missing_files_render_with_warnings(self):
        report, markdown = render_report([])
        assert validate_report(report) == []
        assert len(report["warnings"]) == len(BENCH_NAMES)
        assert "missing" in markdown

    def test_trace_summaries_fold_in(self, tmp_path):
        from repro.obs.trace import TraceRecorder

        recorder = TraceRecorder()
        recorder.event("e", time_s=1.0)
        recorder.count("cache:admit")
        trace_path = tmp_path / "t.jsonl"
        recorder.write(str(trace_path))
        report, markdown = render_report([], [str(trace_path)])
        (trace,) = report["traces"]
        assert trace["events"] == 1
        assert trace["counters"] == 1
        assert "## Traces" in markdown


class TestWriteArtifacts:
    def test_writes_three_artifacts(self, tmp_path):
        _require_checked_in()
        out = tmp_path / "artifacts"
        targets = write_report_artifacts(CHECKED_IN, str(out))
        assert sorted(targets) == ["json", "manifest", "markdown"]
        report = json.loads((out / "report.json").read_text())
        assert validate_report(report) == []
        manifest = json.loads((out / "report.manifest.json").read_text())
        assert manifest["command"] == "report"
        assert manifest["warnings"] == 0

    def test_refuses_overwrite_without_force(self, tmp_path):
        out = tmp_path / "artifacts"
        write_report_artifacts([], str(out))
        with pytest.raises(FileExistsError):
            write_report_artifacts([], str(out))
        write_report_artifacts([], str(out), force=True)
