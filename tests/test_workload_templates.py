"""Unit tests for the seven paper templates."""

import pytest

from repro.errors import WorkloadError
from repro.workload.query import PredicateKind
from repro.workload.templates import paper_templates, template_by_name, templates_by_name


class TestPaperTemplates:
    def test_exactly_seven_templates(self):
        assert len(paper_templates()) == 7

    def test_names_are_unique(self):
        names = [template.name for template in paper_templates()]
        assert len(set(names)) == len(names)

    def test_all_templates_target_lineitem(self):
        assert all(t.table_name == "lineitem" for t in paper_templates())

    def test_all_templates_validate_against_schema(self, schema):
        for template in paper_templates():
            template.validate_against(schema)

    def test_every_template_has_predicates(self):
        assert all(template.predicates for template in paper_templates())

    def test_result_heavy_templates_exist(self, estimator):
        """Section VI: the workload should contain result-heavy queries."""
        sizes = []
        for template in paper_templates():
            query = template.instantiate(0, 0.0)
            sizes.append(query.result_bytes(estimator))
        assert max(sizes) > 10_000_000  # at least one template ships tens of MB
        assert min(sizes) < 1_000_000   # and some are small aggregates

    def test_every_template_is_mostly_parallelisable(self):
        """Section VI: the queries should be parallelisable."""
        assert all(t.parallel_fraction >= 0.85 for t in paper_templates())

    def test_selective_templates_exist_for_index_benefit(self, estimator):
        selectivities = [
            template.instantiate(0, 0.0).fact_selectivity(estimator)
            for template in paper_templates()
        ]
        assert min(selectivities) < 0.05

    def test_predicate_kinds_cover_equality_and_range(self):
        kinds = {predicate.kind
                 for template in paper_templates()
                 for predicate in template.predicates}
        assert kinds == {PredicateKind.EQUALITY, PredicateKind.RANGE}


class TestLookups:
    def test_template_by_name(self):
        template = template_by_name("q6_forecast_revenue")
        assert template.name == "q6_forecast_revenue"

    def test_template_by_name_unknown(self):
        with pytest.raises(WorkloadError):
            template_by_name("q99_unknown")

    def test_templates_by_name_map(self):
        mapping = templates_by_name()
        assert set(mapping) == {t.name for t in paper_templates()}
