"""A tenant registry that *owns* only one shard of the population.

The sharded execution model (see ``docs/sharding.md``) replays the full
deterministic event stream in every worker but materialises mutable
per-tenant state — wallet ledgers, per-tenant regret trackers, lifecycle
flags — only for the tenants the worker's shard owns. That split is sound
because of an invariant the engine already upholds: simulation *decisions*
depend only on a tenant's static :class:`~repro.economy.tenancy.TenantProfile`
(budget multiplier, optional user model), never on the tenant's mutable
state. A wallet balance is pure accounting output; it cannot change which
plan wins a negotiation.

:class:`ShardScopedRegistry` therefore holds every profile (static, small)
but answers the engine's hooks in two modes:

* **owned tenant** — exactly the base :class:`TenantRegistry` behaviour:
  state is materialised, charges hit the wallet, regret is recorded.
* **foreign tenant** — the *decision-relevant* part is replicated bitwise
  (the budget function is derived from the same profile the owning shard
  uses), while the accounting part is skipped; the amount that would have
  been charged is only tallied into :attr:`foreign_charged` for the
  coordinator's cross-shard conservation audit.

Materialising a foreign tenant's state is a bug by definition, so
:meth:`ensure` raises for foreign ids rather than silently registering.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.economy.budget import BudgetFunction
from repro.economy.tenancy import (GenerativeTenantRegistry, TenantProfile,
                                   TenantRegistry, TenantState)
from repro.economy.user_model import UserModel
from repro.errors import EconomyError, ShardingError
from repro.sharding.partition import TenantPartitioner
from repro.workload.population import GenerativeProfileSource, tenant_id_for
from repro.workload.query import Query


class ShardScopedRegistry(TenantRegistry):
    """A :class:`TenantRegistry` scoped to one shard of the population.

    Args:
        profiles: the **complete** population, in registration order (the
            same order the unsharded run registers them in); every shard
            receives all profiles but materialises only its own subset.
        partitioner: the tenant → shard mapping shared by all workers.
        shard_index: which shard this registry embodies.
    """

    def __init__(self, profiles: Sequence[TenantProfile],
                 partitioner: TenantPartitioner, shard_index: int) -> None:
        super().__init__()
        partitioner.validate_index(shard_index)
        self._partitioner = partitioner
        self._shard_index = shard_index
        self._all_profiles = {}
        self._profile_index = {}
        self._foreign_charged = 0.0
        self._foreign_charge_count = 0
        # Ad-hoc ids (outside the initial population) are indexed by first
        # touch: every shard observes the same replicated call stream, so
        # the counter advances identically everywhere and the merge can
        # reproduce the unsharded registry's registration order exactly.
        self._adhoc_index = {}
        owned = []
        for index, profile in enumerate(profiles):
            if profile.tenant_id in self._all_profiles:
                raise ShardingError(
                    f"duplicate tenant id {profile.tenant_id!r} in population"
                )
            self._all_profiles[profile.tenant_id] = profile
            self._profile_index[profile.tenant_id] = index
            if partitioner.owns(shard_index, profile.tenant_id):
                owned.append(profile)
        # Ownership is consulted several times per query on the replay hot
        # path; the population's split is frozen here so the common case is
        # one set lookup instead of a fresh content hash.
        self._owned_ids = frozenset(p.tenant_id for p in owned)
        for profile in owned:
            super().register(profile)

    # -- introspection ---------------------------------------------------------

    @property
    def partitioner(self) -> TenantPartitioner:
        """The shared tenant → shard mapping."""
        return self._partitioner

    @property
    def shard_index(self) -> int:
        """Which shard this registry owns."""
        return self._shard_index

    @property
    def population_size(self) -> int:
        """Size of the full population (owned + foreign profiles)."""
        return len(self._all_profiles)

    @property
    def foreign_charged(self) -> float:
        """Dollars of charges observed for tenants other shards own.

        The owning shard books each of these against the actual wallet;
        this tally only exists so the coordinator can audit that every
        charge was owned by exactly one shard.
        """
        return self._foreign_charged

    @property
    def foreign_charge_count(self) -> int:
        """How many non-zero foreign charges were observed."""
        return self._foreign_charge_count

    def owns(self, tenant_id: str) -> bool:
        """Whether this shard owns ``tenant_id``."""
        if tenant_id in self._owned_ids:
            return True
        if tenant_id in self._all_profiles:
            return False
        return self._partitioner.owns(self._shard_index, tenant_id)

    def _note_touch(self, tenant_id: str) -> None:
        """Record first contact with an id outside the initial population.

        Called on every hook a query stream can reach, owned or foreign,
        so the counter is replicated bitwise across shards; the resulting
        index orders ad-hoc wallets exactly like the unsharded registry's
        registration order.
        """
        if tenant_id in self._all_profiles or tenant_id in self._adhoc_index:
            return
        self._adhoc_index[tenant_id] = len(self._adhoc_index)

    # -- scoping guards --------------------------------------------------------

    def register(self, profile: TenantProfile) -> TenantState:
        """Register an ad-hoc owned tenant; foreign profiles are rejected."""
        self._note_touch(profile.tenant_id)
        if not self.owns(profile.tenant_id):
            raise ShardingError(
                f"tenant {profile.tenant_id!r} belongs to shard "
                f"{self._partitioner.shard_of(profile.tenant_id)}, not "
                f"{self._shard_index}; foreign state must never materialise"
            )
        return super().register(profile)

    def ensure(self, tenant_id: str) -> TenantState:
        """The owned tenant's state; raises for tenants of other shards.

        Owned ids outside the initial population (e.g. the default tenant
        in ad-hoc runs) still auto-register a neutral profile, exactly as
        the base registry would.
        """
        self._note_touch(tenant_id)
        if not self.owns(tenant_id):
            raise ShardingError(
                f"tenant {tenant_id!r} belongs to shard "
                f"{self._partitioner.shard_of(tenant_id)}, not "
                f"{self._shard_index}; foreign state must never materialise"
            )
        return super().ensure(tenant_id)

    # -- lifecycle (foreign ids ignored) ---------------------------------------

    def activate(self, tenant_id: str, now: float = 0.0) -> Optional[TenantState]:
        """Activate an owned tenant; a foreign arrival is a no-op (``None``)."""
        self._note_touch(tenant_id)
        if not self.owns(tenant_id):
            return None
        return super().activate(tenant_id, now=now)

    def deactivate(self, tenant_id: str, now: float = 0.0) -> Optional[TenantState]:
        """Deactivate an owned tenant; a foreign churn is a no-op (``None``)."""
        if not self.owns(tenant_id):
            return None
        return super().deactivate(tenant_id, now=now)

    # -- economy hooks ---------------------------------------------------------

    def budget_for(self, query: Query, backend_price: float,
                   backend_response_time_s: float,
                   default_model: UserModel) -> BudgetFunction:
        """The issuing tenant's budget, identical on every shard.

        For owned tenants this is the base implementation. For foreign
        tenants the same curve is derived from the static profile without
        touching any mutable state — bitwise the budget the owning shard
        computes, which is what keeps all replicas on one trajectory.
        """
        self._note_touch(query.tenant_id)
        if self.owns(query.tenant_id):
            return super().budget_for(query, backend_price,
                                      backend_response_time_s, default_model)
        return self.derive_budget(
            self._all_profiles.get(query.tenant_id), query, backend_price,
            backend_response_time_s, default_model,
        )

    def charge(self, tenant_id: str, amount: float, now: float = 0.0,
               note: str = "") -> None:
        """Charge an owned wallet; tally (don't book) foreign charges."""
        if amount < 0:
            raise EconomyError(f"charge must be non-negative, got {amount}")
        if amount == 0:
            # Mirrors the base method, which returns before ensure(): a
            # zero charge must not reserve an ad-hoc registration slot.
            return
        self._note_touch(tenant_id)
        if self.owns(tenant_id):
            super().charge(tenant_id, amount, now=now, note=note)
            return
        self._foreign_charged += amount
        self._foreign_charge_count += 1

    def record_regret(self, tenant_id: str, structures, amount: float,
                      divide: bool = False) -> None:
        """Record regret for owned tenants only (others own their mirror)."""
        self._note_touch(tenant_id)
        if not self.owns(tenant_id):
            return
        super().record_regret(tenant_id, structures, amount, divide=divide)

    # -- merge support ---------------------------------------------------------

    def owned_wallets(self) -> Tuple[Tuple[int, str, float], ...]:
        """``(global registration index, tenant_id, credit)`` per owned tenant.

        The index is the tenant's position in the full population, which is
        the order the unsharded registry would report wallets in; carrying
        it out of the worker lets the merge rebuild that exact order (id
        strings alone would mis-sort once the population outgrows the
        zero-padded id width). Ad-hoc tenants sort after the population in
        global first-touch order — which every shard observes identically,
        so the indices never collide across shards.
        """
        entries = []
        base = len(self._all_profiles)
        for state in self.states():
            index = self._profile_index.get(state.tenant_id)
            if index is None:
                index = base + self._adhoc_index[state.tenant_id]
            entries.append((index, state.tenant_id, state.account.credit))
        return tuple(entries)

    def owned_initial_credit(self) -> float:
        """Seed credit of every owned wallet (the conserved input)."""
        return sum(state.profile.initial_credit for state in self.states())

    def owned_seed_credit(self) -> float:
        """Owned seed credit *minted so far* — the per-barrier conserved input.

        With eager registration the whole population is seeded at
        construction, so this is constant over the run (and equal to
        :meth:`owned_initial_credit`); the generative subclass reports the
        growing mint-so-far total instead, and settlement checkpoints
        record whichever value was current at the barrier.
        """
        return self.owned_initial_credit()

    # -- generative composition ------------------------------------------------

    @classmethod
    def generative(cls, source: GenerativeProfileSource,
                   partitioner: TenantPartitioner,
                   shard_index: int) -> "GenerativeShardRegistry":
        """A shard registry that composes a :class:`GenerativeTenantRegistry`.

        No profile is materialised up front — not even the foreign ones the
        eager constructor replicates — so per-worker memory is bounded by
        the shard's concurrently live (and charged) tenants, never by the
        population (see :class:`GenerativeShardRegistry`).
        """
        return GenerativeShardRegistry(source, partitioner, shard_index)


class GenerativeShardRegistry(ShardScopedRegistry):
    """A shard-scoped registry over a *generative* population.

    The eager :class:`ShardScopedRegistry` receives the complete profile
    list and materialises its owned subset at construction — O(population)
    memory in every worker twice over (the ``_all_profiles`` replica plus
    the owned states). This subclass instead composes a
    :class:`~repro.economy.tenancy.GenerativeTenantRegistry` whose
    ownership predicate is the shared partitioner:

    * **owned tenants** mint bookkeeping at arrival, materialise at first
      query, and drop back to (at most) two floats at churn;
    * **foreign tenants** advance the shared mint high-water mark (so
      their profiles stay derivable for budget replication) but account
      nothing;
    * the **foreign-budget replication path** derives the static profile
      directly from ``(population seed, tenant index)`` — it no longer
      requires any pre-materialised profile table, which is the invariant
      that lets the whole worker run in bounded memory. Ids at or beyond
      the mint high-water mark derive a ``None`` profile (neutral budget),
      exactly as the eager path treats ids outside its profile table.

    Population-pattern ids (``t<NNNNN>``) are reserved for the generative
    scheme; ad-hoc ids keep the eager first-touch ordering machinery.
    """

    def __init__(self, source: GenerativeProfileSource,
                 partitioner: TenantPartitioner, shard_index: int) -> None:
        super().__init__((), partitioner, shard_index)
        self._inner = GenerativeTenantRegistry(
            source, owns=lambda index, tenant_id:
            partitioner.owns(shard_index, tenant_id),
        )

    # -- introspection ---------------------------------------------------------

    @property
    def inner(self) -> GenerativeTenantRegistry:
        """The composed generative registry holding the owned state."""
        return self._inner

    @property
    def source(self) -> GenerativeProfileSource:
        """The pure profile derivation shared by all shards."""
        return self._inner.source

    @property
    def population_size(self) -> int:
        """Population indices minted so far (owned + foreign)."""
        return self._inner.population_minted

    def owns(self, tenant_id: str) -> bool:
        """Whether this shard owns ``tenant_id`` (pure partitioner call)."""
        return self._partitioner.owns(self._shard_index, tenant_id)

    def _note_touch(self, tenant_id: str) -> None:
        # Population-pattern ids are reserved for the generative scheme and
        # ordered by their index; only genuinely ad-hoc ids need the
        # replicated first-touch counter.
        if (self._inner.source.index_of(tenant_id) is not None
                or tenant_id in self._adhoc_index):
            return
        self._adhoc_index[tenant_id] = len(self._adhoc_index)

    # -- scoping guards --------------------------------------------------------

    def register(self, profile: TenantProfile) -> TenantState:
        self._note_touch(profile.tenant_id)
        if not self.owns(profile.tenant_id):
            raise ShardingError(
                f"tenant {profile.tenant_id!r} belongs to shard "
                f"{self._partitioner.shard_of(profile.tenant_id)}, not "
                f"{self._shard_index}; foreign state must never materialise"
            )
        return self._inner.register(profile)

    def ensure(self, tenant_id: str) -> TenantState:
        self._note_touch(tenant_id)
        if not self.owns(tenant_id):
            raise ShardingError(
                f"tenant {tenant_id!r} belongs to shard "
                f"{self._partitioner.shard_of(tenant_id)}, not "
                f"{self._shard_index}; foreign state must never materialise"
            )
        return self._inner.ensure(tenant_id)

    # -- lifecycle -------------------------------------------------------------

    def activate(self, tenant_id: str, now: float = 0.0
                 ) -> Optional[TenantState]:
        self._note_touch(tenant_id)
        # The inner registry observes every arrival (advancing the shared
        # mint high-water mark) but accounts only owned tenants.
        return self._inner.activate(tenant_id, now=now)

    def deactivate(self, tenant_id: str, now: float = 0.0
                   ) -> Optional[TenantState]:
        return self._inner.deactivate(tenant_id, now=now)

    # -- economy hooks ---------------------------------------------------------

    def budget_for(self, query: Query, backend_price: float,
                   backend_response_time_s: float,
                   default_model: UserModel) -> BudgetFunction:
        """The issuing tenant's budget, identical on every shard.

        The foreign path is the load-bearing half: the budget is derived
        from the *generative* profile — a pure function of the population
        seed and the tenant's index — so replication needs no profile
        table. This is asserted by construction: the only inputs consulted
        are the source and the mint high-water mark, both replicated
        bitwise across shards by the shared event stream.
        """
        self._note_touch(query.tenant_id)
        if self.owns(query.tenant_id):
            return self._inner.budget_for(query, backend_price,
                                          backend_response_time_s,
                                          default_model)
        source = self._inner.source
        index = source.index_of(query.tenant_id)
        profile = None
        if index is not None and index < self._inner.population_minted:
            profile = source.profile_for(index)
        return TenantRegistry.derive_budget(
            profile, query, backend_price, backend_response_time_s,
            default_model,
        )

    def charge(self, tenant_id: str, amount: float, now: float = 0.0,
               note: str = "") -> None:
        if amount < 0:
            raise EconomyError(f"charge must be non-negative, got {amount}")
        if amount == 0:
            return
        self._note_touch(tenant_id)
        if self.owns(tenant_id):
            self._inner.charge(tenant_id, amount, now=now, note=note)
            return
        self._foreign_charged += amount
        self._foreign_charge_count += 1

    def record_regret(self, tenant_id: str, structures, amount: float,
                      divide: bool = False) -> None:
        self._note_touch(tenant_id)
        if not self.owns(tenant_id):
            return
        self._inner.record_regret(tenant_id, structures, amount,
                                  divide=divide)

    def reset_regret(self, key: str) -> None:
        self._inner.reset_regret(key)

    # -- lookups (delegated to the composed registry) --------------------------

    def state(self, tenant_id: str) -> TenantState:
        """The *materialised* state; raises if the tenant holds none.

        A generative registry intentionally cannot distinguish "never
        existed" from "exists but was never charged" here — use
        :meth:`credit_by_tenant` for population-wide balances.
        """
        return self._inner.state(tenant_id)

    def states(self) -> Tuple[TenantState, ...]:
        return self._inner.states()

    def tenant_ids(self) -> List[str]:
        return self._inner.tenant_ids()

    def active_ids(self) -> List[str]:
        return self._inner.active_ids()

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._inner

    def __len__(self) -> int:
        return len(self._inner)

    # -- aggregates ------------------------------------------------------------

    def total_credit(self) -> float:
        return self._inner.total_credit()

    def total_charged(self) -> float:
        return self._inner.total_charged()

    def credit_by_tenant(self) -> Dict[str, float]:
        return self._inner.credit_by_tenant()

    def live_tenant_count(self) -> int:
        return self._inner.live_tenant_count()

    def materialized_tenant_count(self) -> int:
        """Owned tenants currently holding a full state object."""
        return self._inner.materialized_tenant_count()

    @property
    def peak_materialized(self) -> int:
        """High-water mark of concurrently materialised owned states."""
        return self._inner.peak_materialized

    # -- merge support ---------------------------------------------------------

    def owned_wallets(self) -> Tuple[Tuple[int, str, float], ...]:
        """``(global index, tenant_id, credit)`` per owned tenant.

        Population members carry their mint index — identical to the eager
        registry's registration index, so merged wallet order is unchanged;
        ad-hoc tenants sort after the population by the replicated
        first-touch counter.
        """
        base = self._inner.population_minted
        entries = []
        for tenant_id, credit in self._inner.credit_by_tenant().items():
            index = self._inner.source.index_of(tenant_id)
            if index is None:
                index = base + self._adhoc_index[tenant_id]
            entries.append((index, tenant_id, credit))
        return tuple(entries)

    def owned_initial_credit(self) -> float:
        """Seed credit of every owned tenant minted over the whole run."""
        return self._inner.seed_credit()

    def owned_seed_credit(self) -> float:
        """Owned seed credit minted *so far* (grows with arrivals)."""
        return self._inner.seed_credit()
