"""Unit tests for the execution cost model (Eqs. 8 and 9)."""

import pytest

from repro.costmodel.config import CostModelConfig
from repro.costmodel.execution import ExecutionCostModel, ExecutionEstimate
from repro.errors import PlanningError
from repro.pricing.catalog import network_only_pricing
from repro.structures.cached_index import CachedIndex
from repro.workload.templates import template_by_name


@pytest.fixture
def q6(sample_query):
    """A selective LINEITEM query (TPC-H Q6 analogue)."""
    return sample_query("q6_forecast_revenue")


@pytest.fixture
def q10(sample_query):
    """A result-heavy query (TPC-H Q10 analogue)."""
    return sample_query("q10_returned_items")


class TestCacheExecution:
    def test_estimate_components_are_positive(self, execution_model, q6):
        estimate = execution_model.cache_execution(q6)
        assert estimate.cost_units > 0
        assert estimate.io_operations > 0
        assert estimate.cpu_seconds > 0
        assert estimate.response_time_s > 0
        assert estimate.network_bytes == 0
        assert estimate.network_dollars == 0
        assert estimate.dollars == pytest.approx(
            estimate.cpu_dollars + estimate.io_dollars
        )

    def test_eq8_cost_formula(self, execution_model, q6):
        """Eq. 8: Ce = lcpu * fcpu * qtot * c + fio * io * iotot."""
        config = execution_model.config
        estimate = execution_model.cache_execution(q6)
        expected_cpu = (config.cpu_load_factor * config.cpu_cost_factor
                        * estimate.cost_units * config.pricing.cpu_second)
        expected_io = estimate.io_operations * config.pricing.io_operation
        assert estimate.cpu_dollars == pytest.approx(expected_cpu)
        assert estimate.io_dollars == pytest.approx(expected_io)

    def test_response_time_uses_fcpu_emulation(self, execution_model, q6):
        config = execution_model.config
        estimate = execution_model.cache_execution(q6)
        assert estimate.response_time_s == pytest.approx(
            config.cpu_cost_factor * estimate.cost_units
        )

    def test_more_nodes_are_faster_but_cost_more_cpu(self, execution_model, q6):
        single = execution_model.cache_execution(q6, node_count=1)
        triple = execution_model.cache_execution(q6, node_count=3)
        assert triple.response_time_s < single.response_time_s
        assert triple.cpu_seconds > single.cpu_seconds
        assert triple.io_operations == pytest.approx(single.io_operations)

    def test_three_nodes_match_paper_scaling(self, execution_model):
        """A fully parallel query should be ~2x faster at 25% extra CPU."""
        query = template_by_name("q6_forecast_revenue").instantiate(0, 0.0)
        fully_parallel = query.__class__(**{**query.__dict__, "parallel_fraction": 1.0})
        single = execution_model.cache_execution(fully_parallel, node_count=1)
        triple = execution_model.cache_execution(fully_parallel, node_count=3)
        assert single.response_time_s / triple.response_time_s == pytest.approx(2.0)
        assert triple.cpu_seconds / single.cpu_seconds == pytest.approx(1.25)

    def test_invalid_node_count_rejected(self, execution_model, q6):
        with pytest.raises(PlanningError):
            execution_model.cache_execution(q6, node_count=0)


class TestIndexExecution:
    def test_matching_index_reduces_work(self, execution_model, q6):
        index = CachedIndex("lineitem", ("l_shipdate",))
        scan = execution_model.cache_execution(q6)
        probe = execution_model.cache_execution(q6, index=index)
        assert probe.cost_units < scan.cost_units
        assert probe.io_operations < scan.io_operations
        assert probe.response_time_s < scan.response_time_s

    def test_irrelevant_index_falls_back_to_scan(self, execution_model, q6):
        index = CachedIndex("lineitem", ("l_orderkey",))  # not predicated by Q6
        scan = execution_model.cache_execution(q6)
        probe = execution_model.cache_execution(q6, index=index)
        assert probe.cost_units == pytest.approx(scan.cost_units)

    def test_unselective_index_never_beats_full_scan_badly(self, execution_model, q10):
        """An index on a 33%-selectivity flag should not look better than it is."""
        index = CachedIndex("lineitem", ("l_returnflag",))
        scan = execution_model.cache_execution(q10)
        probe = execution_model.cache_execution(q10, index=index)
        assert probe.cost_units <= scan.cost_units * 1.0001

    def test_composite_index_prefix_rule(self, execution_model, sample_query):
        """A range predicate ends key-prefix usability."""
        query = sample_query("q12_shipping_modes")
        narrow = CachedIndex("lineitem", ("l_shipmode",))
        wide = CachedIndex("lineitem", ("l_shipmode", "l_receiptdate"))
        narrow_est = execution_model.cache_execution(query, index=narrow)
        wide_est = execution_model.cache_execution(query, index=wide)
        # The wide index serves the extra (range) predicate too, so it should
        # be at least as selective as the narrow one.
        assert wide_est.cost_units <= narrow_est.cost_units * 1.0001


class TestBackendExecution:
    def test_eq9_adds_transfer_on_top_of_execution(self, execution_model, q10, estimator):
        backend = execution_model.backend_execution(q10)
        cache = execution_model.cache_execution(q10)
        transfer = execution_model.transfer(q10.result_bytes(estimator))
        assert backend.dollars == pytest.approx(cache.dollars + transfer.dollars)
        assert backend.response_time_s == pytest.approx(
            cache.response_time_s + transfer.response_time_s
        )
        assert backend.network_bytes == pytest.approx(q10.result_bytes(estimator))

    def test_result_heavy_queries_pay_more_network(self, execution_model, q6, q10):
        light = execution_model.backend_execution(q6)
        heavy = execution_model.backend_execution(q10)
        assert heavy.network_dollars > light.network_dollars


class TestTransfer:
    def test_transfer_time_follows_throughput(self, execution_model):
        config = execution_model.config
        estimate = execution_model.transfer(config.network_throughput_bps * 10)
        assert estimate.response_time_s == pytest.approx(10.0)

    def test_transfer_charges_bandwidth_and_cpu(self, execution_model):
        config = execution_model.config
        size = 1_000_000_000
        estimate = execution_model.transfer(size)
        assert estimate.network_dollars == pytest.approx(size * config.pricing.network_byte)
        assert estimate.cpu_dollars > 0

    def test_zero_bytes_is_free_with_zero_latency(self, execution_model):
        estimate = execution_model.transfer(0)
        assert estimate.dollars == 0
        assert estimate.response_time_s == 0

    def test_negative_bytes_rejected(self, execution_model):
        with pytest.raises(PlanningError):
            execution_model.transfer(-1)

    def test_latency_adds_to_time(self, estimator):
        config = CostModelConfig(network_latency_s=2.0)
        model = ExecutionCostModel(config, estimator)
        assert model.transfer(0).response_time_s == pytest.approx(2.0)


class TestNetworkOnlyPricing:
    def test_net_only_pricing_zeroes_cache_execution_cost(self, estimator, sample_query):
        model = ExecutionCostModel(
            CostModelConfig(pricing=network_only_pricing()), estimator
        )
        estimate = model.cache_execution(sample_query())
        assert estimate.dollars == 0.0

    def test_net_only_pricing_still_charges_transfers(self, estimator, sample_query):
        model = ExecutionCostModel(
            CostModelConfig(pricing=network_only_pricing()), estimator
        )
        estimate = model.backend_execution(sample_query("q10_returned_items"))
        assert estimate.network_dollars > 0
        assert estimate.cpu_dollars == 0


class TestCombinedEstimates:
    def test_combined_with_sums_all_fields(self):
        a = ExecutionEstimate(1, 2, 3, 4, 5, 6, 7, 8)
        b = ExecutionEstimate(10, 20, 30, 40, 50, 60, 70, 80)
        combined = a.combined_with(b)
        assert combined.cost_units == 11
        assert combined.io_operations == 22
        assert combined.cpu_seconds == 33
        assert combined.network_bytes == 44
        assert combined.response_time_s == 55
        assert combined.dollars == pytest.approx(a.dollars + b.dollars)
