"""Unit tests for the cache manager (admission, usage, billing, eviction)."""

import pytest

from repro.cache.manager import CacheConfig, CacheManager
from repro.errors import CacheError, InsufficientSpaceError
from repro.structures.base import StructureKind
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode


def admit(manager, structure, size=100, cost=10.0, rate=0.01, now=0.0):
    return manager.admit(structure, size_bytes=size, build_cost=cost,
                         maintenance_rate=rate, now=now)


class TestAdmission:
    def test_admit_and_lookup(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, size=500)
        assert manager.contains(column.key)
        assert manager.disk_used_bytes == 500
        assert manager.built_keys == {column.key}
        assert manager.entry(column.key).build_cost == 10.0

    def test_double_admit_rejected(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column)
        with pytest.raises(CacheError):
            admit(manager, column)

    def test_unknown_entry_raises(self):
        with pytest.raises(CacheError):
            CacheManager().entry("column:missing")

    def test_entries_of_kind(self):
        manager = CacheManager()
        admit(manager, CachedColumn("lineitem", "l_shipdate"))
        admit(manager, CpuNode(1), size=0)
        assert len(manager.entries_of_kind(StructureKind.COLUMN)) == 1
        assert len(manager.entries_of_kind(StructureKind.CPU_NODE)) == 1
        assert manager.entries_of_kind(StructureKind.INDEX) == []

    def test_maintenance_rate_total(self):
        manager = CacheManager()
        admit(manager, CachedColumn("lineitem", "l_shipdate"), rate=0.01)
        admit(manager, CachedColumn("lineitem", "l_discount"), rate=0.02)
        assert manager.maintenance_rate_total() == pytest.approx(0.03)


class TestCapacityEviction:
    def test_lru_eviction_under_capacity(self):
        manager = CacheManager(CacheConfig(capacity_bytes=1_000))
        first = CachedColumn("lineitem", "l_shipdate")
        second = CachedColumn("lineitem", "l_discount")
        third = CachedColumn("lineitem", "l_quantity")
        admit(manager, first, size=400, now=0.0)
        admit(manager, second, size=400, now=1.0)
        manager.record_usage([first.key], now=2.0)  # second becomes LRU
        evicted = admit(manager, third, size=400, now=3.0)
        assert [record.key for record in evicted] == [second.key]
        assert manager.contains(first.key)
        assert manager.disk_used_bytes == 800

    def test_structure_larger_than_capacity_rejected(self):
        manager = CacheManager(CacheConfig(capacity_bytes=100))
        with pytest.raises(InsufficientSpaceError):
            admit(manager, CachedColumn("lineitem", "l_shipdate"), size=200)

    def test_eviction_records_are_kept(self):
        manager = CacheManager(CacheConfig(capacity_bytes=500))
        admit(manager, CachedColumn("lineitem", "l_shipdate"), size=400)
        admit(manager, CachedColumn("lineitem", "l_discount"), size=400, now=1.0)
        assert len(manager.evictions) == 1
        assert manager.evictions[0].reason == "capacity_lru"


class TestUsageAndBilling:
    def test_record_usage_updates_entry(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, now=0.0)
        manager.record_usage([column.key], now=5.0)
        entry = manager.entry(column.key)
        assert entry.queries_served == 1
        assert entry.last_used_at == 5.0

    def test_bill_maintenance_accrues_and_resets(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, rate=0.5, now=0.0)
        billed = manager.bill_maintenance([column.key], now=10.0)
        assert billed[column.key] == pytest.approx(5.0)
        assert manager.bill_maintenance([column.key], now=10.0)[column.key] == 0.0
        assert manager.entry(column.key).maintenance_billed == pytest.approx(5.0)

    def test_accrued_maintenance_snapshot(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, rate=0.1, now=0.0)
        assert manager.accrued_maintenance(20.0)[column.key] == pytest.approx(2.0)

    def test_record_amortized_recovery(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, cost=10.0)
        manager.record_amortized_recovery(column.key, 4.0)
        assert manager.entry(column.key).unrecovered_build_cost() == pytest.approx(6.0)
        with pytest.raises(CacheError):
            manager.record_amortized_recovery(column.key, -1.0)


class TestFailureEviction:
    def test_idle_structures_fail(self):
        manager = CacheManager(CacheConfig(max_idle_s=100.0, column_idle_multiplier=1.0))
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, now=0.0)
        assert manager.evict_failed_structures(now=50.0) == []
        failed = manager.evict_failed_structures(now=200.0)
        assert [record.key for record in failed] == [column.key]
        assert not manager.contains(column.key)

    def test_usage_resets_the_idle_clock(self):
        manager = CacheManager(CacheConfig(max_idle_s=100.0, column_idle_multiplier=1.0))
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, now=0.0)
        manager.record_usage([column.key], now=150.0)
        assert manager.evict_failed_structures(now=200.0) == []

    def test_columns_get_a_longer_grace_period(self):
        manager = CacheManager(CacheConfig(max_idle_s=100.0, column_idle_multiplier=4.0))
        column = CachedColumn("lineitem", "l_shipdate")
        index = CachedIndex("lineitem", ("l_shipdate",))
        admit(manager, column, now=0.0)
        admit(manager, index, now=0.0)
        failed = manager.evict_failed_structures(now=200.0)
        assert [record.key for record in failed] == [index.key]
        assert manager.contains(column.key)

    def test_min_residency_protects_fresh_structures(self):
        manager = CacheManager(CacheConfig(max_idle_s=10.0, min_residency_s=1_000.0,
                                           column_idle_multiplier=1.0))
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, now=0.0)
        assert manager.evict_failed_structures(now=500.0) == []

    def test_disabled_failure_rule(self):
        manager = CacheManager(CacheConfig(max_idle_s=None))
        admit(manager, CachedColumn("lineitem", "l_shipdate"), now=0.0)
        assert manager.evict_failed_structures(now=1e9) == []

    def test_explicit_eviction_reports_unrecovered_cost(self):
        manager = CacheManager()
        column = CachedColumn("lineitem", "l_shipdate")
        admit(manager, column, cost=10.0, rate=0.1, now=0.0)
        manager.record_amortized_recovery(column.key, 3.0)
        record = manager.evict(column.key, now=10.0, reason="test")
        assert record.unrecovered_build_cost == pytest.approx(7.0)
        assert record.unpaid_maintenance == pytest.approx(1.0)
        assert record.reason == "test"


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"capacity_bytes": 0},
        {"max_idle_s": 0.0},
        {"column_idle_multiplier": 0.5},
        {"min_residency_s": -1.0},
    ])
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(CacheError):
            CacheConfig(**kwargs)
