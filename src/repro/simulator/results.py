"""Result object returned by a simulation run."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.policies.base import SchemeStep
from repro.simulator.metrics import MetricsSummary


@dataclass(frozen=True)
class SimulationResult:
    """The summary plus the raw per-query steps of one run."""

    summary: MetricsSummary
    steps: Tuple[SchemeStep, ...]

    @property
    def scheme_name(self) -> str:
        """Name of the scheme that produced the result."""
        return self.summary.scheme_name

    @property
    def operating_cost(self) -> float:
        """Figure 4's metric: total operating cost in dollars."""
        return self.summary.operating_cost

    @property
    def mean_response_time_s(self) -> float:
        """Figure 5's metric: average response time in seconds."""
        return self.summary.mean_response_time_s

    def response_time_series(self) -> List[float]:
        """Per-query response times, in arrival order."""
        return [step.response_time_s for step in self.steps]

    def hit_series(self) -> List[bool]:
        """Per-query cache-hit flags, in arrival order."""
        return [step.served_in_cache for step in self.steps]

    def per_template_mean_response(self) -> Dict[str, float]:
        """Average response time per query template."""
        totals: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for step in self.steps:
            totals[step.template_name] = (
                totals.get(step.template_name, 0.0) + step.response_time_s
            )
            counts[step.template_name] = counts.get(step.template_name, 0) + 1
        return {name: totals[name] / counts[name] for name in totals}
