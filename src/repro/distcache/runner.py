"""The partitioned-cell runner: epochs, barriers, directory publication.

One partitioned cell run executes like this::

    route queries by template  ->  partition 0 .. N-1 substreams
    for each epoch (settlement barrier to settlement barrier):
        every partition replays its substream slice against its OWN
        PartitionedCacheManager + provider sub-account (in-process, or
        fanned over a ProcessPoolExecutor when max_workers > 1)
        at the barrier:
            settle maintenance on every partition up to the barrier
            [adaptive placement] drain per-structure benefit bids,
            apply the PlacementPolicy's ownership handoffs (override
            table + residency state + in-flight regret move together)
            route foreign regret to the (possibly new) owners
            publish the directory: a delta against the previous epoch,
            fold-verified (prev + delta == full) with a periodic
            full-snapshot anchor
            verify sub-account ledger integrity + payment conservation
    final barrier: wallet integrity audit, fold into a TenantCellResult

Workers are stateless between epochs: a partition's entire mutable state
(cache, sub-account, regret, registry) travels inside its pickled scheme,
so every epoch task is a pure function of its inputs and the run is
deterministic regardless of pool scheduling — ``max_workers`` changes
wall-clock, never results.

Unlike the replicated-replay sharding mode, each query here is planned,
priced, and negotiated by exactly **one** partition: total per-query
compute stays ~constant as partitions are added, instead of multiplying.
The price is weaker semantics (epoch-consistent directory, remote-access
surcharges, owned-only investment) — quantified for every run by the
divergence report against the global-cache baseline and documented in
``docs/distcache.md``.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.distcache.directory import (
    CrossShardDirectory,
    DirectoryDelta,
    verify_delta_fold,
)
from repro.distcache.engine import PartitionedEconomyEngine, RemoteAccessModel
from repro.distcache.manager import PartitionedCacheManager
from repro.distcache.merge import (
    PartitionCheckpoint,
    merge_partition_results,
    verify_payment_conservation,
    verify_subaccount_integrity,
    verify_wallet_integrity,
)
from repro.distcache.partition import QueryRouter, StructurePartitioner
from repro.distcache.placement import (
    HandoffRecord,
    PlacementPolicy,
)
from repro.economy.account import CloudAccount
from repro.economy.engine import EconomyConfig
from repro.economy.tenancy import TenantRegistry
from repro.errors import DistCacheError
from repro.experiments.tenants import (
    TenantCellResult,
    TenantExperimentConfig,
    build_population,
    run_tenant_cell,
)
from repro.policies.base import CachingScheme, SchemeStep
from repro.policies.economic import EconomicSchemeConfig
from repro.simulator.events import (
    ProviderPriceShockEvent,
    StructureInvalidationEvent,
    TenantBudgetSqueezeEvent,
)
from repro.simulator.metrics import MetricsSummary
from repro.simulator.simulation import trailing_interval_for
from repro.system import CloudSystem
from repro.workload.grammar import compile_shock_events

#: Event-order ranks mirroring :mod:`repro.simulator.events`: at one
#: instant, lifecycle markers apply before the barrier settles, the
#: barrier settles before simultaneous market shocks land, and shocks
#: land before simultaneous queries run.
_PRIORITY_ARRIVAL = 4
_PRIORITY_CHURN = 6
_PRIORITY_BARRIER = 10
_PRIORITY_INVALIDATION = 12
_PRIORITY_PRICE_SHOCK = 14
_PRIORITY_SQUEEZE = 16
_PRIORITY_QUERY = 30


class PartitionImbalanceWarning(UserWarning):
    """More cache partitions than busy templates: some serve no queries."""


@dataclass(frozen=True)
class PartitionEpochTask:
    """Everything one partition worker needs to replay one epoch."""

    scheme: CachingScheme
    items: Tuple[Tuple[int, object], ...]
    settle_to_s: float
    last_settled_s: float


@dataclass(frozen=True)
class PartitionEpochResult:
    """One partition's epoch output: updated state plus the replay record.

    ``eviction_losses`` carries the dollar loss of each kernel-driven
    eviction (invalidation shocks, strict-maintenance shutdowns) in
    event order, so the merge can book them exactly like
    ``MetricsCollector.record_kernel_evictions`` does in the
    unpartitioned run.
    """

    scheme: CachingScheme
    steps: Tuple[SchemeStep, ...]
    maintenance: Tuple[Tuple[float, float], ...]
    last_settled_s: float
    eviction_losses: Tuple[float, ...] = ()


#: Placement modes: ``hash`` pins every structure to its hash owner
#: (byte-identical to the pre-placement behaviour), ``adaptive`` applies
#: demand-driven ownership handoffs at settlement barriers.
PLACEMENT_MODES = ("hash", "adaptive")

#: Publish a full-snapshot anchor every this many barriers by default;
#: all other barriers publish (and fold-verify) only the delta.
DEFAULT_ANCHOR_PERIOD = 8


@dataclass(frozen=True)
class DirectoryPublication:
    """What one barrier's directory publication cost, full versus delta."""

    epoch: int
    entries: int
    adds: int
    removes: int
    moves: int
    delta_bytes: int
    full_bytes: int
    anchored: bool

    @property
    def published_bytes(self) -> int:
        """Modeled bytes actually shipped: the full snapshot at anchors,
        the delta everywhere else."""
        return self.full_bytes if self.anchored else self.delta_bytes


@dataclass(frozen=True)
class PartitionRunStats:
    """End-of-run accounting of one partition, for the report tables."""

    partition_index: int
    queries_served: int
    local_structures: int
    peak_cache_bytes: int
    subaccount_credit: float
    query_payments: float
    remote_hits: int
    remote_structure_accesses: int
    remote_bytes: float
    remote_dollars: float


@dataclass(frozen=True)
class DistCacheCellReport:
    """A merged partitioned cell plus the audit trail of how it ran."""

    cell: TenantCellResult
    partition_count: int
    partitions: Tuple[PartitionRunStats, ...]
    checkpoints: Tuple[PartitionCheckpoint, ...]
    directory_size: int
    remote: RemoteAccessModel
    baseline: Optional[MetricsSummary] = None
    placement: str = "hash"
    handoff_threshold: float = 0.0
    handoffs: Tuple[HandoffRecord, ...] = ()
    publications: Tuple[DirectoryPublication, ...] = ()

    @property
    def barriers_verified(self) -> int:
        """Settlement barriers at which the audits ran (and passed)."""
        return len(self.checkpoints)

    @property
    def remote_hit_count(self) -> int:
        """Chosen plans across all partitions that touched remote state."""
        return sum(stats.remote_hits for stats in self.partitions)

    @property
    def remote_dollars_paid(self) -> float:
        """Total modeled interconnect spend across all partitions."""
        return sum(stats.remote_dollars for stats in self.partitions)

    @property
    def handoff_count(self) -> int:
        """Ownership handoffs applied over the whole run."""
        return len(self.handoffs)

    @property
    def directory_bytes_published(self) -> int:
        """Modeled bytes the barriers actually shipped (deltas + anchors)."""
        return sum(pub.published_bytes for pub in self.publications)

    @property
    def directory_bytes_full(self) -> int:
        """What full republication at every barrier would have shipped."""
        return sum(pub.full_bytes for pub in self.publications)


def run_partition_epoch(task: PartitionEpochTask) -> PartitionEpochResult:
    """Replay one partition's slice of one epoch (process-pool entry point).

    Items carry the same instant-ordering ranks the simulation kernel
    uses, so maintenance settles at exactly the instants — and in exactly
    the order — the unpartitioned event loop would settle at.
    """
    if not isinstance(task, PartitionEpochTask):
        raise DistCacheError(
            f"expected a PartitionEpochTask, got {type(task).__name__}")
    scheme = task.scheme
    registry = scheme.tenant_registry
    steps: List[SchemeStep] = []
    maintenance: List[Tuple[float, float]] = []
    eviction_losses: List[float] = []
    last_settled_s = task.last_settled_s
    # Batched planners score the whole epoch slice in one vectorized pass;
    # scalar schemes ignore the priming (see CachingScheme.prime_workload).
    scheme.prime_workload(tuple(
        payload for rank, payload in task.items if rank == _PRIORITY_QUERY
    ))

    def settle(now: float) -> None:
        nonlocal last_settled_s
        elapsed = now - last_settled_s
        last_settled_s = max(last_settled_s, now)
        if elapsed <= 0:
            return
        maintenance.append((scheme.maintenance_rate() * elapsed, elapsed))

    for rank, payload in task.items:
        if rank == _PRIORITY_QUERY:
            settle(payload.arrival_time)
            steps.append(scheme.process(payload))
        elif rank == _PRIORITY_ARRIVAL:
            if registry is not None:
                registry.activate(payload.tenant_id, now=payload.time_s)
        elif rank == _PRIORITY_CHURN:
            if registry is not None:
                registry.deactivate(payload.tenant_id, now=payload.time_s)
        elif rank == _PRIORITY_INVALIDATION:
            # Maintenance settles at pre-fault rates first, mirroring the
            # kernel's settle-at-every-event contract. The partition only
            # holds (and therefore only destroys) its own structures; the
            # loss propagates to the directory at the next barrier.
            settle(payload.time_s)
            records = scheme.apply_invalidation(payload.predicate,
                                                payload.time_s)
            eviction_losses.extend(
                scheme.eviction_loss(record) for record in records)
        elif rank == _PRIORITY_PRICE_SHOCK:
            settle(payload.time_s)
            scheme.apply_price_shock(payload.factor, payload.time_s)
        elif rank == _PRIORITY_SQUEEZE:
            settle(payload.time_s)
            scheme.apply_budget_squeeze(payload.factor, payload.time_s)
        else:
            raise DistCacheError(f"unknown epoch item rank {rank}")
    settle(task.settle_to_s)
    # The barrier doubles as the settlement event: strict-maintenance
    # shutdown priorities run here, exactly like SchemeTenant.on_settlement.
    records = scheme.enforce_maintenance(task.settle_to_s)
    eviction_losses.extend(
        scheme.eviction_loss(record) for record in records)
    return PartitionEpochResult(
        scheme=scheme,
        steps=tuple(steps),
        maintenance=tuple(maintenance),
        last_settled_s=last_settled_s,
        eviction_losses=tuple(eviction_losses),
    )


class DistCacheRunner:
    """Runs tenant cells in partitioned-cache mode.

    Args:
        partition_count: cache partitions per cell.
        max_workers: process-pool size for the per-epoch partition tasks.
        remote: the remote-access surcharge model in force.
        compare_baseline: also run the global-cache twin for the
            divergence report (skipped with one partition).
        placement: ``"hash"`` (static hash ownership, byte-identical to
            the pre-placement runner) or ``"adaptive"`` (demand-driven
            ownership handoffs at settlement barriers).
        handoff_threshold: hysteresis margin in dollars per epoch a
            challenger must exceed the incumbent by (adaptive mode).
        anchor_period: publish a full-snapshot anchor every this many
            barriers; the others publish fold-verified deltas.
    """

    def __init__(self, partition_count: int, max_workers: int = 1,
                 remote: RemoteAccessModel = RemoteAccessModel(),
                 compare_baseline: bool = True,
                 placement: str = "hash",
                 handoff_threshold: float = 0.0,
                 anchor_period: int = DEFAULT_ANCHOR_PERIOD,
                 trace=None, metrics=None) -> None:
        if partition_count < 1:
            raise DistCacheError(
                f"partition_count must be >= 1, got {partition_count}")
        if max_workers < 1:
            raise DistCacheError(
                f"max_workers must be >= 1, got {max_workers}")
        if placement not in PLACEMENT_MODES:
            raise DistCacheError(
                f"placement must be one of {', '.join(PLACEMENT_MODES)}; "
                f"got {placement!r}")
        if not handoff_threshold >= 0:  # `not >=` also rejects NaN
            raise DistCacheError(
                f"handoff_threshold must be >= 0, got {handoff_threshold}")
        if anchor_period < 1:
            raise DistCacheError(
                f"anchor_period must be >= 1, got {anchor_period}")
        self._base_partitioner = StructurePartitioner(partition_count)
        self._partitioner = self._base_partitioner
        self._router = QueryRouter(partition_count)
        self._max_workers = max_workers
        self._remote = remote
        self._compare_baseline = compare_baseline
        self._placement = placement
        self._handoff_threshold = handoff_threshold
        self._anchor_period = anchor_period
        # Observability sinks (duck-typed TraceRecorder); None = disabled.
        # Per-partition recorders live on the engines (travelling through
        # the per-epoch pickle round-trips inside their schemes) and are
        # absorbed into these collectors when a cell completes. The
        # partitioned run has no kernel, so the barrier loop below doubles
        # as the metrics sampler: per-partition samples are taken off the
        # live engines at every barrier, exactly where a kernel run's
        # settlement observer would fire.
        self._trace = trace
        self._metrics = metrics

    @property
    def partition_count(self) -> int:
        """Cache partitions per cell."""
        return self._partitioner.partition_count

    @property
    def placement(self) -> str:
        """The placement mode in force (``hash`` or ``adaptive``)."""
        return self._placement

    # -- assembly --------------------------------------------------------------

    def _build_schemes(self, config: TenantExperimentConfig,
                       profiles) -> List[CachingScheme]:
        """One scheme (cache + sub-account + full registry) per partition."""
        if config.scheme == "bypass":
            raise DistCacheError(
                "partitioned mode requires an economy; the bypass baseline "
                "has none (run it with --cache-partitions 1)"
            )
        system = CloudSystem()
        partition_count = self.partition_count
        schemes: List[CachingScheme] = []
        for index in range(partition_count):
            registry = TenantRegistry()
            registry.register_all(profiles)

            def factory(enumerator, structure_costs, cache_config,
                        economy_config, tenants, _index=index):
                cache = PartitionedCacheManager(
                    cache_config,
                    partitioner=self._partitioner,
                    partition_index=_index,
                )
                economy = replace(
                    economy_config,
                    initial_credit=(economy_config.initial_credit
                                    / partition_count),
                )
                return PartitionedEconomyEngine(
                    enumerator=enumerator,
                    structure_costs=structure_costs,
                    cache=cache,
                    config=economy,
                    tenants=tenants,
                    remote=self._remote,
                    record_placement_bids=self._placement == "adaptive",
                )

            schemes.append(system.scheme(
                config.scheme,
                economic_config=EconomicSchemeConfig(
                    economy=EconomyConfig(
                        planning=config.planning,
                        strict_maintenance=config.strict_maintenance,
                    ),
                    tenants=registry, engine_factory=factory),
            ))
        return schemes

    def _epoch_items(self, queries, lifecycle, shocks=()
                     ) -> List[List[Tuple[float, int, int, object]]]:
        """Per-partition item lists in kernel dispatch order.

        Every partition receives its routed queries plus *all* lifecycle
        markers and market-shock events (each partition holds the full
        registry, and a shock hits the whole market — an invalidation
        must destroy matches on every partition, a repricing reprices
        every sub-economy); items are ``(time, rank, insertion,
        payload)`` sorted exactly like the kernel's ``(time_s, priority,
        FIFO)`` queue — queries are scheduled first, markers after,
        shocks last, matching ``_run_tenants``.
        """
        shock_ranks = {
            StructureInvalidationEvent: _PRIORITY_INVALIDATION,
            ProviderPriceShockEvent: _PRIORITY_PRICE_SHOCK,
            TenantBudgetSqueezeEvent: _PRIORITY_SQUEEZE,
        }
        sequenced: List[Tuple[float, int, int, object]] = []
        counter = 0
        for query in queries:
            sequenced.append(
                (query.arrival_time, _PRIORITY_QUERY, counter, query))
            counter += 1
        for marker in lifecycle:
            rank = (_PRIORITY_ARRIVAL if marker.kind == "arrival"
                    else _PRIORITY_CHURN)
            sequenced.append((marker.time_s, rank, counter, marker))
            counter += 1
        for event in shocks:
            sequenced.append(
                (event.time_s, shock_ranks[type(event)], counter, event))
            counter += 1
        sequenced.sort(key=lambda item: item[:3])

        per_partition: List[List[Tuple[float, int, int, object]]] = [
            [] for _ in range(self.partition_count)
        ]
        for time_s, rank, insertion, payload in sequenced:
            if rank == _PRIORITY_QUERY:
                targets = [self._router.partition_of(payload)]
            else:
                targets = range(self.partition_count)
            for partition in targets:
                per_partition[partition].append(
                    (time_s, rank, insertion, payload))
        return per_partition

    # -- execution -------------------------------------------------------------

    def run_cell(self, config: TenantExperimentConfig) -> DistCacheCellReport:
        """Run one cell partitioned; audit every barrier; merge exactly."""
        if config.warmup_queries:
            raise DistCacheError(
                "partitioned mode does not support warmup_queries")
        # Ownership overrides are per-cell state: every cell starts from
        # pure hash placement, whatever the previous cell handed off.
        self._partitioner = self._base_partitioner
        policy: Optional[PlacementPolicy] = None
        if self._placement == "adaptive":
            policy = PlacementPolicy(
                self.partition_count,
                handoff_threshold=self._handoff_threshold)
        populated = build_population(config)
        queries = list(populated.queries)
        schemes = self._build_schemes(config, populated.profiles)
        if self._trace is not None or self._metrics is not None:
            # Per-partition recorders ride inside the schemes through the
            # per-epoch worker round-trips; absorbed after the last barrier.
            from repro.obs.metrics import MetricsTimeseries, combined_recorder
            from repro.obs.trace import TraceRecorder

            for index, scheme in enumerate(schemes):
                source = f"partition{index}"
                self._engine_of(scheme).attach_trace(combined_recorder(
                    TraceRecorder(source=source)
                    if self._trace is not None else None,
                    MetricsTimeseries(source=source)
                    if self._metrics is not None else None,
                ))
        items = self._epoch_items(
            queries, populated.lifecycle,
            compile_shock_events(config.shocks, populated.queries))

        routed_counts = [
            sum(1 for _, rank, _, _ in partition_items
                if rank == _PRIORITY_QUERY)
            for partition_items in items
        ]
        if min(routed_counts) == 0:
            warnings.warn(
                f"cache partition count {self.partition_count} exceeds the "
                f"workload's busy template count; some cache partitions "
                f"serve no queries",
                PartitionImbalanceWarning,
                stacklevel=2,
            )

        start_s = queries[0].arrival_time
        trailing_s = trailing_interval_for(queries)
        end_s = queries[-1].arrival_time + trailing_s
        barriers: List[float] = []
        if config.settlement_period_s is not None:
            cut = start_s + config.settlement_period_s
            while cut <= end_s:
                barriers.append(cut)
                cut += config.settlement_period_s
        if not barriers or barriers[-1] != end_s:
            barriers.append(end_s)

        cursor = [0] * self.partition_count
        last_settled = [start_s] * self.partition_count
        steps: List[List[SchemeStep]] = [[] for _ in schemes]
        maintenance: List[List[Tuple[float, float]]] = [[] for _ in schemes]
        kernel_losses: List[List[float]] = [[] for _ in schemes]
        checkpoints: List[PartitionCheckpoint] = []
        handoffs: List[HandoffRecord] = []
        publications: List[DirectoryPublication] = []
        directory = CrossShardDirectory.empty()

        executor: Optional[ProcessPoolExecutor] = None
        workers = min(self._max_workers, self.partition_count)
        if workers > 1:
            executor = ProcessPoolExecutor(max_workers=workers)
        try:
            for epoch, barrier in enumerate(barriers):
                is_final = epoch == len(barriers) - 1
                tasks: List[PartitionEpochTask] = []
                for partition, scheme in enumerate(schemes):
                    partition_items = items[partition]
                    begin = cursor[partition]
                    index = begin
                    while index < len(partition_items):
                        time_s, rank, _, _ = partition_items[index]
                        # Interior barriers cut like the kernel's event
                        # order: a settlement outranks same-instant
                        # queries. The final barrier closes the run, so it
                        # drains everything (a zero-trailing run can place
                        # its last arrival exactly at the end instant).
                        if (not is_final
                                and (time_s, rank) >= (barrier,
                                                       _PRIORITY_BARRIER)):
                            break
                        index += 1
                    cursor[partition] = index
                    tasks.append(PartitionEpochTask(
                        scheme=scheme,
                        items=tuple((rank, payload) for _, rank, _, payload
                                    in partition_items[begin:index]),
                        settle_to_s=barrier,
                        last_settled_s=last_settled[partition],
                    ))
                if executor is not None:
                    results = list(executor.map(run_partition_epoch, tasks))
                else:
                    results = [run_partition_epoch(task) for task in tasks]

                for partition, result in enumerate(results):
                    schemes[partition] = result.scheme
                    steps[partition].extend(result.steps)
                    maintenance[partition].extend(result.maintenance)
                    kernel_losses[partition].extend(result.eviction_losses)
                    last_settled[partition] = result.last_settled_s

                applied: List[HandoffRecord] = []
                if policy is not None:
                    applied = self._apply_handoffs(
                        schemes, policy, epoch=epoch + 1, now=barrier)
                    handoffs.extend(applied)
                self._forward_regret(schemes)
                directory, publication = self._publish_directory(
                    schemes, epoch + 1, previous=directory)
                publications.append(publication)
                checkpoints.append(self._checkpoint(
                    schemes, barrier, epoch + 1, directory,
                    handoffs_applied=len(applied)))
                if self._trace is not None:
                    epoch_start = barriers[epoch - 1] if epoch else start_s
                    self._trace.span(
                        "settlement_barrier", start_s=epoch_start,
                        end_s=barrier, epoch=epoch + 1,
                        directory_entries=len(directory),
                        directory_delta_bytes=publication.delta_bytes,
                        handoffs_applied=len(applied), final=is_final)
                    for record in applied:
                        self._trace.event(
                            "handoff", time_s=barrier, key=record.key,
                            from_partition=record.from_partition,
                            to_partition=record.to_partition)
                if self._metrics is not None:
                    self._sample_barrier(schemes, barrier, epoch + 1,
                                         is_final, directory, publication,
                                         len(applied))
        finally:
            if executor is not None:
                executor.shutdown()

        registries = [scheme.tenant_registry for scheme in schemes]
        verify_wallet_integrity(registries)
        cell = merge_partition_results(
            config=config,
            steps_by_partition=steps,
            maintenance_by_partition=maintenance,
            registries=registries,
            duration_s=end_s - start_s,
            population_size=populated.tenant_count,
            churn_waves=populated.churn_waves,
            kernel_losses_by_partition=kernel_losses,
        )
        if self._trace is not None or self._metrics is not None:
            from repro.obs.metrics import metrics_part, trace_part

            for partition, scheme in enumerate(schemes):
                engine = self._engine_of(scheme)
                if self._trace is not None:
                    self._trace.event(
                        "partition_summary", time_s=end_s,
                        partition=partition,
                        queries_served=len(steps[partition]),
                        remote_hits=engine.remote_hits,
                        remote_surcharge_dollars=engine.remote_dollars,
                        peak_cache_bytes=(
                            engine.partitioned_cache.peak_disk_used_bytes))
                    part = trace_part(engine.trace)
                    if part is not None:
                        self._trace.absorb(part)
                if self._metrics is not None:
                    part = metrics_part(engine.trace)
                    if part is not None:
                        self._metrics.absorb(part)
        baseline: Optional[MetricsSummary] = None
        if self._compare_baseline and self.partition_count > 1:
            baseline = run_tenant_cell(config).summary
        return DistCacheCellReport(
            cell=cell,
            partition_count=self.partition_count,
            partitions=tuple(self._partition_stats(schemes, steps)),
            checkpoints=tuple(checkpoints),
            directory_size=len(directory),
            remote=self._remote,
            baseline=baseline,
            placement=self._placement,
            handoff_threshold=self._handoff_threshold,
            handoffs=tuple(handoffs),
            publications=tuple(publications),
        )

    def run_cells(self, configs: Sequence[TenantExperimentConfig]
                  ) -> List[DistCacheCellReport]:
        """Run many cells (sequentially; partitions parallelise within)."""
        cells = list(configs)
        if not cells:
            raise DistCacheError("at least one tenant cell is required")
        return [self.run_cell(config) for config in cells]

    # -- barrier work ----------------------------------------------------------

    def _apply_handoffs(self, schemes: Sequence[CachingScheme],
                        policy: PlacementPolicy, epoch: int,
                        now: float) -> List[HandoffRecord]:
        """Adaptive placement's barrier step: decide and apply handoffs.

        Drains every engine's per-structure benefit bids into the policy,
        asks it for this epoch's handoff set (only structures currently
        resident on their owner are eligible — a handoff always has
        residency state to move), then applies each handoff atomically
        from the run's perspective:

        1. the ownership-override table is extended and installed on
           every partition (one shared :class:`StructurePartitioner`, so
           directory checks, admission guards, and regret routing all
           flip together);
        2. the structure's :class:`~repro.cache.storage.CacheEntry` —
           billing watermark, usage recency, amortisation state — moves
           to the new owner's cache without an eviction record;
        3. the structure's in-flight regret moves to the new owner's
           tracker.

        No account is touched, so the bitwise sub-account reconciliation
        of the same barrier is unaffected; subsequent epochs bill the
        structure's maintenance and amortisation to the new owner's
        traffic.
        """
        engines = [self._engine_of(scheme) for scheme in schemes]
        for partition, engine in enumerate(engines):
            for key, benefit in engine.drain_placement_bids():
                policy.record(key, partition, benefit)

        caches = [engine.partitioned_cache for engine in engines]
        owners: Dict[str, int] = {}
        for key in policy.pending_keys():
            owner = self._partitioner.partition_of(key)
            if caches[owner].contains(key):
                owners[key] = owner
        decisions = policy.propose(owners)
        if not decisions:
            return []

        entries = [caches[decision.from_partition].extract_entry(decision.key)
                   for decision in decisions]
        self._partitioner = self._partitioner.with_overrides(
            {decision.key: decision.to_partition for decision in decisions})
        for cache in caches:
            cache.set_partitioner(self._partitioner)

        records: List[HandoffRecord] = []
        for decision, entry in zip(decisions, entries):
            caches[decision.to_partition].install_entry(entry, now=now)
            engines[decision.from_partition].transfer_regret_to(
                engines[decision.to_partition], entry.structure)
            records.append(HandoffRecord(
                epoch=epoch,
                key=decision.key,
                from_partition=decision.from_partition,
                to_partition=decision.to_partition,
                margin=decision.margin,
            ))
        return records

    def _forward_regret(self, schemes: Sequence[CachingScheme]) -> None:
        """Route regret earned on foreign-owned structures to their owners.

        Part of the barrier exchange: demand observed by a borrowing
        partition reaches the owner's investment rule one epoch late.
        Partitions are drained and credited in index order, so the
        exchange is deterministic.
        """
        engines = [self._engine_of(scheme) for scheme in schemes]
        forwarded: List[List[Tuple[object, float]]] = [
            [] for _ in engines
        ]
        for engine in engines:
            for structure, amount in engine.drain_foreign_regret():
                owner = self._partitioner.partition_of(structure.key)
                forwarded[owner].append((structure, amount))
        for engine, items in zip(engines, forwarded):
            if items:
                engine.absorb_forwarded_regret(items)

    def _publish_directory(self, schemes: Sequence[CachingScheme],
                           version: int,
                           previous: CrossShardDirectory
                           ) -> Tuple[CrossShardDirectory,
                                      DirectoryPublication]:
        """Publish one barrier's directory as a fold-verified delta.

        The full snapshot is still assembled (and its ownership
        invariants verified) every barrier — what changes is the modeled
        *wire* cost: barriers ship only the delta against the previous
        epoch, except every ``anchor_period``-th, which ships the full
        snapshot as an audit anchor. ``prev + delta == full`` is
        re-verified before the snapshot is installed, so a divergent
        delta can never propagate.
        """
        snapshots: Dict[int, Tuple[Tuple[str, int], ...]] = {}
        for partition, scheme in enumerate(schemes):
            cache = scheme.cache
            assert isinstance(cache, PartitionedCacheManager)
            snapshots[partition] = cache.snapshot()
        directory = CrossShardDirectory.publish(
            snapshots, self._partitioner, version=version)
        directory.verify_backed_by({
            partition: [key for key, _ in snapshot]
            for partition, snapshot in snapshots.items()
        })
        delta = DirectoryDelta.between(previous, directory)
        verify_delta_fold(previous, delta, directory)
        publication = DirectoryPublication(
            epoch=version,
            entries=len(directory),
            adds=len(delta.adds),
            removes=len(delta.removes),
            moves=len(delta.moves),
            delta_bytes=delta.wire_bytes,
            full_bytes=directory.wire_bytes,
            anchored=version % self._anchor_period == 0,
        )
        for scheme in schemes:
            cache = scheme.cache
            assert isinstance(cache, PartitionedCacheManager)
            cache.set_directory(directory)
        return directory, publication

    def _checkpoint(self, schemes: Sequence[CachingScheme], barrier: float,
                    epoch: int, directory: CrossShardDirectory,
                    handoffs_applied: int = 0) -> PartitionCheckpoint:
        engines = [self._engine_of(scheme) for scheme in schemes]
        verify_subaccount_integrity(engines)
        payments, charges = verify_payment_conservation(engines)
        return PartitionCheckpoint(
            time_s=barrier,
            epoch=epoch,
            directory_size=len(directory),
            subaccount_credit=tuple(
                engine.account.credit for engine in engines),
            query_payments=payments,
            outcome_charges=charges,
            handoffs_applied=handoffs_applied,
        )

    def _sample_barrier(self, schemes: Sequence[CachingScheme],
                        barrier: float, epoch: int, is_final: bool,
                        directory: CrossShardDirectory,
                        publication: "DirectoryPublication",
                        handoffs_applied: int) -> None:
        """Take this barrier's metrics samples (read-only, post-barrier).

        One sample per partition (off its engine-held collector, so the
        per-epoch counter deltas pair with the gauges read here) plus one
        runner-level sample carrying the cross-partition barrier state
        (directory size, delta bytes, handoffs).
        """
        from repro.obs.metrics import metrics_part

        for scheme in schemes:
            engine = self._engine_of(scheme)
            collector = metrics_part(engine.trace)
            if collector is None:
                continue
            collector.sample(
                time_s=barrier, epoch=epoch, final=is_final,
                provider_credit=engine.account.credit,
                query_payments=engine.account.totals_by_category().get(
                    CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0),
                wallet_credit=scheme.tenant_registry.total_credit(),
                remote_hits=engine.remote_hits,
                remote_surcharge_dollars=engine.remote_dollars,
                cache_entries=len(engine.partitioned_cache.entries),
                disk_used_bytes=engine.partitioned_cache.disk_used_bytes,
            )
        self._metrics.sample(
            time_s=barrier, epoch=epoch, final=is_final,
            directory_entries=len(directory),
            directory_delta_bytes=publication.delta_bytes,
            handoffs_applied=handoffs_applied,
        )

    @staticmethod
    def _engine_of(scheme: CachingScheme) -> PartitionedEconomyEngine:
        engine = getattr(scheme, "engine", None)
        if not isinstance(engine, PartitionedEconomyEngine):
            raise DistCacheError(
                f"scheme {scheme.name!r} is not running a partitioned engine")
        return engine

    def _partition_stats(self, schemes: Sequence[CachingScheme],
                         steps: Sequence[Sequence[SchemeStep]]
                         ) -> List[PartitionRunStats]:
        stats: List[PartitionRunStats] = []
        for partition, scheme in enumerate(schemes):
            engine = self._engine_of(scheme)
            cache = engine.partitioned_cache
            stats.append(PartitionRunStats(
                partition_index=partition,
                queries_served=len(steps[partition]),
                local_structures=len(cache.built_keys),
                peak_cache_bytes=cache.peak_disk_used_bytes,
                subaccount_credit=engine.account.credit,
                query_payments=engine.account.totals_by_category().get(
                    CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0),
                remote_hits=engine.remote_hits,
                remote_structure_accesses=engine.remote_structure_accesses,
                remote_bytes=engine.remote_bytes,
                remote_dollars=engine.remote_dollars,
            ))
        return stats


def run_partitioned_cell(config: TenantExperimentConfig,
                         partitions: int,
                         max_workers: int = 1,
                         remote: RemoteAccessModel = RemoteAccessModel(),
                         compare_baseline: bool = True,
                         placement: str = "hash",
                         handoff_threshold: float = 0.0,
                         anchor_period: int = DEFAULT_ANCHOR_PERIOD,
                         trace=None, metrics=None) -> DistCacheCellReport:
    """Run one tenant cell in partitioned-cache mode (convenience wrapper)."""
    runner = DistCacheRunner(partitions, max_workers=max_workers,
                             remote=remote, compare_baseline=compare_baseline,
                             placement=placement,
                             handoff_threshold=handoff_threshold,
                             anchor_period=anchor_period,
                             trace=trace, metrics=metrics)
    return runner.run_cell(config)


def run_partitioned_experiment(configs: Sequence[TenantExperimentConfig],
                               partitions: int,
                               jobs: int = 1,
                               remote: RemoteAccessModel = RemoteAccessModel(),
                               compare_baseline: bool = True,
                               placement: str = "hash",
                               handoff_threshold: float = 0.0,
                               anchor_period: int = DEFAULT_ANCHOR_PERIOD,
                               trace=None,
                               metrics=None) -> List[DistCacheCellReport]:
    """Run many cells partitioned; ``jobs`` sizes each cell's worker pool."""
    runner = DistCacheRunner(partitions, max_workers=jobs, remote=remote,
                             compare_baseline=compare_baseline,
                             placement=placement,
                             handoff_threshold=handoff_threshold,
                             anchor_period=anchor_period,
                             trace=trace, metrics=metrics)
    return runner.run_cells(configs)
