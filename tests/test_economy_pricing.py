"""Unit tests for plan pricing (Eq. 4 against the cache state)."""

import pytest

from repro.cache.manager import CacheManager
from repro.costmodel.amortization import UniformAmortization
from repro.economy.pricing import PlanPricer
from repro.planner.enumerator import EnumeratorConfig, PlanEnumerator
from repro.planner.plan import PlanKind


@pytest.fixture
def enumerator(execution_model, system):
    return PlanEnumerator(execution_model, candidate_indexes=system.candidate_indexes,
                          config=EnumeratorConfig(max_extra_nodes=1))


@pytest.fixture
def pricer(structure_costs):
    return PlanPricer(structure_costs, UniformAmortization(100))


class TestPricing:
    def test_backend_plan_price_is_pure_execution(self, enumerator, pricer, sample_query):
        cache = CacheManager()
        priced = pricer.price_plans(enumerator.enumerate(sample_query()), cache, now=0.0)
        backend = next(p for p in priced if p.plan.kind is PlanKind.BACKEND)
        assert backend.is_existing
        assert backend.amortized_dollars == 0.0
        assert backend.price == pytest.approx(backend.execution_dollars)

    def test_possible_plans_amortize_estimated_build_costs(self, enumerator, pricer,
                                                           structure_costs, sample_query):
        cache = CacheManager()
        priced = pricer.price_plans(enumerator.enumerate(sample_query()), cache, now=0.0)
        column_plan = next(p for p in priced
                           if p.plan.kind is PlanKind.CACHE_COLUMN_SCAN
                           and p.plan.node_count == 1)
        assert not column_plan.is_existing
        expected = sum(
            structure_costs.build_cost(structure) / 100
            for structure in column_plan.plan.structures
        )
        assert column_plan.amortized_dollars == pytest.approx(expected)
        assert set(column_plan.amortized_by_structure) == set(
            s.key for s in column_plan.plan.structures
        )

    def test_built_structures_amortize_their_actual_build_cost(self, enumerator, pricer,
                                                               structure_costs, schema,
                                                               sample_query):
        query = sample_query("q6_forecast_revenue")
        cache = CacheManager()
        plans = enumerator.enumerate(query)
        column_plan = next(p for p in plans
                           if p.kind is PlanKind.CACHE_COLUMN_SCAN and p.node_count == 1)
        for structure in column_plan.structures:
            cache.admit(structure, size_bytes=structure.size_bytes(schema),
                        build_cost=10.0,
                        maintenance_rate=0.0, now=0.0)
        priced = pricer.price_plan(column_plan, cache, now=0.0)
        assert priced.is_existing
        assert priced.amortized_dollars == pytest.approx(
            10.0 / 100 * len(column_plan.structures)
        )

    def test_fully_recovered_structures_stop_charging(self, enumerator, pricer, schema,
                                                      sample_query):
        query = sample_query("q6_forecast_revenue")
        cache = CacheManager()
        plans = enumerator.enumerate(query)
        column_plan = next(p for p in plans
                           if p.kind is PlanKind.CACHE_COLUMN_SCAN and p.node_count == 1)
        for structure in column_plan.structures:
            cache.admit(structure, size_bytes=structure.size_bytes(schema),
                        build_cost=10.0, maintenance_rate=0.0, now=0.0)
            cache.record_amortized_recovery(structure.key, 10.0)
        priced = pricer.price_plan(column_plan, cache, now=0.0)
        assert priced.amortized_dollars == 0.0
        assert priced.price == pytest.approx(priced.execution_dollars)

    def test_maintenance_dues_reported_but_not_priced(self, enumerator, pricer, schema,
                                                      sample_query):
        query = sample_query("q6_forecast_revenue")
        cache = CacheManager()
        plans = enumerator.enumerate(query)
        column_plan = next(p for p in plans
                           if p.kind is PlanKind.CACHE_COLUMN_SCAN and p.node_count == 1)
        for structure in column_plan.structures:
            cache.admit(structure, size_bytes=structure.size_bytes(schema),
                        build_cost=0.0, maintenance_rate=0.001, now=0.0)
        priced = pricer.price_plan(column_plan, cache, now=100.0)
        assert priced.maintenance_dollars == pytest.approx(
            0.1 * len(column_plan.structures)
        )
        assert priced.price == pytest.approx(
            priced.execution_dollars + priced.amortized_dollars
        )

    def test_cheaper_existing_plans_price_below_possible_ones(self, enumerator, pricer,
                                                              sample_query):
        cache = CacheManager()
        priced = pricer.price_plans(enumerator.enumerate(sample_query()), cache, now=0.0)
        backend = next(p for p in priced if p.plan.kind is PlanKind.BACKEND)
        possible = [p for p in priced if not p.is_existing]
        assert possible, "expected not-yet-buildable plans on an empty cache"
        assert all(p.response_time_s <= backend.response_time_s for p in possible
                   if p.plan.node_count >= 1)
