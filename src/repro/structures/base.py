"""Common interface of the three cache structure types."""

from __future__ import annotations

import abc
import enum

from repro.catalog.schema import Schema


class StructureKind(enum.Enum):
    """The three structure types of Section V-C."""

    CPU_NODE = "cpu_node"
    COLUMN = "column"
    INDEX = "index"


class CacheStructure(abc.ABC):
    """A physical structure the cloud can build in its cache.

    Structures are value objects: two structures with the same key are the
    same structure, regardless of when or by whom they were instantiated.
    The key is what the regret array (``regretS`` in the paper) is indexed
    by, and what the cache manager stores.
    """

    @property
    @abc.abstractmethod
    def kind(self) -> StructureKind:
        """Which of the three structure types this is."""

    @property
    @abc.abstractmethod
    def key(self) -> str:
        """Stable, unique identifier (e.g. ``"column:lineitem.l_shipdate"``)."""

    @abc.abstractmethod
    def size_bytes(self, schema: Schema) -> int:
        """Disk footprint of the structure; 0 for CPU nodes."""

    # Value semantics -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CacheStructure):
            return NotImplemented
        return self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.key!r})"
