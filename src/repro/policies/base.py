"""Common interface of the caching schemes.

The simulator only needs two things from a scheme: process one query and
report what it cost (so Figures 4 and 5 can be regenerated), and expose the
cache manager (so storage and node-uptime costs can be integrated over
simulated time).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.cache.manager import CacheManager
from repro.workload.query import Query


@dataclass(frozen=True)
class SchemeStep:
    """What one query cost under one scheme.

    All dollar figures are *resource* costs (what the infrastructure
    provider bills the cloud), not user charges; the user-side money flows
    are reported separately so profit can be analysed.
    """

    query_id: int
    template_name: str
    arrival_time_s: float
    response_time_s: float
    served_in_cache: bool
    plan_label: str
    execution_cpu_dollars: float
    execution_io_dollars: float
    execution_network_dollars: float
    build_dollars: float
    network_bytes: float
    charge: float
    profit: float
    builds: int
    evictions: int
    eviction_losses: float
    tenant_id: str = "default"

    @property
    def execution_dollars(self) -> float:
        """Total execution resource cost of the step."""
        return (self.execution_cpu_dollars + self.execution_io_dollars
                + self.execution_network_dollars)

    @property
    def resource_dollars(self) -> float:
        """Execution plus build resource cost of the step (no maintenance)."""
        return self.execution_dollars + self.build_dollars


class CachingScheme(abc.ABC):
    """A caching scheme the simulator can drive."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Scheme identifier used in reports (e.g. ``"econ-cheap"``)."""

    @property
    @abc.abstractmethod
    def cache(self) -> CacheManager:
        """The cache manager holding the scheme's built structures."""

    @abc.abstractmethod
    def process(self, query: Query) -> SchemeStep:
        """Serve one query and report its step record."""

    def prime_workload(self, queries: Sequence[Query],
                       settlement_period_s: Optional[float] = None) -> None:
        """Announce the upcoming arrivals before the run starts.

        Purely advisory: schemes with a batched planner use it to evaluate
        whole epochs vectorized; the default (and every scalar scheme)
        ignores it. Outcomes must not depend on whether priming happened.
        """

    @property
    def tenant_registry(self):
        """The scheme's tenant registry, or ``None`` for single-tenant schemes.

        Schemes built on a multi-tenant economy override this with their
        :class:`~repro.economy.tenancy.TenantRegistry`; the simulator uses
        it to apply tenant arrival/churn events.
        """
        return None

    #: Current provider price multiplier (see :meth:`apply_price_shock`).
    _price_factor: float = 1.0

    def maintenance_rate(self) -> float:
        """Current $ per second of storage and node uptime the scheme pays.

        Scaled by the active provider price-shock factor: a shock
        reprices the provider's ongoing maintenance bill, not just new
        builds.
        """
        return self.cache.maintenance_rate_total() * self._price_factor

    def apply_invalidation(self, predicate: str, now: float) -> Tuple:
        """Destroy cached structures whose key contains ``predicate``.

        The default walks the scheme's cache in insertion order and
        evicts every match (an empty predicate matches everything),
        returning the eviction records so the caller can book the
        losses. Invalidation moves no money — schemes must re-earn the
        lost structures through their normal admission path.
        """
        matching = [entry.structure.key for entry in self.cache.entries
                    if predicate in entry.structure.key]
        records = []
        for key in matching:
            record = self.cache.evict(key, now=now, reason="invalidated")
            if record is not None:
                records.append(record)
        return tuple(records)

    def apply_price_shock(self, factor: float, now: float) -> None:
        """Reprice provider build/maintenance by ``factor`` from ``now`` on."""
        self._price_factor = factor

    def apply_budget_squeeze(self, factor: float, now: float) -> None:
        """Scale tenant willingness-to-pay by ``factor``; default: no-op.

        Only schemes with an economy have budgets to squeeze; the bypass
        baseline charges nothing and ignores the event.
        """

    def enforce_maintenance(self, now: float) -> Tuple:
        """Apply the scheme's maintenance-shutdown policy, if any.

        Called at every settlement. Schemes running a strict-maintenance
        economy evict their lowest-benefit structures when accrued
        maintenance exceeds income and return the eviction records; the
        default keeps everything.
        """
        return ()

    def eviction_loss(self, record) -> float:
        """Dollar loss one eviction record contributes to this scheme's metrics.

        The economic schemes count unpaid maintenance plus the unrecovered
        build investment; schemes with a different accounting (the bypass
        baseline only tracks unrecovered build cost) override this so that
        kernel-driven evictions are booked identically to per-query ones.
        """
        return record.unpaid_maintenance + record.unrecovered_build_cost
