"""Unit tests for the resource price catalog."""

import pytest

from repro.errors import PricingError
from repro.pricing.catalog import (
    ResourcePricing,
    ec2_2009_pricing,
    free_network_pricing,
    network_only_pricing,
)


class TestResourcePricing:
    def test_defaults_match_2009_ec2_list(self):
        pricing = ec2_2009_pricing()
        assert pricing.cpu_node_per_hour == pytest.approx(0.10)
        assert pricing.disk_gb_month == pytest.approx(0.15)
        assert pricing.io_per_million == pytest.approx(0.10)
        assert pricing.network_gb == pytest.approx(0.17)

    def test_cpu_second_derived_from_node_hour(self):
        pricing = ResourcePricing(cpu_node_per_hour=0.36)
        assert pricing.cpu_second == pytest.approx(0.0001)

    def test_derived_rates(self):
        pricing = ec2_2009_pricing()
        assert pricing.cpu_node_per_second == pytest.approx(0.10 / 3600)
        assert pricing.io_operation == pytest.approx(1e-7)
        assert pricing.network_byte == pytest.approx(0.17e-9)
        assert pricing.disk_byte_second > 0

    def test_negative_price_rejected(self):
        with pytest.raises(PricingError):
            ResourcePricing(network_gb=-0.1)

    def test_non_numeric_price_rejected(self):
        with pytest.raises(PricingError):
            ResourcePricing(disk_gb_month="free")  # type: ignore[arg-type]

    def test_with_overrides_keeps_other_prices(self):
        pricing = ec2_2009_pricing().with_overrides(network_gb=0.0)
        assert pricing.network_gb == 0.0
        assert pricing.disk_gb_month == pytest.approx(0.15)

    def test_with_overrides_rederives_cpu_second(self):
        pricing = ec2_2009_pricing().with_overrides(cpu_node_per_hour=0.72)
        assert pricing.cpu_second == pytest.approx(0.0002)

    def test_scaled_multiplies_every_price(self):
        pricing = ec2_2009_pricing().scaled(2.0)
        assert pricing.cpu_node_per_hour == pytest.approx(0.20)
        assert pricing.network_gb == pytest.approx(0.34)
        assert pricing.cpu_second == pytest.approx(2 * ec2_2009_pricing().cpu_second)

    def test_scaled_rejects_negative_factor(self):
        with pytest.raises(PricingError):
            ec2_2009_pricing().scaled(-1.0)


class TestDerivedCatalogs:
    def test_network_only_zeroes_everything_but_network(self):
        pricing = network_only_pricing()
        assert pricing.cpu_node_per_hour == 0.0
        assert pricing.disk_gb_month == 0.0
        assert pricing.io_per_million == 0.0
        assert pricing.cpu_second == 0.0
        assert pricing.network_gb == pytest.approx(0.17)

    def test_network_only_respects_base_network_price(self):
        base = ec2_2009_pricing().with_overrides(network_gb=0.34)
        assert network_only_pricing(base).network_gb == pytest.approx(0.34)

    def test_free_network_keeps_other_prices(self):
        pricing = free_network_pricing()
        assert pricing.network_gb == 0.0
        assert pricing.io_per_million == pytest.approx(0.10)
