"""Picklability audit of everything that crosses a shard process boundary.

The sharding subsystem ships :class:`ShardTask` out and
:class:`ShardResult` back through a ``ProcessPoolExecutor``; the economy
and metrics state it summarises (registries, accounts, regret trackers,
collectors) must also round-trip through ``pickle`` so future transports
(checkpointing, remote workers) don't hit lambdas or local classes hiding
in state. These are regression tests for that contract.
"""

import pickle

import pytest

from repro.economy.account import CloudAccount
from repro.economy.regret import RegretTracker
from repro.economy.tenancy import TenantProfile, TenantRegistry
from repro.economy.user_model import UserModel
from repro.experiments.tenants import TenantExperimentConfig
from repro.policies.base import SchemeStep
from repro.sharding import (
    SettlementCheckpoint,
    ShardScopedRegistry,
    ShardTask,
    TenantPartitioner,
    run_shard,
)
from repro.simulator.metrics import MetricsCollector
from repro.structures.cached_column import CachedColumn


def roundtrip(value):
    return pickle.loads(pickle.dumps(value))


class TestEconomyStatePickles:
    def test_cloud_account_with_ledger(self):
        account = CloudAccount(initial_credit=10.0)
        account.deposit(5.0, 1.0, CloudAccount.CATEGORY_QUERY_PAYMENT, note="q1")
        account.withdraw(2.0, 2.0, CloudAccount.CATEGORY_BUILD, note="col")
        clone = roundtrip(account)
        assert clone.credit == account.credit
        assert clone.transactions == account.transactions

    def test_regret_tracker_with_lru_pool(self):
        tracker = RegretTracker(pool_capacity=4)
        tracker.add(CachedColumn("lineitem", "l_quantity"), 2.5)
        tracker.add(CachedColumn("orders", "o_custkey"), 1.0)
        clone = roundtrip(tracker)
        assert clone.value("column:lineitem.l_quantity") == 2.5
        assert clone.tracked_keys() == tracker.tracked_keys()

    def test_tenant_registry_with_charges_and_regret(self):
        registry = TenantRegistry()
        registry.register_all([
            TenantProfile("alice", initial_credit=10.0,
                          user_model=UserModel(budget_factor=1.5)),
            TenantProfile("bob", initial_credit=5.0, budget_multiplier=2.0),
        ])
        registry.charge("alice", 4.0, now=1.0, note="q7")
        registry.record_regret("bob", [CachedColumn("orders", "o_custkey")],
                               3.0)
        clone = roundtrip(registry)
        assert clone.credit_by_tenant() == registry.credit_by_tenant()
        assert clone.total_charged() == registry.total_charged()
        assert clone.state("bob").profile.budget_multiplier == 2.0

    def test_shard_scoped_registry(self):
        profiles = tuple(TenantProfile(f"t{i:05d}", initial_credit=3.0)
                         for i in range(6))
        registry = ShardScopedRegistry(profiles, TenantPartitioner(2), 0)
        for profile in profiles:
            registry.charge(profile.tenant_id, 1.0, now=0.5)
        clone = roundtrip(registry)
        assert clone.owned_wallets() == registry.owned_wallets()
        assert clone.foreign_charged == registry.foreign_charged
        assert clone.shard_index == 0


class TestMetricsStatePickles:
    def test_collector_with_steps_and_maintenance(self):
        collector = MetricsCollector("econ-cheap")
        collector.record_step(SchemeStep(
            query_id=0, template_name="t", arrival_time_s=0.0,
            response_time_s=0.1, served_in_cache=True, plan_label="cache",
            execution_cpu_dollars=0.1, execution_io_dollars=0.1,
            execution_network_dollars=0.0, build_dollars=0.0,
            network_bytes=10.0, charge=1.0, profit=0.2,
            builds=0, evictions=0, eviction_losses=0.0,
            tenant_id="alice",
        ))
        collector.record_maintenance(0.5, 1.0)
        clone = roundtrip(collector)
        assert clone.steps == collector.steps
        assert clone.summary() == collector.summary()


class TestShardTransportPickles:
    def test_task_and_result_roundtrip(self):
        config = TenantExperimentConfig(
            scheme="econ-cheap", tenant_count=6, query_count=20,
            interarrival_s=1.0, seed=1)
        task = roundtrip(ShardTask(config, shard_index=1, shard_count=2))
        assert task.config == config
        result = run_shard(task)
        clone = roundtrip(result)
        assert clone == result

    def test_checkpoint_roundtrip(self):
        point = SettlementCheckpoint(
            time_s=10.0, queries_dispatched=7, provider_credit=3.0,
            provider_query_payments=2.0, owned_wallet_credit=1.0,
            owned_charged=0.5)
        assert roundtrip(point) == point

    def test_partitioner_roundtrip_preserves_assignment(self):
        partitioner = TenantPartitioner(5)
        clone = roundtrip(partitioner)
        ids = [f"t{i:05d}" for i in range(40)]
        assert [clone.shard_of(t) for t in ids] == \
            [partitioner.shard_of(t) for t in ids]
