"""Ablation benchmark: sensitivity to the regret-threshold fraction ``a`` (Eq. 3)."""

from __future__ import annotations

from benchmarks.conftest import write_report
from repro.experiments.ablations import ABLATION_HEADERS, regret_fraction_ablation
from repro.experiments.config import ExperimentProfile
from repro.experiments.reporting import format_table

ABLATION_PROFILE = ExperimentProfile(
    name="ablation-regret", query_count=800, interarrival_times_s=(1.0,),
    disk_duration_scale=10.0,
)


def test_regret_fraction_ablation(benchmark, output_dir):
    rows = benchmark.pedantic(
        lambda: regret_fraction_ablation(
            fractions=(0.005, 0.01, 0.05, 0.2), profile=ABLATION_PROFILE,
        ),
        rounds=1, iterations=1,
    )
    assert len(rows) == 4

    table = format_table(
        ABLATION_HEADERS, rows,
        title="Ablation A1 - regret fraction a (econ-cheap, 1 s inter-arrival)",
    )
    write_report(output_dir, "ablation_regret_fraction.txt", table)
    print()
    print(table)

    # A more eager threshold (smaller a) should never use the cache less.
    hit_rates = {row[0]: row[3] for row in rows}
    assert hit_rates[0.005] >= hit_rates[0.2]
