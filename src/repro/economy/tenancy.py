"""Multi-tenant state: per-user accounts, budget policies, regret trackers.

The paper prices cache structures against the budgets of the *users* issuing
queries; this module gives each of those users (tenants) first-class state.
A :class:`TenantRegistry` maps a tenant id to a :class:`TenantState`: the
tenant's wallet (a :class:`~repro.economy.account.CloudAccount`), the budget
policy their queries negotiate with, and a per-tenant
:class:`~repro.economy.regret.RegretTracker` recording the regret the cloud
accumulated specifically on that tenant's queries.

The registry is deliberately *incremental*: every query updates only the
state of the tenant that issued it, so a population of thousands of tenants
costs no more per query than the single-tenant path. The single-tenant path
itself is untouched — an engine constructed without a registry behaves
byte-for-byte as before, and queries default to :data:`DEFAULT_TENANT_ID`.

Money is conserved by construction: a tenant wallet only changes through its
seed deposit and through :meth:`TenantRegistry.charge`, which moves exactly
the amount the provider deposits on the other side of the transaction.

Example::

    >>> registry = TenantRegistry()
    >>> state = registry.register(TenantProfile("alice", initial_credit=10.0))
    >>> registry.charge("alice", 4.0, now=1.0, note="query 7")
    >>> round(state.account.credit, 6)
    6.0
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (TYPE_CHECKING, Callable, Dict, Iterable, List, Optional,
                    Set, Tuple)

from repro.economy.account import CloudAccount
from repro.economy.budget import BudgetFunction
from repro.economy.regret import RegretTracker
from repro.economy.user_model import UserModel
from repro.errors import EconomyError
from repro.workload.population import tenant_id_for
from repro.workload.query import Query

if TYPE_CHECKING:
    from repro.workload.population import GenerativeProfileSource

#: Tenant id carried by queries that predate (or ignore) multi-tenancy.
DEFAULT_TENANT_ID = "default"

#: Ledger category for a tenant's query payments (mirror of the provider's
#: ``CATEGORY_QUERY_PAYMENT`` deposit).
CATEGORY_TENANT_CHARGE = "tenant_charge"


@dataclass(frozen=True)
class TenantProfile:
    """The static description of one tenant.

    Attributes:
        tenant_id: unique identifier (e.g. ``"t0042"``).
        initial_credit: seed credit of the tenant's wallet.
        budget_multiplier: scales every budget function the tenant submits
            (>1 models a tenant willing to outbid the baseline user model).
        user_model: optional per-tenant budget policy; when ``None`` the
            engine's configured :class:`~repro.economy.user_model.UserModel`
            is used.
        joined_at_s: simulated instant the tenant joined the population.

    Example:
        >>> profile = TenantProfile("t0001", initial_credit=25.0)
        >>> profile.budget_multiplier
        1.0
        >>> TenantProfile("", initial_credit=1.0)
        Traceback (most recent call last):
            ...
        repro.errors.EconomyError: tenant_id must not be empty
    """

    tenant_id: str
    initial_credit: float = 0.0
    budget_multiplier: float = 1.0
    user_model: Optional[UserModel] = None
    joined_at_s: float = 0.0

    def __post_init__(self) -> None:
        if not self.tenant_id:
            raise EconomyError("tenant_id must not be empty")
        if self.initial_credit < 0:
            raise EconomyError(
                f"initial_credit must be non-negative, got {self.initial_credit}"
            )
        if self.budget_multiplier <= 0:
            raise EconomyError(
                f"budget_multiplier must be positive, got {self.budget_multiplier}"
            )
        if self.joined_at_s < 0:
            raise EconomyError(
                f"joined_at_s must be non-negative, got {self.joined_at_s}"
            )


class TenantState:
    """The mutable per-tenant state the registry maintains.

    Attributes:
        profile: the tenant's static profile.
        account: the tenant's wallet. Created with ``allow_negative=True``:
            a tenant that keeps querying past their balance goes into debt
            rather than silently dropping charges, so the registry's books
            always balance against the provider's.
        regret: regret the cloud accumulated on this tenant's queries only.

    Example:
        >>> state = TenantState(TenantProfile("bob", initial_credit=5.0))
        >>> state.active, round(state.account.credit, 6), state.queries_processed
        (True, 5.0, 0)
    """

    def __init__(self, profile: TenantProfile) -> None:
        self.profile = profile
        self.account = CloudAccount(
            initial_credit=profile.initial_credit, allow_negative=True
        )
        self.regret = RegretTracker(pool_capacity=64)
        self.active = True
        self.activated_at_s = profile.joined_at_s
        self.churned_at_s: Optional[float] = None
        self.queries_processed = 0

    @property
    def tenant_id(self) -> str:
        """The tenant's identifier (shorthand for ``profile.tenant_id``)."""
        return self.profile.tenant_id


class TenantRegistry:
    """Holds every tenant's wallet, budget policy, and regret tracker.

    The registry is the engine's window into the population: budgets are
    built per tenant (:meth:`budget_for`), query charges are settled against
    the issuing tenant's wallet (:meth:`charge`), and regret is recorded
    both globally (by the engine) and per tenant (:meth:`record_regret`).

    Example:
        >>> registry = TenantRegistry()
        >>> _ = registry.register(TenantProfile("alice", initial_credit=8.0))
        >>> _ = registry.register(TenantProfile("bob", initial_credit=2.0))
        >>> registry.charge("alice", 3.0, now=0.0)
        >>> round(registry.total_credit(), 6)       # 8 + 2 - 3
        7.0
        >>> sorted(registry.active_ids())
        ['alice', 'bob']
        >>> _ = registry.deactivate("bob", now=5.0)
        >>> registry.active_ids()
        ['alice']
    """

    def __init__(self) -> None:
        self._states: Dict[str, TenantState] = {}

    # -- registration ----------------------------------------------------------

    def register(self, profile: TenantProfile) -> TenantState:
        """Add one tenant; re-registering an id is an error.

        Args:
            profile: the tenant's static description.

        Returns:
            The freshly created :class:`TenantState`.
        """
        if profile.tenant_id in self._states:
            raise EconomyError(f"tenant {profile.tenant_id!r} already registered")
        state = TenantState(profile)
        self._states[profile.tenant_id] = state
        return state

    def register_all(self, profiles: Iterable[TenantProfile]) -> None:
        """Register many tenants (convenience wrapper)."""
        for profile in profiles:
            self.register(profile)

    def ensure(self, tenant_id: str) -> TenantState:
        """The tenant's state, auto-registering a neutral profile if needed.

        Auto-registration keeps the default tenant (and ad-hoc ids in tests)
        working without an explicit population set-up; the neutral profile
        has an empty wallet and the engine's baseline budget policy.

        Args:
            tenant_id: the tenant to look up.

        Returns:
            The (possibly new) :class:`TenantState`.
        """
        state = self._states.get(tenant_id)
        if state is None:
            state = self.register(TenantProfile(tenant_id))
        return state

    # -- lookups ---------------------------------------------------------------

    def state(self, tenant_id: str) -> TenantState:
        """The tenant's state; raises if the tenant was never registered."""
        try:
            return self._states[tenant_id]
        except KeyError:
            raise EconomyError(f"unknown tenant {tenant_id!r}") from None

    def __contains__(self, tenant_id: str) -> bool:
        return tenant_id in self._states

    def __len__(self) -> int:
        return len(self._states)

    def tenant_ids(self) -> List[str]:
        """All registered tenant ids, in registration order."""
        return list(self._states)

    def active_ids(self) -> List[str]:
        """Ids of tenants currently active, in registration order."""
        return [tid for tid, state in self._states.items() if state.active]

    def states(self) -> Tuple[TenantState, ...]:
        """Every tenant state, in registration order."""
        return tuple(self._states.values())

    # -- lifecycle -------------------------------------------------------------

    def activate(self, tenant_id: str, now: float = 0.0) -> TenantState:
        """Mark a tenant active (arrival); auto-registers unknown ids.

        Args:
            tenant_id: the arriving tenant.
            now: simulated arrival instant.

        Returns:
            The tenant's state.
        """
        state = self.ensure(tenant_id)
        state.active = True
        state.activated_at_s = now
        state.churned_at_s = None
        return state

    def deactivate(self, tenant_id: str, now: float = 0.0) -> TenantState:
        """Mark a tenant churned; their wallet and history are retained.

        Args:
            tenant_id: the churning tenant.
            now: simulated churn instant.

        Returns:
            The tenant's state.
        """
        state = self.state(tenant_id)
        state.active = False
        state.churned_at_s = now
        return state

    # -- economy hooks ---------------------------------------------------------

    @staticmethod
    def derive_budget(profile: Optional[TenantProfile], query: Query,
                      backend_price: float, backend_response_time_s: float,
                      default_model: UserModel) -> BudgetFunction:
        """The budget a (possibly unknown) profile yields for ``query``.

        Pure: no registry state is read or written, so any replica holding
        the same static profile derives the same curve — the property the
        sharded execution layer's foreign-tenant path depends on. ``None``
        behaves like a freshly auto-registered neutral profile.

        Args:
            profile: the issuing tenant's static profile, or ``None``.
            query: the query being negotiated.
            backend_price: reference price of back-end execution.
            backend_response_time_s: reference back-end response time.
            default_model: the engine's baseline user model.

        Returns:
            The tenant-adjusted :class:`~repro.economy.budget.BudgetFunction`.
        """
        model = default_model
        if profile is not None and profile.user_model is not None:
            model = profile.user_model
        budget = model.budget_for(query, backend_price,
                                  backend_response_time_s)
        multiplier = 1.0 if profile is None else profile.budget_multiplier
        if multiplier != 1.0:
            budget = budget.scaled(multiplier)
        return budget

    def budget_for(self, query: Query, backend_price: float,
                   backend_response_time_s: float,
                   default_model: UserModel) -> BudgetFunction:
        """The budget function the issuing tenant submits with ``query``.

        The tenant's own :class:`~repro.economy.user_model.UserModel` (if
        any) replaces ``default_model``; the tenant's ``budget_multiplier``
        then scales the resulting curve, making negotiation tenant-aware
        without touching the negotiation algorithm itself.

        Args:
            query: the query being negotiated (carries ``tenant_id``).
            backend_price: reference price of back-end execution.
            backend_response_time_s: reference back-end response time.
            default_model: the engine's baseline user model.

        Returns:
            The tenant-adjusted :class:`~repro.economy.budget.BudgetFunction`.
        """
        state = self.ensure(query.tenant_id)
        state.queries_processed += 1
        return self.derive_budget(state.profile, query, backend_price,
                                  backend_response_time_s, default_model)

    def charge(self, tenant_id: str, amount: float, now: float = 0.0,
               note: str = "") -> None:
        """Withdraw a query payment from the issuing tenant's wallet.

        The wallet allows a negative balance, so the charge is never
        silently dropped or shifted to another tenant — isolation and
        conservation both hold by construction.

        Args:
            tenant_id: the tenant who pays.
            amount: the (non-negative) charge.
            now: simulated instant of the payment.
            note: free-form ledger note.
        """
        if amount < 0:
            raise EconomyError(f"charge must be non-negative, got {amount}")
        if amount == 0:
            return
        state = self.ensure(tenant_id)
        state.account.withdraw(amount, now, CATEGORY_TENANT_CHARGE, note=note)

    def record_regret(self, tenant_id: str, structures, amount: float,
                      divide: bool = False) -> None:
        """Accumulate a plan's regret on the issuing tenant's own tracker.

        Mirrors the engine's global distribution so reports can show *whose*
        queries the cloud most regrets not serving better.

        Args:
            tenant_id: the tenant whose query produced the regret.
            structures: the non-chosen plan's missing structures.
            amount: the plan's regret.
            divide: split equally over the structures (matches the engine's
                ``divide_regret`` setting).
        """
        state = self.ensure(tenant_id)
        state.regret.distribute(structures, amount, divide=divide)

    def reset_regret(self, key: str) -> None:
        """Zero a structure's regret on every tenant tracker (it got built)."""
        for state in self._states.values():
            state.regret.reset(key)

    # -- aggregates ------------------------------------------------------------

    def total_credit(self) -> float:
        """Sum of all tenant wallet balances (the conserved quantity)."""
        return sum(state.account.credit for state in self._states.values())

    def total_charged(self) -> float:
        """Sum of every query payment ever charged across the registry."""
        return sum(state.account.total_withdrawn()
                   for state in self._states.values())

    def credit_by_tenant(self) -> Dict[str, float]:
        """Wallet balance per tenant id, in registration order."""
        return {tid: state.account.credit for tid, state in self._states.items()}

    def live_tenant_count(self) -> int:
        """Number of tenants the registry currently considers active.

        With eager registration every profile starts active at
        construction, so the gauge counts "registered minus churned"; the
        generative subclass refines it to "arrived minus churned".
        """
        return sum(1 for state in self._states.values() if state.active)


class GenerativeTenantRegistry(TenantRegistry):
    """A registry whose tenants exist only while the simulation needs them.

    The eager :class:`TenantRegistry` holds one :class:`TenantState` per
    population member for the whole run — fine at 10^3 tenants, fatal at
    10^6. This subclass instead derives profiles on demand from a
    :class:`~repro.workload.population.GenerativeProfileSource` (a pure
    function of ``(population seed, tenant index)``):

    * **arrival** (:meth:`activate`) only advances the mint high-water
      mark and the seed-credit aggregate — O(1) amortised, no state
      object;
    * the full :class:`TenantState` materialises lazily at the tenant's
      first query (:meth:`ensure`, reached via ``budget_for``/``charge``);
    * **churn** (:meth:`deactivate`) *drops* the state again, compressing
      a charged wallet to two floats in an archive (a tenant that never
      paid anything needs no archive at all — rematerialisation rebuilds
      it exactly). A returning tenant resumes with its archived balance,
      honouring the base class's retention contract.

    Resident full states are therefore bounded by the tenants that are
    both *live and charged* plus the churned-but-charged archive (two
    floats each) — never by the total population. Aggregates
    (:meth:`total_credit`, :meth:`total_charged`) are maintained as O(1)
    running sums; per-tenant wallet values are bitwise identical to the
    eager registry's, because each materialised wallet replays exactly
    the charges the eager wallet received.

    Args:
        source: the pure profile derivation.
        owns: optional ownership predicate ``(index, tenant_id) -> bool``
            restricting which tenants this registry accounts for (the
            sharded execution layer passes its partitioner; ``None`` owns
            everything). Foreign tenants are tracked only through the
            mint high-water mark so their profiles stay derivable.

    Example:
        >>> from repro.workload.population import (GenerativeProfileSource,
        ...                                        PopulationSpec)
        >>> source = GenerativeProfileSource(PopulationSpec(
        ...     tenant_count=4, initial_credit=10.0))
        >>> registry = GenerativeTenantRegistry(source)
        >>> _ = registry.activate("t00000", now=0.0)
        >>> _ = registry.activate("t00001", now=0.0)
        >>> registry.materialized_tenant_count()   # arrivals mint no state
        0
        >>> registry.charge("t00001", 2.5, now=1.0)
        >>> registry.materialized_tenant_count(), round(registry.total_credit(), 6)
        (1, 17.5)
        >>> _ = registry.deactivate("t00001", now=2.0)    # state dropped...
        >>> registry.materialized_tenant_count()
        0
        >>> round(registry.credit_by_tenant()["t00001"], 6)  # ...balance kept
        7.5
    """

    def __init__(self, source: "GenerativeProfileSource",
                 owns: Optional[Callable[[Optional[int], str], bool]] = None
                 ) -> None:
        super().__init__()
        self._source = source
        self._owns = owns
        self._minted = 0
        self._owned_minted = 0
        self._seed_total = 0.0
        self._withdrawn_total = 0.0
        self._live_indices: Set[int] = set()
        self._archived: Dict[int, Tuple[float, float]] = {}
        self._adhoc_ids: List[str] = []
        self.peak_materialized = 0

    # -- generative internals --------------------------------------------------

    @property
    def source(self) -> "GenerativeProfileSource":
        """The pure profile derivation backing this registry."""
        return self._source

    @property
    def population_minted(self) -> int:
        """Population indices observed so far (owned and foreign alike)."""
        return self._minted

    def _owned_index(self, index: Optional[int], tenant_id: str) -> bool:
        return self._owns is None or self._owns(index, tenant_id)

    def _advance_minted(self, new_minted: int) -> None:
        """Observe population indices up to ``new_minted`` (exclusive).

        Minting is pure bookkeeping: for each newly observed *owned*
        index the seed credit joins the conserved total, exactly as the
        eager path's up-front registration would have deposited it.
        """
        for index in range(self._minted, new_minted):
            if self._owned_index(index, tenant_id_for(index)):
                self._owned_minted += 1
                self._seed_total += self._source.initial_credit_for(index)
        if new_minted > self._minted:
            self._minted = new_minted

    def _materialize(self, index: int) -> TenantState:
        """Build the full state of an owned population tenant on demand."""
        state = TenantState(self._source.profile_for(index))
        archived = self._archived.pop(index, None)
        if archived is not None:
            credit, withdrawn = archived
            spent = state.account.credit - credit
            if spent > 0:
                # Restore the archived balance through the ledger so the
                # wallet's credit is bitwise the archived value; the
                # running aggregates already counted these charges, so
                # they are NOT re-added to ``_withdrawn_total``.
                state.account.withdraw(spent, 0.0, CATEGORY_TENANT_CHARGE,
                                       note="rematerialized")
            state.active = index in self._live_indices
        self._states[state.tenant_id] = state
        if len(self._states) > self.peak_materialized:
            self.peak_materialized = len(self._states)
        return state

    # -- overridden registry surface -------------------------------------------

    def register(self, profile: TenantProfile) -> TenantState:
        """Register an ad-hoc tenant; population profiles are generative.

        Explicitly registering a population member would shadow the pure
        derivation (and break the drop-at-churn contract), so only ids
        outside the population's id scheme are accepted.
        """
        if self._source.index_of(profile.tenant_id) is not None:
            raise EconomyError(
                f"tenant {profile.tenant_id!r} is a population member; its "
                "profile is generative and must not be registered explicitly"
            )
        state = super().register(profile)
        self._adhoc_ids.append(profile.tenant_id)
        if len(self._states) > self.peak_materialized:
            self.peak_materialized = len(self._states)
        return state

    def ensure(self, tenant_id: str) -> TenantState:
        state = self._states.get(tenant_id)
        if state is not None:
            return state
        index = self._source.index_of(tenant_id)
        if index is not None:
            if not self._owned_index(index, tenant_id):
                raise EconomyError(
                    f"tenant {tenant_id!r} is not owned by this registry"
                )
            if index >= self._minted:
                self._advance_minted(index + 1)
            return self._materialize(index)
        if not self._owned_index(None, tenant_id):
            raise EconomyError(
                f"tenant {tenant_id!r} is not owned by this registry"
            )
        # Auto-registration dispatches back through :meth:`register`, which
        # records the ad-hoc id and the materialisation peak.
        return super().ensure(tenant_id)

    def activate(self, tenant_id: str, now: float = 0.0
                 ) -> Optional[TenantState]:
        """Observe an arrival; mints bookkeeping, not state.

        Returns the tenant's state only if it happens to be materialised
        already (re-arrival after traffic); a fresh arrival returns
        ``None`` — the state appears at the tenant's first query.
        """
        index = self._source.index_of(tenant_id)
        if index is None:
            if not self._owned_index(None, tenant_id):
                return None
            return super().activate(tenant_id, now)
        if index >= self._minted:
            self._advance_minted(index + 1)
        if not self._owned_index(index, tenant_id):
            return None
        self._live_indices.add(index)
        state = self._states.get(tenant_id)
        if state is not None:
            state.active = True
            state.activated_at_s = now
            state.churned_at_s = None
        return state

    def deactivate(self, tenant_id: str, now: float = 0.0
                   ) -> Optional[TenantState]:
        """Observe a churn; drops the tenant's state, keeping its balance.

        Unlike the eager base class this never raises for a tenant that
        was announced but never materialised — that is the common case at
        scale, and exactly the memory the generative registry saves.
        """
        index = self._source.index_of(tenant_id)
        if index is None:
            if not self._owned_index(None, tenant_id):
                return None
            return super().deactivate(tenant_id, now)
        if not self._owned_index(index, tenant_id):
            return None
        self._live_indices.discard(index)
        state = self._states.pop(tenant_id, None)
        if state is not None:
            state.active = False
            state.churned_at_s = now
            if state.account.total_withdrawn() > 0:
                self._archived[index] = (state.account.credit,
                                         state.account.total_withdrawn())
        return state

    def charge(self, tenant_id: str, amount: float, now: float = 0.0,
               note: str = "") -> None:
        super().charge(tenant_id, amount, now=now, note=note)
        if amount > 0:
            self._withdrawn_total += amount

    def __contains__(self, tenant_id: str) -> bool:
        index = self._source.index_of(tenant_id)
        if index is not None:
            return index < self._minted and self._owned_index(index, tenant_id)
        return super().__contains__(tenant_id)

    def __len__(self) -> int:
        return self._owned_minted + len(self._adhoc_ids)

    def tenant_ids(self) -> List[str]:
        """All owned tenant ids ever minted, in mint order (O(minted))."""
        ids = [tenant_id_for(index) for index in range(self._minted)
               if self._owned_index(index, tenant_id_for(index))]
        ids.extend(self._adhoc_ids)
        return ids

    def active_ids(self) -> List[str]:
        """Ids of currently live owned tenants, in mint order."""
        ids = [tenant_id_for(index) for index in sorted(self._live_indices)]
        ids.extend(tid for tid in self._adhoc_ids
                   if self._states[tid].active)
        return ids

    # ``states()`` intentionally keeps the base behaviour: it exposes the
    # *materialised* states only. Enumerating every minted tenant would
    # defeat the registry's purpose; callers that need population-wide
    # values use ``credit_by_tenant`` / the aggregates below.

    # -- aggregates ------------------------------------------------------------

    def total_credit(self) -> float:
        """Seed credit minted so far minus everything charged (O(1))."""
        return self._seed_total - self._withdrawn_total

    def total_charged(self) -> float:
        """Every query payment charged to owned tenants so far (O(1))."""
        return self._withdrawn_total

    def seed_credit(self) -> float:
        """Seed credit of every owned tenant minted so far (O(1))."""
        return self._seed_total

    def credit_by_tenant(self) -> Dict[str, float]:
        """Wallet balance per owned tenant id, in mint order (O(minted)).

        Bitwise identical to the eager registry's values: materialised
        wallets replayed the same charges, archived wallets froze at
        churn, and an untouched tenant's balance *is* its derivable seed
        credit.
        """
        balances: Dict[str, float] = {}
        for index in range(self._minted):
            tenant_id = tenant_id_for(index)
            if not self._owned_index(index, tenant_id):
                continue
            state = self._states.get(tenant_id)
            if state is not None:
                balances[tenant_id] = state.account.credit
            elif index in self._archived:
                balances[tenant_id] = self._archived[index][0]
            else:
                balances[tenant_id] = self._source.initial_credit_for(index)
        for tenant_id in self._adhoc_ids:
            balances[tenant_id] = self._states[tenant_id].account.credit
        return balances

    def live_tenant_count(self) -> int:
        """Owned tenants that have arrived and not churned (O(live))."""
        live = len(self._live_indices)
        live += sum(1 for tid in self._adhoc_ids if self._states[tid].active)
        return live

    def materialized_tenant_count(self) -> int:
        """Owned tenants currently holding a full state object."""
        return len(self._states)
