"""The all-resource cost model of Section IV-D and Section V.

The cost of a query plan (Eq. 4) is the sum of its execution cost (Eqs. 8
and 9) and the amortised build cost of every structure it uses (Eqs. 5-7).
Structures themselves have build costs (Eqs. 10, 12, 14) and maintenance
costs (Eqs. 11, 13, 15). This package implements all of those equations plus
the multi-node scaling law and the ``f_cpu``/``f_io`` calibration procedure
Section V-B describes.
"""

from repro.costmodel.config import CostModelConfig
from repro.costmodel.scaling import cpu_overhead_factor, speedup_factor
from repro.costmodel.execution import ExecutionCostModel, ExecutionEstimate
from repro.costmodel.build import StructureCostModel
from repro.costmodel.amortization import (
    AmortizationPolicy,
    DecliningAmortization,
    UniformAmortization,
)
from repro.costmodel.calibration import CalibrationResult, calibrate_factors

__all__ = [
    "CostModelConfig",
    "cpu_overhead_factor",
    "speedup_factor",
    "ExecutionCostModel",
    "ExecutionEstimate",
    "StructureCostModel",
    "AmortizationPolicy",
    "UniformAmortization",
    "DecliningAmortization",
    "CalibrationResult",
    "calibrate_factors",
]
