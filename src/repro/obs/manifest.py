"""Run manifests: provenance serialized next to every artifact.

A :class:`RunManifest` pins everything needed to reproduce (or audit) the
run that produced an artifact: the package version, the seed, a hash of
the frozen experiment configuration, the scheme set, interpreter and numpy
versions, the git commit when available, the scaling-mode flags, and the
wall-clock spent per phase. Manifests are written as
``<artifact>.manifest.json`` (or ``report.manifest.json`` inside a report
directory) with sorted keys, so identical runs produce identical bytes up
to the environment and timing fields.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Sequence, Tuple


def config_hash(config: object) -> str:
    """SHA-256 over the canonical JSON form of a frozen config.

    Dataclasses and other non-JSON values serialize through ``repr``,
    which is stable for the frozen configs used here (field order is
    class-declaration order). The hash pins the *whole* configuration, so
    two manifests with equal hashes ran byte-identical cells.
    """
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _git_sha() -> Optional[str]:
    """The current git commit, or ``None`` outside a repository."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5, check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def profile_hotspots(profiler: "cProfile.Profile",
                     top_n: int = 15) -> list:
    """The top-N cumulative-time hotspots of a finished cProfile run.

    Returns JSON-ready dicts (``function``, ``cumtime_s``, ``tottime_s``,
    ``calls``) sorted by cumulative time, ready to fold into a manifest's
    ``extra`` under ``profile_top``. Spot-precision floats are rounded to
    microseconds so manifests stay diff-friendly.
    """
    import pstats

    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    hotspots = []
    for func in stats.fcn_list[:top_n]:  # type: ignore[attr-defined]
        cc, nc, tottime, cumtime, _callers = stats.stats[func]
        filename, lineno, name = func
        if filename == "~":
            location = name  # built-ins have no file
        else:
            location = f"{filename}:{lineno}({name})"
        hotspots.append({
            "function": location,
            "cumtime_s": round(cumtime, 6),
            "tottime_s": round(tottime, 6),
            "calls": nc,
        })
    return hotspots


def _numpy_version() -> Optional[str]:
    try:
        import numpy
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        return None
    return numpy.__version__


@dataclass(frozen=True)
class RunManifest:
    """Provenance of one run/artifact (see module docstring)."""

    version: str
    command: str
    seed: Optional[int]
    config_hash: str
    schemes: Tuple[str, ...]
    python_version: str
    platform: str
    numpy_version: Optional[str]
    git_sha: Optional[str]
    shards: int = 1
    cache_partitions: int = 1
    placement: str = "hash"
    planning: str = "scalar"
    phase_timings_s: Tuple[Tuple[str, float], ...] = ()
    extra: Tuple[Tuple[str, object], ...] = field(default_factory=tuple)

    def to_dict(self) -> Dict[str, object]:
        """The manifest as a JSON-ready dict."""
        payload: Dict[str, object] = {
            "manifest_version": 1,
            "version": self.version,
            "command": self.command,
            "seed": self.seed,
            "config_hash": self.config_hash,
            "schemes": list(self.schemes),
            "python_version": self.python_version,
            "platform": self.platform,
            "numpy_version": self.numpy_version,
            "git_sha": self.git_sha,
            "shards": self.shards,
            "cache_partitions": self.cache_partitions,
            "placement": self.placement,
            "planning": self.planning,
            "phase_timings_s": {name: seconds
                               for name, seconds in self.phase_timings_s},
        }
        for key, value in self.extra:
            payload[key] = value
        return payload

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, indented)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    def write(self, path: str) -> None:
        """Write the manifest to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")


def build_manifest(command: str, *,
                   seed: Optional[int] = None,
                   config: object = None,
                   schemes: Sequence[str] = (),
                   shards: int = 1,
                   cache_partitions: int = 1,
                   placement: str = "hash",
                   planning: str = "scalar",
                   phase_timings_s: Optional[Mapping[str, float]] = None,
                   extra: Optional[Mapping[str, object]] = None
                   ) -> RunManifest:
    """Collect the environment and assemble a :class:`RunManifest`.

    The version stamped here is the same string ``repro --version``
    prints, so artifacts and the CLI can never disagree about provenance.
    """
    from repro import __version__

    timings = phase_timings_s or {}
    return RunManifest(
        version=__version__,
        command=command,
        seed=seed,
        config_hash=config_hash(config),
        schemes=tuple(schemes),
        python_version=platform.python_version(),
        platform=sys.platform,
        numpy_version=_numpy_version(),
        git_sha=_git_sha(),
        shards=shards,
        cache_partitions=cache_partitions,
        placement=placement,
        planning=planning,
        phase_timings_s=tuple(sorted(timings.items())),
        extra=tuple(sorted((extra or {}).items())),
    )
