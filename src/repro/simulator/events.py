"""A minimal discrete-event core.

The current experiments only need query-arrival events, but the queue is
generic so extensions (periodic maintenance settlements, asynchronous build
completions) can be added without restructuring the simulation loop.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.workload.query import Query


@dataclass(frozen=True)
class Event:
    """Base event: something that happens at a simulated instant."""

    time_s: float

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise SimulationError(f"event time must be non-negative, got {self.time_s}")


@dataclass(frozen=True)
class QueryArrivalEvent(Event):
    """A user query arriving at the coordinator."""

    query: Query = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.query is None:
            raise SimulationError("QueryArrivalEvent requires a query")


class EventQueue:
    """A time-ordered event queue with FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """Whether any events remain."""
        return not self._heap

    def push(self, event: Event) -> None:
        """Schedule an event."""
        heapq.heappush(self._heap, (event.time_s, next(self._counter), event))

    def push_all(self, events) -> None:
        """Schedule many events."""
        for event in events:
            self.push(event)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        _, _, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
