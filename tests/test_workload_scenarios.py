"""Tests for the scenario-diverse arrival processes and the registry."""

import pytest

from repro.errors import WorkloadError
from repro.workload.arrival import PhaseChange
from repro.workload.scenarios import (
    SCENARIO_NAMES,
    BurstyArrival,
    DiurnalArrival,
    PhaseShiftArrival,
    build_scenario,
    drifting_mix_workload,
)
from repro.workload.generator import WorkloadSpec
from repro.workload.templates import paper_templates


def assert_non_decreasing(times):
    assert all(later >= earlier for earlier, later in zip(times, times[1:]))


class TestBurstyArrival:
    def test_burst_shape(self):
        process = BurstyArrival(burst_size=3, burst_interval_s=1.0, idle_gap_s=10.0)
        times = process.arrival_times(7)
        assert times == [0.0, 1.0, 2.0, 12.0, 13.0, 14.0, 24.0]

    def test_mean_interarrival(self):
        process = BurstyArrival(burst_size=4, burst_interval_s=2.0, idle_gap_s=14.0)
        # One cycle: 3 gaps of 2 s + one 14 s gap over 4 queries.
        assert process.mean_interarrival == pytest.approx(5.0)

    def test_phase_changes_mark_burst_starts(self):
        process = BurstyArrival(burst_size=3, burst_interval_s=1.0, idle_gap_s=10.0)
        changes = process.phase_changes(7)
        assert [change.time_s for change in changes] == [12.0, 24.0]
        assert all(change.label == "burst-start" for change in changes)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            BurstyArrival(burst_size=0, burst_interval_s=1.0, idle_gap_s=1.0)
        with pytest.raises(WorkloadError):
            BurstyArrival(burst_size=2, burst_interval_s=-1.0, idle_gap_s=1.0)


class TestDiurnalArrival:
    def test_times_are_non_decreasing_and_deterministic(self):
        process = DiurnalArrival(mean_interval=5.0, period_s=100.0)
        first = process.arrival_times(50)
        second = process.arrival_times(50)
        assert first == second
        assert_non_decreasing(first)

    def test_rate_actually_oscillates(self):
        process = DiurnalArrival(mean_interval=10.0, period_s=200.0, amplitude=0.9)
        times = process.arrival_times(40)
        gaps = [later - earlier for earlier, later in zip(times, times[1:])]
        assert min(gaps) < 10.0 < max(gaps)

    def test_seeded_variant_is_stochastic_but_reproducible(self):
        seeded = DiurnalArrival(mean_interval=5.0, period_s=100.0, seed=3)
        assert seeded.arrival_times(30) == seeded.arrival_times(30)
        assert seeded.arrival_times(30) != DiurnalArrival(
            mean_interval=5.0, period_s=100.0).arrival_times(30)

    def test_phase_changes_every_half_period(self):
        process = DiurnalArrival(mean_interval=1.0, period_s=20.0, amplitude=0.5)
        changes = process.phase_changes(100)
        assert changes
        assert [change.time_s for change in changes[:3]] == [10.0, 20.0, 30.0]
        assert changes[0].label == "falling"
        assert changes[1].label == "rising"

    def test_invalid_amplitude_rejected(self):
        with pytest.raises(WorkloadError):
            DiurnalArrival(mean_interval=1.0, period_s=10.0, amplitude=1.0)


class TestPhaseShiftArrival:
    def test_piecewise_gaps(self):
        process = PhaseShiftArrival(intervals_s=(1.0, 5.0), queries_per_phase=2)
        times = process.arrival_times(6)
        # Queries 0-1 in the 1 s phase, 2-3 in the 5 s phase, 4-5 back to 1 s.
        assert times == [0.0, 1.0, 6.0, 11.0, 12.0, 13.0]

    def test_phase_changes_at_each_shift(self):
        process = PhaseShiftArrival(intervals_s=(1.0, 5.0), queries_per_phase=2)
        changes = process.phase_changes(6)
        assert [change.phase_index for change in changes] == [1, 2]
        assert_non_decreasing([change.time_s for change in changes])

    def test_mean_interarrival(self):
        process = PhaseShiftArrival(intervals_s=(2.0, 6.0), queries_per_phase=3)
        assert process.mean_interarrival == pytest.approx(4.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(WorkloadError):
            PhaseShiftArrival(intervals_s=(), queries_per_phase=1)
        with pytest.raises(WorkloadError):
            PhaseShiftArrival(intervals_s=(1.0,), queries_per_phase=0)


class TestDriftingMix:
    def test_phases_draw_from_their_pools(self):
        names = [template.name for template in paper_templates()]
        spec = WorkloadSpec(query_count=60, interarrival_s=1.0, seed=5)
        queries, changes = drifting_mix_workload(
            spec, [names[:2], names[2:4]])
        assert len(queries) == 60
        first, second = queries[:30], queries[30:]
        assert {query.template_name for query in first} <= set(names[:2])
        assert {query.template_name for query in second} <= set(names[2:4])
        assert len(changes) == 1
        assert changes[0].time_s == second[0].arrival_time

    def test_ids_and_times_stay_globally_ordered(self):
        names = [template.name for template in paper_templates()]
        spec = WorkloadSpec(query_count=45, interarrival_s=2.0, seed=5)
        queries, _ = drifting_mix_workload(spec, [names[:3], names[3:5], names[5:]])
        assert [query.query_id for query in queries] == list(range(45))
        assert_non_decreasing([query.arrival_time for query in queries])

    def test_empty_phase_list_rejected(self):
        with pytest.raises(WorkloadError):
            drifting_mix_workload(WorkloadSpec(query_count=10), [])


class TestScenarioRegistry:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_every_scenario_generates_a_valid_workload(self, name):
        scenario = build_scenario(name, query_count=40, interarrival_s=2.0, seed=1)
        assert scenario.query_count == 40
        assert [query.query_id for query in scenario.queries] == list(range(40))
        assert_non_decreasing([query.arrival_time for query in scenario.queries])
        assert all(isinstance(change, PhaseChange)
                   for change in scenario.phase_changes)
        assert_non_decreasing([change.time_s for change in scenario.phase_changes])

    def test_non_stationary_scenarios_announce_phases(self):
        for name in ("bursty", "phase-shift", "mix-drift"):
            scenario = build_scenario(name, query_count=60, interarrival_s=2.0)
            assert scenario.phase_changes, name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(WorkloadError):
            build_scenario("tsunami")

    def test_invalid_sizes_rejected(self):
        with pytest.raises(WorkloadError):
            build_scenario("fixed", query_count=0)
        with pytest.raises(WorkloadError):
            build_scenario("fixed", interarrival_s=0.0)

    def test_scenario_runs_through_the_kernel(self, system):
        from repro.simulator.simulation import CloudSimulation

        scenario = build_scenario("bursty", query_count=30, interarrival_s=2.0)
        result = CloudSimulation(system.scheme("bypass")).run(
            scenario.queries, phase_changes=scenario.phase_changes)
        assert result.summary.query_count == 30
