"""Unit-conversion helpers shared by the pricing and cost-model layers.

Cloud price lists quote prices per GB-month, per instance-hour, or per GB
transferred, while the simulator internally accounts for bytes and seconds.
These helpers keep the conversions in one place so the rest of the code never
multiplies magic numbers.
"""

from __future__ import annotations

from repro import constants
from repro.errors import PricingError


def per_hour_to_per_second(price_per_hour: float) -> float:
    """Convert an hourly price (e.g. an EC2 instance-hour) to a per-second rate."""
    _require_non_negative(price_per_hour, "price_per_hour")
    return price_per_hour / constants.SECONDS_PER_HOUR


def per_gb_month_to_per_byte_second(price_per_gb_month: float) -> float:
    """Convert a storage price quoted per GB-month into a per-byte-second rate."""
    _require_non_negative(price_per_gb_month, "price_per_gb_month")
    return price_per_gb_month / constants.GB / constants.SECONDS_PER_MONTH


def per_gb_to_per_byte(price_per_gb: float) -> float:
    """Convert a transfer price quoted per GB into a per-byte rate."""
    _require_non_negative(price_per_gb, "price_per_gb")
    return price_per_gb / constants.GB


def per_million_ops_to_per_op(price_per_million: float) -> float:
    """Convert an I/O price quoted per million operations into a per-op rate."""
    _require_non_negative(price_per_million, "price_per_million")
    return price_per_million / 1_000_000.0


def megabits_per_second_to_bytes_per_second(mbps: float) -> float:
    """Convert a link speed in Mbps into bytes per second."""
    if mbps <= 0:
        raise PricingError(f"throughput must be positive, got {mbps}")
    return mbps * constants.MB / 8.0


def bytes_to_gigabytes(size_bytes: float) -> float:
    """Express a byte count in (decimal) gigabytes."""
    _require_non_negative(size_bytes, "size_bytes")
    return size_bytes / constants.GB


def gigabytes_to_bytes(size_gb: float) -> int:
    """Express a (decimal) gigabyte count in bytes, rounded to whole bytes."""
    _require_non_negative(size_gb, "size_gb")
    return int(round(size_gb * constants.GB))


def format_dollars(amount: float) -> str:
    """Render a dollar amount the way the experiment reports print it."""
    if abs(amount) >= 100:
        return f"${amount:,.0f}"
    if abs(amount) >= 1:
        return f"${amount:,.2f}"
    return f"${amount:.4f}"


def _require_non_negative(value: float, name: str) -> None:
    if value < 0:
        raise PricingError(f"{name} must be non-negative, got {value}")
