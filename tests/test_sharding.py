"""Tests for the process-sharded tenant execution subsystem.

Covers the partitioner's stability, the shard-scoped registry's ownership
gates, the worker/coordinator/merge pipeline, the determinism barriers,
and — the acceptance invariant — byte-identical report tables between
sharded and unsharded runs for the same seed.
"""

import dataclasses

import pytest

from repro.economy.tenancy import TenantProfile, TenantRegistry
from repro.economy.user_model import UserModel
from repro.errors import ShardingError
from repro.experiments.tenants import (
    TenantExperimentConfig,
    build_population,
    run_tenant_cell,
    run_tenant_experiment,
    tenant_aggregate_table,
    top_tenant_table,
)
from repro.sharding import (
    ShardCoordinator,
    ShardImbalanceWarning,
    ShardPlan,
    ShardScopedRegistry,
    ShardTask,
    TenantPartitioner,
    merge_shard_results,
    run_shard,
    stable_tenant_hash,
)
from repro.workload.query import Query

QUICK = dict(tenant_count=12, query_count=60, interarrival_s=1.0, seed=0)


def _query(tenant_id: str) -> Query:
    return Query(query_id=0, template_name="t", table_name="lineitem",
                 predicates=(), projection_columns=("l_quantity",),
                 tenant_id=tenant_id)


class TestPartitioner:
    def test_hash_is_stable_and_spread(self):
        partitioner = TenantPartitioner(shard_count=4)
        ids = [f"t{i:05d}" for i in range(200)]
        first = [partitioner.shard_of(tenant_id) for tenant_id in ids]
        again = [TenantPartitioner(4).shard_of(tenant_id) for tenant_id in ids]
        assert first == again
        assert all(0 <= shard < 4 for shard in first)
        assert len(set(first)) == 4  # 200 ids cover every shard

    def test_hash_survives_process_boundary(self):
        # blake2b, not the salted builtin: a subprocess must agree.
        import os
        import subprocess
        import sys

        import repro

        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        expected = stable_tenant_hash("t00042")
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.sharding import stable_tenant_hash;"
             "print(stable_tenant_hash('t00042'))"],
            capture_output=True, text=True, check=True,
            env={**os.environ, "PYTHONPATH": src},
        )
        assert int(out.stdout.strip()) == expected

    def test_single_shard_owns_everything(self):
        partitioner = TenantPartitioner(1)
        assert partitioner.shard_of("anything") == 0
        assert partitioner.owns(0, "anything")

    def test_split_partitions_without_loss(self):
        ids = [f"t{i:05d}" for i in range(50)]
        parts = TenantPartitioner(3).split(ids)
        assert sorted(sum(parts, [])) == sorted(ids)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ShardingError):
            TenantPartitioner(0)
        with pytest.raises(ShardingError):
            TenantPartitioner(2).shard_of("")
        with pytest.raises(ShardingError):
            TenantPartitioner(2).owns(2, "a")


class TestShardScopedRegistry:
    def _registry(self, shard_index, count=8, shards=2):
        profiles = tuple(TenantProfile(f"t{i:05d}", initial_credit=10.0)
                         for i in range(count))
        partitioner = TenantPartitioner(shards)
        return (ShardScopedRegistry(profiles, partitioner, shard_index),
                partitioner, profiles)

    def test_materialises_only_owned_states(self):
        registry, partitioner, profiles = self._registry(0)
        owned = [p.tenant_id for p in profiles
                 if partitioner.owns(0, p.tenant_id)]
        assert registry.tenant_ids() == owned
        assert registry.population_size == len(profiles)

    def test_foreign_charge_is_tallied_not_booked(self):
        registry, partitioner, profiles = self._registry(0)
        foreign = next(p.tenant_id for p in profiles
                       if not partitioner.owns(0, p.tenant_id))
        registry.charge(foreign, 3.0, now=1.0)
        assert registry.foreign_charged == 3.0
        assert registry.foreign_charge_count == 1
        assert registry.total_charged() == 0.0  # no wallet was touched

    def test_foreign_state_never_materialises(self):
        registry, partitioner, profiles = self._registry(0)
        foreign = next(p.tenant_id for p in profiles
                       if not partitioner.owns(0, p.tenant_id))
        with pytest.raises(ShardingError):
            registry.ensure(foreign)
        assert registry.activate(foreign) is None
        assert registry.deactivate(foreign) is None
        registry.record_regret(foreign, [], 1.0)
        assert foreign not in registry

    def test_foreign_budget_matches_unsharded_bitwise(self):
        profiles = tuple(TenantProfile(f"t{i:05d}", initial_credit=10.0,
                                       budget_multiplier=1.0 + i / 7.0)
                         for i in range(8))
        base = TenantRegistry()
        base.register_all(profiles)
        model = UserModel()
        partitioner = TenantPartitioner(2)
        for shard in (0, 1):
            scoped = ShardScopedRegistry(profiles, partitioner, shard)
            for profile in profiles:
                query = _query(profile.tenant_id)
                expected = base.budget_for(query, 10.0, 4.0, model)
                observed = scoped.budget_for(query, 10.0, 4.0, model)
                assert type(observed) is type(expected)
                assert repr(observed) == repr(expected)

    def test_owned_wallets_carry_global_registration_index(self):
        registry, partitioner, profiles = self._registry(1)
        wallets = registry.owned_wallets()
        assert wallets  # shard 1 owns someone in this population
        for index, tenant_id, credit in wallets:
            assert profiles[index].tenant_id == tenant_id
            assert credit == 10.0

    def test_duplicate_population_ids_rejected(self):
        profiles = (TenantProfile("dup"), TenantProfile("dup"))
        with pytest.raises(ShardingError):
            ShardScopedRegistry(profiles, TenantPartitioner(2), 0)

    def test_register_rejects_foreign_profile(self):
        registry, partitioner, _ = self._registry(0)
        adhoc_foreign = next(
            f"x{i}" for i in range(100)
            if not partitioner.owns(0, f"x{i}"))
        with pytest.raises(ShardingError):
            registry.register(TenantProfile(adhoc_foreign))

    def test_adhoc_tenants_merge_in_global_first_touch_order(self):
        # "zeta" (shard 1) is touched before "alpha" (shard 0): the merged
        # wallet order must be first-touch (zeta, alpha) like the unsharded
        # registry's registration order, not lexicographic.
        profiles = tuple(TenantProfile(f"t{i:05d}", initial_credit=5.0)
                         for i in range(4))
        partitioner = TenantPartitioner(2)
        base = TenantRegistry()
        base.register_all(profiles)
        scoped = [ShardScopedRegistry(profiles, partitioner, shard)
                  for shard in (0, 1)]
        assert partitioner.shard_of("zeta") != partitioner.shard_of("alpha")
        for tenant_id in ("zeta", "alpha"):  # the replicated call stream
            base.charge(tenant_id, 0.5, now=1.0)
            for registry in scoped:
                registry.charge(tenant_id, 0.5, now=1.0)
        merged = sorted(
            (entry for registry in scoped
             for entry in registry.owned_wallets()),
            key=lambda entry: (entry[0], entry[1]),
        )
        assert [tenant_id for _, tenant_id, _ in merged] == \
            list(base.credit_by_tenant())

    def test_zero_charge_reserves_no_adhoc_slot(self):
        # Base charge() returns before ensure() on amount == 0; the scoped
        # registry must mirror that or ad-hoc ordering diverges.
        profiles = (TenantProfile("t00000", initial_credit=5.0),)
        partitioner = TenantPartitioner(2)
        base = TenantRegistry()
        base.register_all(profiles)
        scoped = [ShardScopedRegistry(profiles, partitioner, shard)
                  for shard in (0, 1)]
        for registry in (base, *scoped):
            registry.charge("zeta", 0.0, now=1.0)   # must not register zeta
            registry.charge("alpha", 1.0, now=1.0)
            registry.charge("zeta", 1.0, now=2.0)   # now zeta registers
        merged = sorted(
            (entry for registry in scoped
             for entry in registry.owned_wallets()),
            key=lambda entry: (entry[0], entry[1]),
        )
        assert [tenant_id for _, tenant_id, _ in merged] == \
            list(base.credit_by_tenant())


class TestWorkerAndMerge:
    def test_shards_cover_population_disjointly(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 3)) for index in range(3)]
        owned_ids = [tenant_id for result in results
                     for _, tenant_id, _ in result.wallets]
        assert len(owned_ids) == len(set(owned_ids))
        assert len(owned_ids) == build_population(config).tenant_count
        # The replicated summary agrees bitwise on every shard.
        assert results[0].summary == results[1].summary == results[2].summary

    def test_merge_rejects_missing_and_duplicate_shards(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 2)) for index in range(2)]
        with pytest.raises(ShardingError):
            merge_shard_results(results[:1], config)
        with pytest.raises(ShardingError):
            merge_shard_results([results[0], results[0]], config)

    def test_merge_rejects_diverged_summary(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 2)) for index in range(2)]
        tampered = dataclasses.replace(
            results[1],
            summary=dataclasses.replace(results[1].summary,
                                        operating_cost=123.456),
        )
        with pytest.raises(ShardingError, match="determinism barrier"):
            merge_shard_results([results[0], tampered], config)

    def test_merge_rejects_diverged_checkpoint(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 2)) for index in range(2)]
        assert results[1].checkpoints
        bad_point = dataclasses.replace(results[1].checkpoints[-1],
                                        provider_credit=-1.0)
        tampered = dataclasses.replace(
            results[1],
            checkpoints=results[1].checkpoints[:-1] + (bad_point,),
        )
        with pytest.raises(ShardingError, match="determinism barrier"):
            merge_shard_results([results[0], tampered], config)

    def test_merge_rejects_mistallied_foreign_charges(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 2)) for index in range(2)]
        tampered = dataclasses.replace(
            results[1], foreign_charged=results[1].foreign_charged + 1.0)
        with pytest.raises(ShardingError, match="conservation"):
            merge_shard_results([results[0], tampered], config)

    def test_merge_rejects_conservation_violation(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        results = [run_shard(ShardTask(config, index, 2)) for index in range(2)]
        # Shift a wallet balance: the shard-local books no longer balance.
        index, tenant_id, credit = results[1].wallets[0]
        tampered = dataclasses.replace(
            results[1],
            wallets=((index, tenant_id, credit + 5.0),)
            + results[1].wallets[1:],
            checkpoints=tuple(
                dataclasses.replace(
                    point, owned_wallet_credit=point.owned_wallet_credit + 5.0)
                for point in results[1].checkpoints
            ),
        )
        with pytest.raises(ShardingError, match="conservation"):
            merge_shard_results([results[0], tampered], config)

    def test_invalid_task_rejected(self):
        config = TenantExperimentConfig(scheme="econ-cheap", **QUICK)
        with pytest.raises(ShardingError):
            ShardTask(config, shard_index=2, shard_count=2)
        with pytest.raises(ShardingError):
            run_shard("not a task")


class TestCoordinator:
    def test_plan_validation(self):
        with pytest.raises(ShardingError):
            ShardPlan(shard_count=0)
        with pytest.raises(ShardingError):
            ShardPlan(shard_count=1, max_workers=0)
        with pytest.raises(ShardingError):
            ShardCoordinator(2).run_cells([])

    def test_imbalance_warning(self):
        config = TenantExperimentConfig(
            scheme="econ-cheap", tenant_count=2, query_count=10,
            interarrival_s=1.0, seed=0)
        with pytest.warns(ShardImbalanceWarning):
            ShardCoordinator(5).tasks_for(config)

    def test_report_audit_trail(self):
        config = TenantExperimentConfig(scheme="econ-cheap",
                                        settlement_period_s=10.0, **QUICK)
        report = ShardCoordinator(2).run_cell(config)
        assert report.shard_count == 2
        assert sum(report.owned_tenants_per_shard) == \
            report.cell.population_size
        assert report.barriers_verified > 1  # periodic + final
        assert report.max_conservation_residual < 1e-6


class TestByteIdentity:
    """The acceptance invariant: sharded == unsharded, byte for byte."""

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_tables_identical_for_shard_counts(self, shards):
        config = TenantExperimentConfig(scheme="econ-cheap", churn_period=20,
                                        **QUICK)
        base = run_tenant_cell(config)
        cell = ShardCoordinator(shards).run_cell(config).cell
        assert tenant_aggregate_table(cell) == tenant_aggregate_table(base)
        assert top_tenant_table(cell) == top_tenant_table(base)
        assert cell.summary == base.summary
        assert cell.wallet_credit == base.wallet_credit
        assert cell.tenants == base.tenants

    def test_process_pool_path_identical(self):
        config = TenantExperimentConfig(scheme="econ-fast", **QUICK)
        base = run_tenant_cell(config)
        cell = ShardCoordinator(2, max_workers=2).run_cell(config).cell
        assert tenant_aggregate_table(cell) == tenant_aggregate_table(base)
        assert top_tenant_table(cell) == top_tenant_table(base)

    def test_bypass_scheme_shards_without_economy(self):
        config = TenantExperimentConfig(scheme="bypass", **QUICK)
        base = run_tenant_cell(config)
        report = ShardCoordinator(3).run_cell(config)
        assert tenant_aggregate_table(report.cell) == \
            tenant_aggregate_table(base)
        assert report.cell.wallet_credit == ()
        assert report.barriers_verified == 0

    def test_experiment_entry_point_with_shards_and_jobs(self):
        configs = [TenantExperimentConfig(scheme=name, **QUICK)
                   for name in ("econ-cheap", "econ-fast")]
        plain = run_tenant_experiment(configs)
        sharded = run_tenant_experiment(configs, jobs=2, shards=2)
        assert [tenant_aggregate_table(cell) for cell in plain] == \
            [tenant_aggregate_table(cell) for cell in sharded]

    def test_invalid_shards_rejected(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_tenant_experiment(
                [TenantExperimentConfig(**QUICK)], shards=0)
