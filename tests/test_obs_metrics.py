"""MetricsTimeseries unit tests: sampling, merging, tee, emission."""

import json

from repro.obs.metrics import (
    METRICS_SCHEMA_VERSION,
    MetricsTimeseries,
    RecorderTee,
    combined_recorder,
    metrics_part,
    trace_part,
)
from repro.obs.trace import TraceRecorder


class TestSampling:
    def test_samples_carry_counter_deltas_not_cumulative_values(self):
        metrics = MetricsTimeseries()
        metrics.count("engine:queries", 10)
        metrics.sample(time_s=60.0)
        metrics.count("engine:queries", 5)
        metrics.sample(time_s=120.0)
        first, second = metrics.samples
        assert first["counters"]["engine:queries"] == 10
        assert second["counters"]["engine:queries"] == 5
        # Cumulative value reconstructs by summing the deltas.
        assert metrics.counter("engine:queries") == 15

    def test_unmoved_counters_are_omitted_from_the_sample(self):
        metrics = MetricsTimeseries()
        metrics.count("engine:queries", 3)
        metrics.sample(time_s=60.0)
        metrics.count("cache:admit")
        metrics.sample(time_s=120.0)
        second = metrics.samples[1]
        assert "engine:queries" not in second["counters"]
        assert second["counters"]["cache:admit"] == 1

    def test_hit_rate_derives_from_the_epoch_deltas(self):
        metrics = MetricsTimeseries()
        metrics.count("engine:queries", 4)
        metrics.count("engine:cache_hits", 3)
        metrics.sample(time_s=60.0)
        assert metrics.samples[0]["hit_rate"] == 0.75

    def test_batch_occupancy_derives_from_window_events(self):
        metrics = MetricsTimeseries()
        metrics.event("batch_window", time_s=10.0, size=4)
        metrics.event("batch_window", time_s=20.0, size=2)
        metrics.sample(time_s=60.0)
        assert metrics.samples[0]["batch_occupancy"] == 3.0

    def test_epochs_auto_increment_per_source(self):
        metrics = MetricsTimeseries()
        metrics.sample(time_s=60.0)
        metrics.sample(time_s=120.0)
        metrics.sample(time_s=180.0, final=True)
        assert [s["epoch"] for s in metrics.samples] == [1, 2, 3]
        assert [s["final"] for s in metrics.samples] == [False, False, True]

    def test_gauges_ride_the_sample_payload(self):
        metrics = MetricsTimeseries()
        metrics.sample(time_s=60.0, provider_credit=12.5, cache_entries=3)
        sample = metrics.samples[0]
        assert sample["provider_credit"] == 12.5
        assert sample["cache_entries"] == 3

    def test_events_fold_into_counters_without_per_event_storage(self):
        metrics = MetricsTimeseries()
        for _ in range(100):
            metrics.event("QueryArrivalEvent", time_s=1.0)
        metrics.span("settlement", start_s=0.0, end_s=60.0)
        assert metrics.counter("event:QueryArrivalEvent") == 100
        assert metrics.counter("event:settlement") == 1
        assert len(metrics) == 0  # no samples yet, nothing stored per event


class TestAbsorb:
    def test_absorb_keeps_source_tags_and_sums_per_source(self):
        merged = MetricsTimeseries(source="merge")
        for index in range(2):
            shard = MetricsTimeseries(source=f"shard{index}")
            shard.count("engine:queries", 60)
            shard.sample(time_s=60.0)
            merged.absorb(shard)
        assert sorted(merged.counters) == ["shard0", "shard1"]
        # Replicated replays must not double-count across sources.
        assert merged.counter("engine:queries", source="shard0") == 60
        assert len(merged.samples) == 2

    def test_absorbed_emission_is_sorted_and_deterministic(self):
        first = MetricsTimeseries(source="b")
        first.sample(time_s=60.0)
        second = MetricsTimeseries(source="a")
        second.sample(time_s=60.0)
        merged = MetricsTimeseries(source="merge")
        merged.absorb(first)
        merged.absorb(second)
        sources = [s["source"] for s in merged.samples]
        assert sources == ["a", "b"]
        reversed_merge = MetricsTimeseries(source="merge")
        reversed_merge.absorb(second)
        reversed_merge.absorb(first)
        assert merged.jsonl_lines() == reversed_merge.jsonl_lines()


class TestEmission:
    def test_header_samples_and_counters_in_order(self):
        metrics = MetricsTimeseries()
        metrics.count("engine:queries", 6)
        metrics.sample(time_s=60.0, final=True)
        lines = [json.loads(line) for line in metrics.jsonl_lines()]
        assert lines[0]["kind"] == "metrics_header"
        assert lines[0]["schema_version"] == METRICS_SCHEMA_VERSION
        assert lines[0]["samples"] == 1
        assert lines[1]["kind"] == "sample"
        assert lines[2] == {"kind": "counter", "source": "run",
                            "name": "engine:queries", "value": 6}

    def test_write_roundtrips(self, tmp_path):
        metrics = MetricsTimeseries()
        metrics.sample(time_s=60.0)
        path = tmp_path / "m.jsonl"
        metrics.write(str(path))
        assert path.read_text().splitlines() == metrics.jsonl_lines()


class TestTee:
    def test_tee_fans_out_to_both_sinks(self):
        trace = TraceRecorder()
        metrics = MetricsTimeseries()
        tee = RecorderTee(trace, metrics)
        tee.count("cache:admit")
        tee.event("eviction", time_s=5.0)
        tee.span("build", start_s=0.0, end_s=2.0)
        assert trace.counter("cache:admit") == 1
        assert metrics.counter("cache:admit") == 1
        assert metrics.counter("event:eviction") == 1
        assert metrics.counter("event:build") == 1

    def test_combined_recorder_picks_the_minimal_sink(self):
        trace = TraceRecorder()
        metrics = MetricsTimeseries()
        assert combined_recorder(None, None) is None
        assert combined_recorder(trace, None) is trace
        assert combined_recorder(None, metrics) is metrics
        both = combined_recorder(trace, metrics)
        assert isinstance(both, RecorderTee)

    def test_parts_unwrap_any_attached_shape(self):
        trace = TraceRecorder()
        metrics = MetricsTimeseries()
        tee = RecorderTee(trace, metrics)
        assert trace_part(tee) is trace
        assert metrics_part(tee) is metrics
        assert trace_part(trace) is trace
        assert metrics_part(trace) is None
        assert trace_part(metrics) is None
        assert metrics_part(metrics) is metrics
        assert trace_part(None) is None
        assert metrics_part(None) is None
