"""Build and maintenance costs of cache structures (Eqs. 10-15).

* CPU nodes: build cost is boot time times the per-time price (Eq. 10);
  maintenance is the constant per-time uptime price (Eq. 11).
* Table columns: build cost is the network transfer of the column from the
  back-end (Eq. 12); maintenance is its disk footprint (Eq. 13).
* Indexes: build cost is the cost of sorting the key columns in the cache
  (emulated as the ``select ... order by ...`` query of Section V-C) plus the
  transfer cost of any key column not already cached (Eq. 14); maintenance is
  the index's disk footprint (Eq. 15).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.catalog.schema import Schema
from repro.costmodel.config import CostModelConfig
from repro.costmodel.execution import ExecutionCostModel
from repro.errors import ConfigurationError
from repro.structures.base import CacheStructure, StructureKind
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode
from repro.workload.query import Predicate, PredicateKind, Query


class StructureCostModel:
    """Prices the building and maintenance of the three structure types."""

    def __init__(self, execution_model: ExecutionCostModel) -> None:
        self._execution = execution_model

    @property
    def execution_model(self) -> ExecutionCostModel:
        """The execution cost model used to price index sorts and transfers."""
        return self._execution

    @property
    def config(self) -> CostModelConfig:
        """The shared cost-model configuration."""
        return self._execution.config

    @property
    def schema(self) -> Schema:
        """The schema structures are sized against."""
        return self._execution.estimator.schema

    # -- build costs -------------------------------------------------------------

    def build_cost(self, structure: CacheStructure,
                   cached_columns: Optional[Set[str]] = None) -> float:
        """``BuildS(S)`` in dollars.

        Args:
            structure: the structure to price.
            cached_columns: keys of :class:`CachedColumn` structures already in
                the cache; index builds do not pay again for columns that are
                already cached (Eq. 14 sums only over ``T not in Cache``).
        """
        if isinstance(structure, CpuNode):
            return self._build_node()
        if isinstance(structure, CachedColumn):
            return self._build_column(structure)
        if isinstance(structure, CachedIndex):
            return self._build_index(structure, cached_columns or set())
        raise ConfigurationError(f"unknown structure type: {structure!r}")

    def build_time_s(self, structure: CacheStructure,
                     cached_columns: Optional[Set[str]] = None) -> float:
        """Wall-clock seconds needed to build the structure.

        The simulator treats builds as background work (they do not delay the
        triggering query), but the duration is reported in the metrics.
        """
        config = self.config
        if isinstance(structure, CpuNode):
            return config.node_boot_time_s
        if isinstance(structure, CachedColumn):
            size = structure.size_bytes(self.schema)
            return config.network_latency_s + size / config.network_throughput_bps
        if isinstance(structure, CachedIndex):
            cached = cached_columns or set()
            sort_estimate = self._execution.cache_execution(
                self._index_sort_query(structure)
            )
            transfer_time = sum(
                self.build_time_s(column)
                for column in structure.required_columns()
                if column.key not in cached
            )
            return sort_estimate.response_time_s + transfer_time
        raise ConfigurationError(f"unknown structure type: {structure!r}")

    # -- maintenance -----------------------------------------------------------

    def maintenance_rate(self, structure: CacheStructure) -> float:
        """``MaintS(S)`` as a $ per second rate.

        CPU nodes pay the uptime price (Eq. 11); columns and indexes pay for
        their disk footprint (Eqs. 13 and 15). The ``disk_duration_scale``
        of the configuration is applied here.
        """
        config = self.config
        if isinstance(structure, CpuNode):
            return config.node_uptime_rate_per_second
        if isinstance(structure, (CachedColumn, CachedIndex)):
            return structure.size_bytes(self.schema) * config.storage_rate_per_byte_second
        raise ConfigurationError(f"unknown structure type: {structure!r}")

    def maintenance_cost(self, structure: CacheStructure, duration_s: float) -> float:
        """Maintenance cost of keeping ``structure`` for ``duration_s`` seconds."""
        if duration_s < 0:
            raise ConfigurationError(
                f"duration_s must be non-negative, got {duration_s}"
            )
        return self.maintenance_rate(structure) * duration_s

    # -- internals ----------------------------------------------------------------

    def _build_node(self) -> float:
        """Eq. 10: ``BuildN(N) = b * u``."""
        config = self.config
        return config.node_boot_time_s * config.pricing.cpu_node_per_second

    def _build_column(self, column: CachedColumn) -> float:
        """Eq. 12: transfer the column from the back-end over the network."""
        size = column.size_bytes(self.schema)
        return self._execution.transfer(size).dollars

    def _build_index(self, index: CachedIndex, cached_columns: Set[str]) -> float:
        """Eq. 14: sort the key columns in the cache, plus missing-column transfers."""
        sort_estimate = self._execution.cache_execution(self._index_sort_query(index))
        missing_transfer = sum(
            self._build_column(column)
            for column in index.required_columns()
            if column.key not in cached_columns
        )
        return sort_estimate.dollars + missing_transfer

    def _index_sort_query(self, index: CachedIndex) -> Query:
        """The ``select A, B from T order by A, B`` query of Section V-C."""
        return Query(
            query_id=-1 & 0x7FFFFFFF,  # synthetic id, never reported
            template_name=f"__build_{index.key}",
            table_name=index.table_name,
            predicates=(),
            projection_columns=index.column_names,
            order_by_columns=index.column_names,
            aggregation_factor=1.0,
            parallel_fraction=0.9,
            # Sorting is CPU-heavier than a plain scan of the same bytes.
            base_cost_factor=1.5,
        )
