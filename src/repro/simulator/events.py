"""The event hierarchy of the simulation kernel.

Every occurrence the kernel can react to is an :class:`Event` subclass:
query arrivals, periodic maintenance settlements, scheduled
structure-failure checks, and workload phase changes. The queue orders
events by time; **simultaneous events dispatch in a documented, stable
order** so that runs are reproducible regardless of scheduling order:

1. :class:`WorkloadPhaseChangeEvent` (priority 0) — a phase boundary
   applies before anything else that happens at the same instant.
2. :class:`TenantArrivalEvent` (priority 4) and
   :class:`TenantChurnEvent` (priority 6) — the tenant population is
   updated before money moves at the same instant, and an arrival that
   coincides with a churn (a replacement joining as its predecessor
   leaves) activates first.
3. :class:`MaintenanceSettlementEvent` (priority 10) — storage/uptime is
   settled up to the instant *before* simultaneous queries can change
   what is built.
4. Market-shock events — :class:`StructureInvalidationEvent`
   (priority 12), :class:`ProviderPriceShockEvent` (priority 14) and
   :class:`TenantBudgetSqueezeEvent` (priority 16) — dispatch *after*
   the settlement at the same instant (maintenance accrued before the
   shock settles at pre-shock rates) but *before* failure checks and
   queries, so a simultaneous arrival already sees the shocked market.
5. :class:`StructureFailureCheckEvent` (priority 20) — failed structures
   are released before a simultaneous arrival could be served by them.
6. :class:`QueryArrivalEvent` (priority 30) — queries run last.

Unclassified :class:`Event` subclasses default to priority 40 and
dispatch after the built-ins. Events with equal time and equal priority
dispatch in FIFO (insertion) order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import ClassVar, List, Optional, Tuple

from repro.errors import SimulationError
from repro.workload.query import Query


@dataclass(frozen=True)
class Event:
    """Base event: something that happens at a simulated instant.

    ``priority`` is a class-level dispatch rank, not a field: lower ranks
    dispatch first among events scheduled for the same instant (see the
    module docstring for the documented order).
    """

    time_s: float

    priority: ClassVar[int] = 40

    def __post_init__(self) -> None:
        if self.time_s < 0:
            raise SimulationError(f"event time must be non-negative, got {self.time_s}")


@dataclass(frozen=True)
class WorkloadPhaseChangeEvent(Event):
    """The workload entered a new phase (burst start, diurnal swing, drift).

    Emitted by the scenario layer (:mod:`repro.workload.scenarios`);
    handlers may react by re-tuning, logging, or simply counting.
    """

    priority: ClassVar[int] = 0

    phase_index: int = 0
    label: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.phase_index < 0:
            raise SimulationError(
                f"phase_index must be non-negative, got {self.phase_index}"
            )


@dataclass(frozen=True)
class TenantArrivalEvent(Event):
    """A tenant (user account) joins the population.

    Emitted by the population layer (:mod:`repro.workload.population`);
    schemes with a :class:`~repro.economy.tenancy.TenantRegistry` activate
    the tenant, single-tenant schemes just count the event.
    """

    priority: ClassVar[int] = 4

    tenant_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tenant_id:
            raise SimulationError("TenantArrivalEvent requires a tenant_id")


@dataclass(frozen=True)
class TenantChurnEvent(Event):
    """A tenant leaves the population; their wallet and history persist.

    Dispatches after any same-instant :class:`TenantArrivalEvent` so that a
    replacement tenant is active before its predecessor is deactivated.
    """

    priority: ClassVar[int] = 6

    tenant_id: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tenant_id:
            raise SimulationError("TenantChurnEvent requires a tenant_id")


@dataclass(frozen=True)
class MaintenanceSettlementEvent(Event):
    """Charge storage/uptime maintenance accrued up to this instant.

    Attributes:
        period_s: when set, a :class:`~repro.simulator.handlers.PeriodicRescheduler`
            re-schedules the event every ``period_s`` seconds.
        final: marks the trailing settlement that closes a run.
    """

    priority: ClassVar[int] = 10

    period_s: Optional[float] = None
    final: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s is not None and self.period_s <= 0:
            raise SimulationError(
                f"period_s must be positive, got {self.period_s}"
            )


@dataclass(frozen=True)
class StructureInvalidationEvent(Event):
    """A fault destroying cached structures mid-run.

    Models data updates, node loss, or operator intervention: every
    cached structure whose key contains ``predicate`` (empty string
    matches everything) is evicted and must be *re-earned* through the
    normal admission path. Invalidation moves no money — unrecovered
    build cost and unbilled maintenance surface as eviction-loss
    metrics, never as account transfers — so credit conservation is
    untouched by construction.
    """

    priority: ClassVar[int] = 12

    predicate: str = ""
    label: str = ""


@dataclass(frozen=True)
class ProviderPriceShockEvent(Event):
    """The provider reprices storage/build by ``factor`` from this instant.

    A shock window is a *pair* of events: an onset with ``factor != 1``
    and a relief event with ``factor == 1.0`` at the window's end, so the
    piecewise-exact maintenance integral (settled at every event) never
    spans a rate change. Tenants still pay catalog prices — the shock
    scales what the *provider* pays to build and maintain, which is what
    squeezes marginal structures out of profitability.
    """

    priority: ClassVar[int] = 14

    factor: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise SimulationError(
                f"price shock factor must be positive, got {self.factor}"
            )


@dataclass(frozen=True)
class TenantBudgetSqueezeEvent(Event):
    """Every tenant's willingness-to-pay scales by ``factor``.

    Like :class:`ProviderPriceShockEvent`, squeezes are windows expressed
    as an onset/relief event pair (relief carries ``factor == 1.0``).
    Budgets scale at offer time, so charges keep mirroring into tenant
    wallets and conservation stays exact.
    """

    priority: ClassVar[int] = 16

    factor: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 0:
            raise SimulationError(
                f"budget squeeze factor must be positive, got {self.factor}"
            )


@dataclass(frozen=True)
class StructureFailureCheckEvent(Event):
    """Scheduled check releasing structures that failed by idleness.

    Complements the per-query check inside the economy: with long
    inter-arrival gaps a scheduled check can stop maintenance accrual on a
    dead structure *between* arrivals.
    """

    priority: ClassVar[int] = 20

    period_s: Optional[float] = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.period_s is not None and self.period_s <= 0:
            raise SimulationError(
                f"period_s must be positive, got {self.period_s}"
            )


@dataclass(frozen=True)
class QueryArrivalEvent(Event):
    """A user query arriving at the coordinator."""

    priority: ClassVar[int] = 30

    query: Query = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.query is None:
            raise SimulationError("QueryArrivalEvent requires a query")


class EventQueue:
    """A time-ordered event queue with (priority, FIFO) tie-breaking.

    Events pop in ascending ``(time_s, priority, insertion order)`` — the
    stable order the module docstring documents.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._counter = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def empty(self) -> bool:
        """Whether any events remain."""
        return not self._heap

    def push(self, event: Event) -> None:
        """Schedule an event."""
        heapq.heappush(
            self._heap,
            (event.time_s, event.priority, next(self._counter), event),
        )

    def push_all(self, events) -> None:
        """Schedule many events."""
        for event in events:
            self.push(event)

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from an empty event queue")
        _, _, _, event = heapq.heappop(self._heap)
        return event

    def peek_time(self) -> Optional[float]:
        """Time of the earliest event, or ``None`` when empty."""
        if not self._heap:
            return None
        return self._heap[0][0]
