"""A TPC-H-like schema scaled to the paper's 2.5 TB back-end database.

Section VII-A operates the cache "under a TPCH-based workload ... against a
2.5 TB back-end database". We reconstruct the eight TPC-H tables with their
standard per-scale-factor cardinalities and realistic column widths, and
scale the row counts so that the total on-disk size matches a requested byte
budget (2.5 TB by default).

The column widths are the usual TPC-H datatype widths (4-byte integers and
dates, 8-byte decimals, fixed/variable character fields at their average
length), so relative table sizes — which is what drives caching decisions —
match the benchmark closely: LINEITEM and ORDERS dominate, the dimension
tables are small.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro import constants
from repro.catalog.schema import Column, Schema, Table
from repro.errors import SchemaError


@dataclass(frozen=True)
class ColumnSpec:
    """Width and distinctness of one TPC-H column.

    ``distinct_fraction`` describes columns whose number of distinct values
    grows with the table (keys, prices, comments). Columns with a fixed
    domain regardless of scale (flags, ship modes, segments, dates) instead
    carry an absolute ``distinct_count``, which takes precedence.
    """

    name: str
    width_bytes: int
    distinct_fraction: float = 1.0
    distinct_count: int = 0

    def effective_fraction(self, row_count: int) -> float:
        """Distinct-value fraction of the column at a given table size."""
        if self.distinct_count:
            fraction = self.distinct_count / row_count
        else:
            fraction = self.distinct_fraction
        minimum = 1.0 / row_count
        return min(1.0, max(fraction, minimum))


@dataclass(frozen=True)
class TableSpec:
    """Cardinality (rows per scale factor) and columns of one TPC-H table."""

    name: str
    rows_per_scale_factor: int
    fixed_row_count: int
    columns: Tuple[ColumnSpec, ...]

    def row_count(self, scale_factor: float) -> int:
        """Row count of the table at a given TPC-H scale factor."""
        if self.fixed_row_count:
            return self.fixed_row_count
        return max(1, int(round(self.rows_per_scale_factor * scale_factor)))

    @property
    def row_width_bytes(self) -> int:
        """Average row width from the column specs."""
        return sum(column.width_bytes for column in self.columns)


def _spec(name: str, rows_per_sf: int, columns: Sequence[Tuple[str, int, float]],
          fixed: int = 0) -> TableSpec:
    """Build a table spec from ``(column, width, distinctness)`` triples.

    The distinctness value is interpreted by type: an ``int`` is an absolute
    distinct-value count (fixed-domain columns such as flags or ship modes),
    a ``float`` is the distinct fraction relative to the row count (keys,
    prices, free text).
    """
    column_specs = []
    for column_name, width, distinct in columns:
        if isinstance(distinct, int) and not isinstance(distinct, bool):
            column_specs.append(ColumnSpec(
                name=column_name, width_bytes=width, distinct_count=distinct,
            ))
        else:
            column_specs.append(ColumnSpec(
                name=column_name, width_bytes=width, distinct_fraction=float(distinct),
            ))
    return TableSpec(name=name, rows_per_scale_factor=rows_per_sf,
                     fixed_row_count=fixed, columns=tuple(column_specs))


#: The eight TPC-H tables. Row counts are the standard cardinalities per unit
#: scale factor (SF=1 is roughly 1 GB of raw data); NATION and REGION have
#: fixed cardinality regardless of scale.
TPCH_TABLE_SPECS: Tuple[TableSpec, ...] = (
    _spec("lineitem", 6_000_000, [
        ("l_orderkey", 4, 0.25),
        ("l_partkey", 4, 0.033),
        ("l_suppkey", 4, 0.0017),
        ("l_linenumber", 4, 7),
        ("l_quantity", 8, 50),
        ("l_extendedprice", 8, 0.15),
        ("l_discount", 8, 11),
        ("l_tax", 8, 9),
        ("l_returnflag", 1, 3),
        ("l_linestatus", 1, 2),
        ("l_shipdate", 4, 2526),
        ("l_commitdate", 4, 2466),
        ("l_receiptdate", 4, 2555),
        ("l_shipinstruct", 25, 4),
        ("l_shipmode", 10, 7),
        ("l_comment", 27, 0.9),
    ]),
    _spec("orders", 1_500_000, [
        ("o_orderkey", 4, 1.0),
        ("o_custkey", 4, 0.1),
        ("o_orderstatus", 1, 3),
        ("o_totalprice", 8, 0.9),
        ("o_orderdate", 4, 2406),
        ("o_orderpriority", 15, 5),
        ("o_clerk", 15, 6.7e-4),
        ("o_shippriority", 4, 1),
        ("o_comment", 49, 0.95),
    ]),
    _spec("partsupp", 800_000, [
        ("ps_partkey", 4, 0.25),
        ("ps_suppkey", 4, 0.0125),
        ("ps_availqty", 4, 9999),
        ("ps_supplycost", 8, 0.12),
        ("ps_comment", 124, 0.98),
    ]),
    _spec("part", 200_000, [
        ("p_partkey", 4, 1.0),
        ("p_name", 33, 0.99),
        ("p_mfgr", 25, 5),
        ("p_brand", 10, 25),
        ("p_type", 21, 150),
        ("p_size", 4, 50),
        ("p_container", 10, 40),
        ("p_retailprice", 8, 0.11),
        ("p_comment", 15, 0.65),
    ]),
    _spec("customer", 150_000, [
        ("c_custkey", 4, 1.0),
        ("c_name", 18, 1.0),
        ("c_address", 25, 1.0),
        ("c_nationkey", 4, 25),
        ("c_phone", 15, 1.0),
        ("c_acctbal", 8, 0.9),
        ("c_mktsegment", 10, 5),
        ("c_comment", 73, 1.0),
    ]),
    _spec("supplier", 10_000, [
        ("s_suppkey", 4, 1.0),
        ("s_name", 18, 1.0),
        ("s_address", 25, 1.0),
        ("s_nationkey", 4, 25),
        ("s_phone", 15, 1.0),
        ("s_acctbal", 8, 0.95),
        ("s_comment", 63, 1.0),
    ]),
    _spec("nation", 0, [
        ("n_nationkey", 4, 1.0),
        ("n_name", 25, 1.0),
        ("n_regionkey", 4, 5),
        ("n_comment", 74, 1.0),
    ], fixed=25),
    _spec("region", 0, [
        ("r_regionkey", 4, 1.0),
        ("r_name", 25, 1.0),
        ("r_comment", 76, 1.0),
    ], fixed=5),
)


def _scaling_bytes_per_scale_factor() -> float:
    """On-disk bytes contributed per unit scale factor by the scaled tables."""
    total = 0.0
    for spec in TPCH_TABLE_SPECS:
        if spec.fixed_row_count:
            continue
        total += spec.rows_per_scale_factor * spec.row_width_bytes
    return total


def _fixed_bytes() -> int:
    """On-disk bytes of the fixed-cardinality tables (NATION, REGION)."""
    total = 0
    for spec in TPCH_TABLE_SPECS:
        if spec.fixed_row_count:
            total += spec.fixed_row_count * spec.row_width_bytes
    return total


def scale_factor_for_bytes(target_bytes: int) -> float:
    """TPC-H scale factor whose on-disk size is approximately ``target_bytes``."""
    if target_bytes <= 0:
        raise SchemaError(f"target_bytes must be positive, got {target_bytes}")
    scalable = target_bytes - _fixed_bytes()
    if scalable <= 0:
        raise SchemaError(
            f"target_bytes={target_bytes} is smaller than the fixed tables alone"
        )
    return scalable / _scaling_bytes_per_scale_factor()


def build_tpch_schema(target_bytes: int = constants.BACKEND_DATABASE_BYTES,
                      scale_factor: float = None) -> Schema:
    """Build the TPC-H-like schema.

    Args:
        target_bytes: desired total on-disk size; ignored when
            ``scale_factor`` is given. Defaults to the paper's 2.5 TB.
        scale_factor: explicit TPC-H scale factor, overriding ``target_bytes``.

    Returns:
        A :class:`~repro.catalog.schema.Schema` with the eight TPC-H tables
        and no indexes (candidate indexes are added by the index advisor).
    """
    if scale_factor is None:
        scale_factor = scale_factor_for_bytes(target_bytes)
    if scale_factor <= 0:
        raise SchemaError(f"scale_factor must be positive, got {scale_factor}")

    tables = []
    for spec in TPCH_TABLE_SPECS:
        row_count = spec.row_count(scale_factor)
        columns = tuple(
            Column(
                table_name=spec.name,
                name=column.name,
                width_bytes=column.width_bytes,
                distinct_fraction=column.effective_fraction(row_count),
            )
            for column in spec.columns
        )
        tables.append(Table(name=spec.name, row_count=row_count, columns=columns))
    return Schema(tables)


def tpch_table_sizes(schema: Schema) -> Dict[str, int]:
    """Convenience map of table name to on-disk size in bytes."""
    return {table.name: table.size_bytes for table in schema.tables()}
