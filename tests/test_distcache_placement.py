"""Tests for demand-driven placement: policy, overrides, handoff runs.

The load-bearing properties:

* **Determinism** — the handoff set is a function of the *multiset* of
  recorded bids (hypothesis: any permutation of the epoch's records
  yields the same decisions), ties break stably, and hysteresis keeps
  equal or sub-threshold challengers out.
* **Override table** — consulted before the hash fallback, canonical
  (no redundant entries, key-sorted, equal mappings compare equal), and
  picklable so it rides to worker processes.
* **End-to-end handoffs** — adaptive runs move hot structures, keep
  every conservation audit bitwise exact, and report the handoffs; an
  unreachable threshold degenerates to the hash run.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distcache import (
    HandoffDecision,
    PlacementPolicy,
    StructurePartitioner,
    run_partitioned_cell,
)
from repro.errors import DistCacheError
from repro.experiments.tenants import TenantExperimentConfig

pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.distcache.PartitionImbalanceWarning")

CONFIG = TenantExperimentConfig(
    scheme="econ-cheap", tenant_count=16, query_count=60,
    interarrival_s=1.0, seed=1, settlement_period_s=15.0,
)


class TestPlacementPolicy:
    def test_highest_bidder_wins(self):
        policy = PlacementPolicy(partition_count=3)
        policy.record("column:a", 0, 1.0)
        policy.record("column:a", 2, 5.0)
        decisions = policy.propose({"column:a": 0})
        assert decisions == [HandoffDecision(
            key="column:a", from_partition=0, to_partition=2,
            challenger_benefit=5.0, incumbent_benefit=1.0)]
        assert decisions[0].margin == 4.0

    def test_incumbent_keeps_on_tie(self):
        policy = PlacementPolicy(partition_count=2)
        policy.record("column:a", 0, 3.0)
        policy.record("column:a", 1, 3.0)
        assert policy.propose({"column:a": 0}) == []

    def test_tie_between_challengers_breaks_to_lowest_index(self):
        policy = PlacementPolicy(partition_count=4)
        policy.record("column:a", 3, 2.0)
        policy.record("column:a", 1, 2.0)
        (decision,) = policy.propose({"column:a": 0})
        assert decision.to_partition == 1

    def test_hysteresis_threshold_blocks_small_margins(self):
        policy = PlacementPolicy(partition_count=2, handoff_threshold=1.0)
        policy.record("column:a", 0, 1.0)
        policy.record("column:a", 1, 2.0)   # margin 1.0 == threshold: blocked
        assert policy.propose({"column:a": 0}) == []
        policy.record("column:a", 0, 1.0)
        policy.record("column:a", 1, 2.0 + 1e-9)
        (decision,) = policy.propose({"column:a": 0})
        assert decision.to_partition == 1

    def test_propose_drains_the_epoch(self):
        policy = PlacementPolicy(partition_count=2)
        policy.record("column:a", 1, 2.0)
        assert len(policy.propose({"column:a": 0})) == 1
        assert policy.pending_keys() == []
        assert policy.propose({"column:a": 0}) == []
        assert policy.epochs_observed == 2

    def test_keys_without_owner_entry_are_skipped(self):
        policy = PlacementPolicy(partition_count=2)
        policy.record("column:a", 1, 2.0)
        assert policy.propose({}) == []

    def test_decisions_come_out_key_sorted(self):
        policy = PlacementPolicy(partition_count=2)
        for key in ("column:z", "column:a", "column:m"):
            policy.record(key, 1, 2.0)
        decisions = policy.propose(
            {"column:z": 0, "column:a": 0, "column:m": 0})
        assert [d.key for d in decisions] == [
            "column:a", "column:m", "column:z"]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(DistCacheError):
            PlacementPolicy(0)
        with pytest.raises(DistCacheError):
            PlacementPolicy(2, handoff_threshold=-0.1)
        with pytest.raises(DistCacheError):
            # NaN would make every hysteresis comparison False, silently
            # freezing placement; it must be rejected up front.
            PlacementPolicy(2, handoff_threshold=float("nan"))
        policy = PlacementPolicy(2)
        with pytest.raises(DistCacheError):
            policy.record("", 0, 1.0)
        with pytest.raises(DistCacheError):
            policy.record("column:a", 2, 1.0)
        with pytest.raises(DistCacheError):
            policy.record("column:a", 0, -1.0)


@st.composite
def _bid_records_and_permutation(draw):
    records = draw(st.lists(
        st.tuples(
            st.sampled_from(["column:a", "column:b", "index:i", "cpu:0"]),
            st.integers(min_value=0, max_value=3),
            st.floats(min_value=0.0, max_value=10.0,
                      allow_nan=False, allow_infinity=False),
        ),
        min_size=0, max_size=40,
    ))
    permutation = draw(st.permutations(list(range(len(records)))))
    return records, permutation


class TestPermutationInvariance:
    @settings(max_examples=120, deadline=None)
    @given(data=_bid_records_and_permutation(),
           threshold=st.floats(min_value=0.0, max_value=5.0,
                               allow_nan=False, allow_infinity=False))
    def test_any_epoch_order_yields_the_same_handoff_set(
            self, data, threshold):
        records, permutation = data
        owners = {"column:a": 0, "column:b": 1, "index:i": 2, "cpu:0": 3}
        ordered = PlacementPolicy(4, handoff_threshold=threshold)
        shuffled = PlacementPolicy(4, handoff_threshold=threshold)
        for key, partition, benefit in records:
            ordered.record(key, partition, benefit)
        for index in permutation:
            key, partition, benefit = records[index]
            shuffled.record(key, partition, benefit)
        # Bitwise-equal decisions, including the fsum'd benefit totals.
        assert ordered.propose(owners) == shuffled.propose(owners)


class TestOwnershipOverrides:
    def test_override_consulted_before_hash(self):
        base = StructurePartitioner(4)
        key = "column:lineitem.l_quantity"
        target = (base.partition_of(key) + 1) % 4
        moved = base.with_overrides({key: target})
        assert moved.partition_of(key) == target
        assert moved.hash_owner_of(key) == base.partition_of(key)
        assert moved.override_of(key) == target
        assert moved.owns(target, key)
        assert not moved.owns(base.partition_of(key), key)

    def test_handback_removes_the_override(self):
        base = StructurePartitioner(2)
        key = "column:a"
        moved = base.with_overrides({key: 1 - base.partition_of(key)})
        assert len(moved.overrides) == 1
        restored = moved.with_overrides({key: base.partition_of(key)})
        assert restored.overrides == ()
        assert restored == base

    def test_equal_mappings_compare_and_hash_equal(self):
        key_a, key_b = "column:a", "column:b"
        base = StructurePartitioner(4)
        one = base.with_overrides(
            {key_a: (base.partition_of(key_a) + 1) % 4}).with_overrides(
            {key_b: (base.partition_of(key_b) + 2) % 4})
        other = base.with_overrides({
            key_b: (base.partition_of(key_b) + 2) % 4,
            key_a: (base.partition_of(key_a) + 1) % 4,
        })
        assert one == other
        assert hash(one) == hash(other)

    def test_pickle_round_trip(self):
        partitioner = StructurePartitioner(4).with_overrides(
            {"column:a": 2, "column:b": 1})
        clone = pickle.loads(pickle.dumps(partitioner))
        assert clone == partitioner
        assert clone.partition_of("column:a") == \
            partitioner.partition_of("column:a")

    def test_invalid_overrides_rejected(self):
        with pytest.raises(DistCacheError):
            StructurePartitioner(2, overrides=(("column:a", 2),))
        with pytest.raises(DistCacheError):
            StructurePartitioner(2, overrides=(("", 0),))
        with pytest.raises(DistCacheError):
            StructurePartitioner(
                2, overrides=(("column:a", 0), ("column:a", 1)))


class TestAdaptiveRuns:
    @pytest.fixture(scope="class")
    def hash_report(self):
        return run_partitioned_cell(CONFIG, partitions=2,
                                    compare_baseline=False)

    @pytest.fixture(scope="class")
    def adaptive_report(self):
        return run_partitioned_cell(CONFIG, partitions=2,
                                    compare_baseline=False,
                                    placement="adaptive")

    def test_handoffs_happen_and_are_recorded(self, adaptive_report):
        assert adaptive_report.placement == "adaptive"
        assert adaptive_report.handoff_count > 0
        for record in adaptive_report.handoffs:
            assert record.from_partition != record.to_partition
            assert record.margin > 0
        by_epoch = {point.epoch: point.handoffs_applied
                    for point in adaptive_report.checkpoints}
        for record in adaptive_report.handoffs:
            assert by_epoch[record.epoch] > 0

    def test_adaptive_cuts_remote_surcharge(self, hash_report,
                                            adaptive_report):
        assert (adaptive_report.remote_dollars_paid
                < hash_report.remote_dollars_paid)

    def test_conservation_still_bitwise_exact(self, adaptive_report):
        for point in adaptive_report.checkpoints:
            assert point.query_payments == point.outcome_charges

    def test_no_query_lost(self, adaptive_report):
        assert sum(stats.queries_served
                   for stats in adaptive_report.partitions) \
            == CONFIG.query_count

    def test_worker_pool_never_changes_results(self, adaptive_report):
        parallel = run_partitioned_cell(CONFIG, partitions=2, max_workers=2,
                                        compare_baseline=False,
                                        placement="adaptive")
        assert parallel.cell.summary == adaptive_report.cell.summary
        assert parallel.handoffs == adaptive_report.handoffs
        assert parallel.checkpoints == adaptive_report.checkpoints
        assert parallel.publications == adaptive_report.publications

    def test_unreachable_threshold_degenerates_to_hash(self, hash_report):
        frozen = run_partitioned_cell(CONFIG, partitions=2,
                                      compare_baseline=False,
                                      placement="adaptive",
                                      handoff_threshold=1e18)
        assert frozen.handoff_count == 0
        assert frozen.cell.summary == hash_report.cell.summary
        assert frozen.cell.tenants == hash_report.cell.tenants
        assert frozen.cell.wallet_credit == hash_report.cell.wallet_credit
        assert [point.subaccount_credit for point in frozen.checkpoints] \
            == [point.subaccount_credit for point in hash_report.checkpoints]

    def test_cells_do_not_leak_overrides(self):
        from repro.distcache import DistCacheRunner

        runner = DistCacheRunner(2, compare_baseline=False,
                                 placement="adaptive")
        first = runner.run_cell(CONFIG)
        second = runner.run_cell(CONFIG)
        assert first.cell.summary == second.cell.summary
        assert first.handoffs == second.handoffs

    def test_invalid_modes_rejected(self):
        from repro.distcache import DistCacheRunner

        with pytest.raises(DistCacheError, match="placement"):
            DistCacheRunner(2, placement="sticky")
        with pytest.raises(DistCacheError, match="handoff_threshold"):
            DistCacheRunner(2, handoff_threshold=-0.5)
        with pytest.raises(DistCacheError, match="handoff_threshold"):
            DistCacheRunner(2, handoff_threshold=float("nan"))
        with pytest.raises(DistCacheError, match="anchor_period"):
            DistCacheRunner(2, anchor_period=0)


class TestHashModeRegression:
    """``--placement hash`` must stay byte-identical to the PR 4 path."""

    def test_hash_report_has_no_placement_artifacts(self):
        report = run_partitioned_cell(CONFIG, partitions=2,
                                      compare_baseline=False)
        assert report.placement == "hash"
        assert report.handoffs == ()
        assert all(point.handoffs_applied == 0
                   for point in report.checkpoints)

    def test_hash_engines_never_tally_bids(self):
        """Hash runs must not pay for (or pickle) the placement tally."""
        from repro.distcache import DistCacheRunner

        runner = DistCacheRunner(2, compare_baseline=False)
        schemes = runner._build_schemes(CONFIG, profiles=())
        for scheme in schemes:
            engine = scheme.engine
            assert engine._record_bids is False
            engine._record_placement_bid("column:x", 1.0)  # sanity: works
            assert engine.drain_placement_bids() == (("column:x", 1.0),)

    def test_hash_mode_summary_is_pinned(self):
        """Regression pin: the exact hash-mode trajectory of PR 4.

        The partitioned semantics are deterministic, so these observables
        are frozen; any drift means the placement machinery leaked into
        the hash path.
        """
        report = run_partitioned_cell(CONFIG, partitions=2,
                                      compare_baseline=False)
        assert report.remote_hit_count == 14
        assert [stats.queries_served for stats in report.partitions] \
            == [17, 43]
        assert report.directory_size == sum(
            stats.local_structures for stats in report.partitions)
