"""Event-driven simulation of the cloud cache.

The simulator replays a workload against a caching scheme, advancing a
simulation clock from query arrival to query arrival, integrating the
time-proportional costs (disk storage and node uptime) between events, and
collecting the metrics Figures 4 and 5 report: total operating cost and
average response time.
"""

from repro.simulator.clock import SimulationClock
from repro.simulator.events import Event, EventQueue, QueryArrivalEvent
from repro.simulator.metrics import MetricsCollector, MetricsSummary
from repro.simulator.results import SimulationResult
from repro.simulator.simulation import CloudSimulation, SimulationConfig

__all__ = [
    "SimulationClock",
    "Event",
    "EventQueue",
    "QueryArrivalEvent",
    "MetricsCollector",
    "MetricsSummary",
    "SimulationResult",
    "CloudSimulation",
    "SimulationConfig",
]
