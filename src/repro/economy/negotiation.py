"""Plan negotiation: Cases A, B and C of Section IV-C (Figure 2).

The user budget function ``B_Q`` is compared against the cloud's discrete
budget function ``B_PQ`` (the priced plans):

* **Case A** — every plan costs more than the user is willing to pay. The
  user is shown the existing plans and (per the experimental setup) accepts
  the cheapest one, typically back-end execution, paying its price with no
  cloud profit. Regret records the missed chance to serve the query more
  cheaply (Eq. 1).
* **Case B** — every plan is within budget. The cloud picks the existing
  plan that minimises its own profit, charges the user her budget at that
  response time, and credits the difference. Regret records the profit the
  not-yet-built plans would have brought (Eq. 2).
* **Case C** — only some plans are within budget; handled like Case B
  restricted to the affordable subset.

The selection criterion is configurable because the experimental section
evaluates variants: econ-cheap picks the cheapest affordable plan and
econ-fast the fastest affordable plan.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.economy.budget import BudgetFunction
from repro.economy.pricing import PricedPlan
from repro.errors import PlanningError


class NegotiationCase(enum.Enum):
    """Which of the three relationships between ``B_Q`` and ``B_PQ`` held."""

    A = "A"
    B = "B"
    C = "C"


class PlanSelection(enum.Enum):
    """How the chosen plan is picked among the affordable existing plans."""

    #: Paper default for cases B/C: minimise the cloud profit
    #: ``B_Q(t) - B_PQ(t)``.
    MIN_PROFIT = "min_profit"
    #: econ-cheap: pick the plan with the least cost.
    CHEAPEST = "cheapest"
    #: econ-fast: pick the plan with the fastest response time.
    FASTEST = "fastest"


@dataclass(frozen=True)
class NegotiationResult:
    """Outcome of negotiating one query."""

    case: NegotiationCase
    chosen: PricedPlan
    charge: float
    profit: float
    regrets: Tuple[Tuple[PricedPlan, float], ...]

    @property
    def response_time_s(self) -> float:
        """Response time of the chosen plan."""
        return self.chosen.response_time_s


def negotiate(budget: BudgetFunction, priced_plans: Sequence[PricedPlan],
              selection: PlanSelection = PlanSelection.MIN_PROFIT
              ) -> NegotiationResult:
    """Choose a plan for one query and compute the regrets of the others.

    Args:
        budget: the user's budget function ``B_Q``.
        priced_plans: the (skyline-filtered) plan set ``PQ``; must contain at
            least one existing plan.
        selection: tie-breaking policy among affordable existing plans.

    Returns:
        The :class:`NegotiationResult` — which case held, the chosen plan,
        the user charge, the cloud profit, and the per-plan regrets.

    Raises:
        PlanningError: if ``priced_plans`` contains no existing plan (the
            back-end plan should always be offered).

    Example:
        Two existing back-end-style plans against a flat $10 budget; the
        default MIN_PROFIT selection picks the plan on which the cloud
        earns least (the $6 one), charges the budget, and banks the gap:

        >>> from repro.costmodel.execution import ExecutionEstimate
        >>> from repro.economy.budget import StepBudget
        >>> from repro.economy.pricing import PricedPlan
        >>> from repro.planner.plan import PlanKind, QueryPlan
        >>> from repro.workload.query import Query
        >>> query = Query(query_id=0, template_name="t", table_name="lineitem",
        ...               predicates=(), projection_columns=("l_quantity",))
        >>> def priced(price, time_s):
        ...     estimate = ExecutionEstimate(
        ...         cost_units=1.0, io_operations=0.0, cpu_seconds=1.0,
        ...         network_bytes=0.0, response_time_s=time_s,
        ...         cpu_dollars=price, io_dollars=0.0, network_dollars=0.0)
        ...     plan = QueryPlan(query=query, kind=PlanKind.BACKEND,
        ...                      execution=estimate)
        ...     return PricedPlan(plan=plan, execution_dollars=price,
        ...                       amortized_dollars=0.0,
        ...                       maintenance_dollars=0.0, new_structures=(),
        ...                       amortized_by_structure={})
        >>> result = negotiate(StepBudget(amount=10.0, max_time_s=60.0),
        ...                    [priced(4.0, 30.0), priced(6.0, 10.0)])
        >>> (result.case.value, result.chosen.price, result.charge,
        ...  result.profit)
        ('B', 6.0, 10.0, 4.0)
    """
    existing = [plan for plan in priced_plans if plan.is_existing]
    possible = [plan for plan in priced_plans if not plan.is_existing]
    if not existing:
        raise PlanningError("negotiation requires at least one existing plan")

    affordable_existing = [
        plan for plan in existing
        if budget.accepts(plan.response_time_s, plan.price)
    ]

    if not affordable_existing:
        return _case_a(budget, existing, possible)

    all_within_budget = all(
        budget.accepts(plan.response_time_s, plan.price) for plan in priced_plans
    )
    case = NegotiationCase.B if all_within_budget else NegotiationCase.C
    return _case_b_or_c(budget, case, affordable_existing, possible, selection)


def _case_a(budget: BudgetFunction, existing: List[PricedPlan],
            possible: List[PricedPlan]) -> NegotiationResult:
    """No plan fits the budget: the user reluctantly pays for the cheapest
    existing plan; regret follows Eq. 1."""
    chosen = min(existing, key=lambda plan: (plan.price, plan.response_time_s))
    regrets: List[Tuple[PricedPlan, float]] = []
    for plan in possible:
        if plan is chosen:
            continue
        # Eq. 1: the difference of the cost of the chosen and the not-chosen
        # plan, for plans that would have been cheaper.
        regret = chosen.price - plan.price
        if regret > 0:
            regrets.append((plan, regret))
    return NegotiationResult(
        case=NegotiationCase.A,
        chosen=chosen,
        charge=chosen.price,
        profit=0.0,
        regrets=tuple(regrets),
    )


def _case_b_or_c(budget: BudgetFunction, case: NegotiationCase,
                 affordable_existing: List[PricedPlan],
                 possible: List[PricedPlan],
                 selection: PlanSelection) -> NegotiationResult:
    """Some or all plans fit the budget: pick per the selection criterion,
    charge the user's budget at the chosen response time, credit the profit,
    and record Eq. 2 regrets for the plans that are not built yet."""
    chosen = _select(budget, affordable_existing, selection)
    charge = budget.value(chosen.response_time_s)
    profit = max(0.0, charge - chosen.price)

    regrets: List[Tuple[PricedPlan, float]] = []
    for plan in possible:
        budget_at_plan = budget.value(plan.response_time_s)
        if budget_at_plan <= 0:
            continue
        # Eq. 2 measures the profit the cloud would have made had this plan
        # (and its structures) been available. We take it *relative to* the
        # profit actually made on the chosen plan: only the additional
        # profit is a missed opportunity. This differential reading is what
        # lets the economy "identify the commonly used structures and use
        # them first" (Section IV-C) instead of regretting structures whose
        # plans would be no better than what the cloud already offers.
        # Only affordable plans generate regret (Case C restricts to P_QS).
        regret = (budget_at_plan - plan.price) - profit
        if regret > 0:
            regrets.append((plan, regret))
    return NegotiationResult(
        case=case,
        chosen=chosen,
        charge=charge,
        profit=profit,
        regrets=tuple(regrets),
    )


def _select(budget: BudgetFunction, plans: List[PricedPlan],
            selection: PlanSelection) -> PricedPlan:
    if selection is PlanSelection.MIN_PROFIT:
        return min(
            plans,
            key=lambda plan: (
                budget.value(plan.response_time_s) - plan.price,
                plan.response_time_s,
            ),
        )
    if selection is PlanSelection.CHEAPEST:
        return min(plans, key=lambda plan: (plan.price, plan.response_time_s))
    if selection is PlanSelection.FASTEST:
        return min(plans, key=lambda plan: (plan.response_time_s, plan.price))
    raise PlanningError(f"unknown selection criterion: {selection!r}")
