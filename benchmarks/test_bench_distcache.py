"""Pytest wrapper around the partitioned-cache scaling benchmark.

Keeps the population small so the full suite stays fast, but exercises
the real pipeline: both execution modes at both scales, barrier audits,
and the ``BENCH_distcache.json`` artifact, including the acceptance
gate — partitioned per-query throughput must exceed the replicated
replay at 2+ partitions, because the replicated mode re-runs every query
on every worker and the partitioned mode does not.
"""

from __future__ import annotations

import json

from bench_distcache import run_benchmark, write_report

from repro.distcache import run_partitioned_cell
from repro.experiments.tenants import TenantExperimentConfig


def test_distcache_scaling_report(output_dir):
    report = run_benchmark(tenant_count=30, query_count=120,
                           partition_counts=(1, 2),
                           settlement_period_s=20.0)
    by_mode = {}
    for run in report["runs"]:
        by_mode[(run["benchmark_mode"], run["partitions"])] = run

    # The headline claim: at 2 partitions the partitioned mode's
    # per-query throughput beats the replicated replay (which does the
    # engine work twice).
    assert (by_mode[("partitioned", 2)]["queries_per_s"]
            > by_mode[("replicated", 2)]["queries_per_s"])
    assert (by_mode[("partitioned", 2)]["engine_queries"]
            < by_mode[("replicated", 2)]["engine_queries"])
    # The cache-footprint claim: each partitioned worker holds only its
    # slice, while every replicated worker materialises the full cache.
    assert (by_mode[("partitioned", 2)]["peak_worker_cache_bytes"]
            < by_mode[("replicated", 2)]["peak_worker_cache_bytes"])
    # Audits ran at every barrier.
    assert by_mode[("partitioned", 2)]["barriers_verified"] > 0
    # The placement claim: adaptive handoffs cut the remote surcharge the
    # hash placement keeps paying, and deltas undercut full republication.
    assert (by_mode[("adaptive", 2)]["remote_surcharge_dollars"]
            < by_mode[("partitioned", 2)]["remote_surcharge_dollars"])
    assert (by_mode[("adaptive", 2)]["directory_bytes_published"]
            < by_mode[("adaptive", 2)]["directory_bytes_full_republication"])

    path = write_report(report, f"{output_dir}/BENCH_distcache.json")
    with open(path, encoding="utf-8") as handle:
        assert json.load(handle)["benchmark"] == "distcache"


def test_partitioned_cell_rate(benchmark):
    config = TenantExperimentConfig(
        scheme="econ-cheap", tenant_count=30, query_count=60,
        interarrival_s=1.0, seed=0, settlement_period_s=20.0)
    report = benchmark(lambda: run_partitioned_cell(
        config, partitions=2, compare_baseline=False))
    assert report.partition_count == 2
