"""Unit tests for the amortisation policies (Eqs. 6-7)."""

import pytest

from repro.costmodel.amortization import DecliningAmortization, UniformAmortization
from repro.errors import ConfigurationError


class TestUniformAmortization:
    def test_eq7_equal_shares(self):
        policy = UniformAmortization(100)
        assert policy.charge(50.0, 0) == pytest.approx(0.5)
        assert policy.charge(50.0, 99) == pytest.approx(0.5)

    def test_charges_stop_after_the_horizon(self):
        policy = UniformAmortization(10)
        assert policy.charge(50.0, 10) == 0.0
        assert policy.charge(50.0, 1_000) == 0.0

    def test_total_recovered_equals_build_cost(self):
        policy = UniformAmortization(25)
        total = sum(policy.charge(80.0, served) for served in range(25))
        assert total == pytest.approx(80.0)

    def test_zero_build_cost_charges_nothing(self):
        assert UniformAmortization(10).charge(0.0, 0) == 0.0

    def test_describe_mentions_horizon(self):
        assert "17" in UniformAmortization(17).describe()

    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigurationError):
            UniformAmortization(0)

    def test_rejects_negative_inputs(self):
        policy = UniformAmortization(10)
        with pytest.raises(ConfigurationError):
            policy.charge(-1.0, 0)
        with pytest.raises(ConfigurationError):
            policy.charge(1.0, -1)


class TestDecliningAmortization:
    def test_charges_decline_geometrically(self):
        policy = DecliningAmortization(0.1)
        charges = [policy.charge(100.0, served) for served in range(5)]
        assert charges[0] == pytest.approx(10.0)
        assert all(later < earlier for earlier, later in zip(charges, charges[1:]))
        ratios = [later / earlier for earlier, later in zip(charges, charges[1:])]
        assert all(ratio == pytest.approx(0.9) for ratio in ratios)

    def test_total_recovered_approaches_build_cost(self):
        policy = DecliningAmortization(0.05)
        total = sum(policy.charge(40.0, served) for served in range(500))
        assert total == pytest.approx(40.0, rel=1e-6)

    def test_keeps_charging_after_the_uniform_horizon(self):
        declining = DecliningAmortization(0.05)
        uniform = UniformAmortization(int(1 / 0.05))
        assert uniform.charge(100.0, 30) == 0.0
        assert declining.charge(100.0, 30) > 0.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            DecliningAmortization(0.0)
        with pytest.raises(ConfigurationError):
            DecliningAmortization(1.0)

    def test_describe_mentions_fraction(self):
        assert "5%" in DecliningAmortization(0.05).describe()
