"""The ``repro report`` pipeline: versioned JSON + markdown artifacts.

Ingests the repo's perf history — the five checked-in ``BENCH_*.json``
files (or freshly produced ones from CI's bench-smoke job) plus any
``*.jsonl`` trace artifacts — validates every document against the
declarative schemas in :mod:`repro.obs.schema`, extracts a per-benchmark
headline, and renders two artifacts:

* ``report.json`` — a versioned, schema-valid machine-readable document
  (the report validates itself before writing; a self-check failure is a
  hard error, unlike ingest problems which are fail-soft warnings).
* ``report.md`` — a manifest-style markdown summary table covering every
  expected bench file, flagging missing/legacy/invalid ones, followed by
  one headline section per benchmark.

A ``report.manifest.json`` run manifest is written next to them.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.history import (
    RegressionGates,
    bench_config_hash,
    compute_deltas,
    history_metrics,
    latest_comparable,
    load_history,
)
from repro.obs.manifest import build_manifest
from repro.obs.metrics import METRICS_SCHEMA_VERSION
from repro.obs.schema import BENCH_GATES, validate_bench, validate_report
from repro.obs.trace import TRACE_SCHEMA_VERSION

#: Bumped whenever report.json's shape changes incompatibly.
#: v2 added the optional ``baseline`` (bench-to-bench regression deltas)
#: and ``grids`` (figure/headline tables) sections plus the delta/perf
#: summary columns rendered when a baseline is supplied.
REPORT_SCHEMA_VERSION = 2

#: The one metric per benchmark kind the summary table's delta column
#: shows (the full per-metric delta list lives in the ``baseline``
#: section). Names match :data:`repro.obs.history.METRIC_DIRECTIONS`.
PRIMARY_METRIC: Dict[str, str] = {
    "sharding": "best_queries_per_s",
    "distcache": "best_queries_per_s",
    "placement": "remote_surcharge_dollars",
    "planner": "batched_cold_queries_per_s",
    "shocks": "clean_queries_per_s",
}

#: The five benchmark kinds the perf history is expected to cover,
#: mapped to their canonical checked-in file names.
BENCH_NAMES: Tuple[Tuple[str, str], ...] = (
    ("sharding", "BENCH_sharding.json"),
    ("distcache", "BENCH_distcache.json"),
    ("placement", "BENCH_placement.json"),
    ("planner", "BENCH_planner.json"),
    ("shocks", "BENCH_shocks.json"),
)


@dataclass
class BenchIngest:
    """One ingested bench file and its validation outcome."""

    kind: str
    path: str
    found: bool = False
    valid: bool = False
    problems: List[str] = field(default_factory=list)
    data: Optional[Dict[str, object]] = None

    @property
    def status(self) -> str:
        """``ok`` / ``invalid`` / ``missing`` for the summary table."""
        if not self.found:
            return "missing"
        return "ok" if self.valid else "invalid"


def _kind_from_name(name: str) -> Optional[str]:
    """The benchmark kind a file name claims, or ``None``."""
    base = os.path.basename(name)
    for kind, canonical in BENCH_NAMES:
        if base == canonical or base == canonical.lower():
            return kind
    return None


def ingest_bench_files(paths: Sequence[str]) -> List[BenchIngest]:
    """Read and validate bench JSON files, fail-soft.

    Every expected benchmark kind yields exactly one :class:`BenchIngest`
    (marked missing when no supplied path covers it), so the summary table
    always renders all five rows. Unreadable or legacy files are reported
    as problems, never raised.
    """
    by_kind: Dict[str, BenchIngest] = {
        kind: BenchIngest(kind=kind, path=canonical)
        for kind, canonical in BENCH_NAMES
    }
    extras: List[BenchIngest] = []
    for path in paths:
        expected_kind = _kind_from_name(path)
        ingest = BenchIngest(kind=expected_kind or os.path.basename(path),
                             path=path)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            ingest.problems.append(f"unreadable: {exc}")
        except ValueError as exc:
            ingest.found = True
            ingest.problems.append(f"not valid JSON: {exc}")
        else:
            ingest.found = True
            ingest.problems.extend(validate_bench(document, expected_kind))
            ingest.valid = not ingest.problems
            if isinstance(document, Mapping):
                ingest.data = dict(document)
                if expected_kind is None:
                    benchmark = document.get("benchmark")
                    if isinstance(benchmark, str):
                        ingest.kind = benchmark
        slot = by_kind.get(ingest.kind)
        if slot is not None and not slot.found:
            by_kind[ingest.kind] = ingest
        else:
            extras.append(ingest)
    return [by_kind[kind] for kind, _ in BENCH_NAMES] + extras


def _headline(ingest: BenchIngest) -> Dict[str, object]:
    """Machine-readable per-benchmark headline numbers."""
    data = ingest.data
    if not data or not ingest.valid:
        return {}
    runs = [run for run in data.get("runs", ()) if isinstance(run, Mapping)]
    headline: Dict[str, object] = {"runs": len(runs)}
    gate = BENCH_GATES.get(ingest.kind)
    if gate is not None:
        gate_name, predicate = gate
        headline["gate"] = gate_name
        headline["gate_ok"] = bool(predicate(data))
    if ingest.kind == "sharding":
        best = max((run.get("speedup_vs_unsharded", 0.0) for run in runs),
                   default=0.0)
        headline["best_speedup_vs_unsharded"] = best
    elif ingest.kind == "distcache":
        best = max((run.get("queries_per_s", 0.0) for run in runs),
                   default=0.0)
        headline["best_queries_per_s"] = best
    elif ingest.kind == "placement":
        adaptive = [run for run in runs if run.get("placement") == "adaptive"]
        headline["handoffs"] = sum(run.get("handoffs", 0) for run in adaptive)
        headline["remote_hits"] = sum(
            run.get("remote_hits", 0) for run in adaptive)
    elif ingest.kind == "planner":
        speedup = data.get("speedup")
        if isinstance(speedup, Mapping):
            headline["speedup"] = dict(speedup)
    elif ingest.kind == "shocks":
        ratios = [run.get("cost_ratio") for run in runs
                  if isinstance(run.get("cost_ratio"), (int, float))]
        if ratios:
            headline["max_cost_ratio"] = max(ratios)
        headline["grammar"] = data.get("grammar")
    return headline


def _trace_summary(path: str) -> Dict[str, object]:
    """Summarize one ``*.jsonl`` trace artifact, fail-soft."""
    summary: Dict[str, object] = {"path": path}
    try:
        with open(path, "r", encoding="utf-8") as handle:
            lines = [line for line in handle.read().splitlines() if line]
    except OSError as exc:
        summary["problem"] = f"unreadable: {exc}"
        return summary
    header: Dict[str, object] = {}
    counters = 0
    events = 0
    peak_live: Optional[int] = None
    peak_rss: Optional[int] = None
    for index, line in enumerate(lines):
        try:
            record = json.loads(line)
        except ValueError:
            summary["problem"] = f"line {index + 1} is not valid JSON"
            return summary
        kind = record.get("kind")
        if index == 0 and kind in ("trace_header", "metrics_header"):
            header = record
        elif kind == "counter":
            counters += 1
        else:
            events += 1
            if kind == "sample":
                # Memory-budget gauges sampled at settlement barriers
                # (streamed runs): report the run-wide maxima so the CI
                # memory lane can read them off one report field.
                live = record.get("live_tenants")
                if isinstance(live, int):
                    peak_live = max(peak_live or 0, live)
                rss = record.get("peak_rss_bytes")
                if isinstance(rss, int):
                    peak_rss = max(peak_rss or 0, rss)
    summary["schema_version"] = header.get("schema_version")
    summary["sources"] = header.get("sources", [])
    summary["events"] = events
    summary["counters"] = counters
    kind = header.get("kind")
    if kind == "metrics_header":
        # Metrics timeseries share the JSONL artifact surface; their
        # event lines are per-epoch samples.
        summary["artifact"] = "metrics"
        if peak_live is not None:
            summary["peak_live_tenants"] = peak_live
        if peak_rss is not None:
            summary["peak_rss_bytes"] = peak_rss
        if header.get("schema_version") != METRICS_SCHEMA_VERSION:
            summary["problem"] = (
                f"metrics schema version {header.get('schema_version')!r} "
                f"!= {METRICS_SCHEMA_VERSION}")
    else:
        summary["artifact"] = "trace"
        if header.get("schema_version") != TRACE_SCHEMA_VERSION:
            summary["problem"] = (
                f"trace schema version {header.get('schema_version')!r} != "
                f"{TRACE_SCHEMA_VERSION}")
    return summary


def _baseline_section(ingests: Sequence[BenchIngest],
                      baseline_dir: str,
                      gates: RegressionGates,
                      warnings: List[str]) -> Dict[str, object]:
    """Compare every valid bench against its newest comparable record.

    Incomparable benches (no history, or every record's config hash
    differs — e.g. CI's reduced sizes against the checked-in full-size
    history) render as ``comparable: false`` with no warning: a size
    mismatch is expected, a slowdown is not. Warn/fail deltas append to
    the report's warnings so CI can grep one place.
    """
    records, problems = load_history(baseline_dir)
    warnings.extend(problems)
    benches: Dict[str, object] = {}
    for ingest in ingests:
        if not ingest.valid or not ingest.data:
            continue
        entry: Dict[str, object] = {"comparable": False, "deltas": []}
        history = records.get(ingest.kind, [])
        baseline = latest_comparable(
            history, bench_config_hash(ingest.data))
        if baseline is None:
            entry["reason"] = (
                "no comparable history record (same config hash)"
                if history else "no history records for this benchmark")
        else:
            deltas = compute_deltas(history_metrics(ingest.data),
                                    baseline, gates)
            entry.update({
                "comparable": True,
                "baseline_git_sha": baseline.git_sha,
                "baseline_recorded_at": baseline.recorded_at,
                "deltas": [
                    {"metric": delta.name,
                     "current": delta.current,
                     "baseline": delta.baseline,
                     "change": delta.change,
                     "regression": delta.regression,
                     "status": delta.status}
                    for delta in deltas
                ],
            })
            for delta in deltas:
                if delta.status in ("warn", "fail"):
                    warnings.append(
                        f"{ingest.kind}: perf regression "
                        f"{delta.status}: {delta.name} "
                        f"{delta.baseline:g} -> {delta.current:g} "
                        f"({delta.change:+.1%} vs baseline "
                        f"{baseline.git_sha or 'unknown'})")
        benches[ingest.kind] = entry
    return {
        "dir": baseline_dir,
        "gates": {"warn_slowdown": gates.warn_slowdown,
                  "fail_slowdown": gates.fail_slowdown},
        "problems": problems,
        "benches": benches,
    }


def _delta_cells(kind: str,
                 baseline_section: Optional[Mapping[str, object]]
                 ) -> Tuple[str, str]:
    """The summary table's ``(delta, perf gate)`` cells for one bench."""
    if baseline_section is None:
        return "-", "-"
    entry = baseline_section["benches"].get(kind)
    if not entry or not entry.get("comparable"):
        return "-", "-"
    deltas = entry.get("deltas") or []
    primary_name = PRIMARY_METRIC.get(kind)
    primary = next((delta for delta in deltas
                    if delta["metric"] == primary_name), None)
    if primary is None:
        gated = [d for d in deltas if d.get("regression") is not None]
        primary = gated[0] if gated else None
    cell = f"{primary['change']:+.1%}" if primary else "-"
    worst = "ok"
    for delta in deltas:
        status = delta.get("status")
        if status == "fail":
            worst = "FAIL"
            break
        if status == "warn":
            worst = "warn"
    if not any(d.get("regression") is not None for d in deltas):
        worst = "-"
    return cell, worst


def render_report(bench_paths: Sequence[str],
                  trace_paths: Sequence[str] = (),
                  baseline_dir: Optional[str] = None,
                  gates: Optional[RegressionGates] = None,
                  grid_tables: Optional[Mapping[str, str]] = None,
                  grid_profile: Optional[str] = None
                  ) -> Tuple[Dict[str, object], str]:
    """Render the report document and its markdown view.

    Args:
        bench_paths: BENCH_*.json files to ingest (fail-soft).
        trace_paths: ``*.jsonl`` trace/metrics artifacts to summarize.
        baseline_dir: bench-history directory; when set, every valid
            bench is compared against its newest comparable record and
            the summary table gains delta + perf-gate columns.
        gates: warn/fail slowdown thresholds (defaults per
            :class:`~repro.obs.history.RegressionGates`).
        grid_tables: pre-rendered figure/headline tables to fold in as
            the ``grids`` section (keyed ``headline``/``figure4``/...).
        grid_profile: the experiment profile the grid tables ran.

    Returns:
        ``(report, markdown)`` where ``report`` is schema-valid against
        :func:`repro.obs.schema.validate_report` (asserted here — a
        self-check failure is a bug, not an ingest problem).
    """
    from repro import __version__

    ingests = ingest_bench_files(bench_paths)
    warnings: List[str] = []

    baseline: Optional[Dict[str, object]] = None
    if baseline_dir is not None:
        baseline = _baseline_section(ingests, baseline_dir,
                                     gates or RegressionGates(), warnings)

    benches: Dict[str, object] = {}
    summary_rows: List[Dict[str, object]] = []
    for ingest in ingests:
        headline = _headline(ingest)
        benches[ingest.kind] = {
            "path": ingest.path,
            "valid": ingest.valid,
            "problems": list(ingest.problems),
            "headline": headline,
        }
        row: Dict[str, object] = {
            "benchmark": ingest.kind,
            "file": os.path.basename(ingest.path),
            "status": ingest.status,
            "runs": headline.get("runs", 0),
            "gate": headline.get("gate", "-"),
            "gate_ok": headline.get("gate_ok"),
        }
        if baseline is not None:
            delta_cell, perf_cell = _delta_cells(ingest.kind, baseline)
            row["delta"] = delta_cell
            row["perf"] = perf_cell
        summary_rows.append(row)
        if ingest.status == "missing":
            warnings.append(
                f"bench file for {ingest.kind!r} not supplied "
                f"(expected {ingest.path})")
        elif not ingest.valid:
            for problem in ingest.problems:
                warnings.append(f"{ingest.path}: {problem}")

    traces = [_trace_summary(path) for path in trace_paths]
    for trace in traces:
        problem = trace.get("problem")
        if problem:
            warnings.append(f"{trace['path']}: {problem}")

    report: Dict[str, object] = {
        "schema_version": REPORT_SCHEMA_VERSION,
        "generator": f"repro {__version__}",
        "benches": benches,
        "summary": summary_rows,
        "traces": traces,
        "warnings": warnings,
    }
    if baseline is not None:
        report["baseline"] = baseline
    if grid_tables:
        report["grids"] = {
            "profile": grid_profile,
            "tables": dict(grid_tables),
        }
    self_check = validate_report(report)
    if self_check:  # pragma: no cover - guarded by the schema tests
        raise AssertionError(
            "rendered report failed its own schema: " + "; ".join(self_check))
    return report, _render_markdown(report)


def _gate_cell(row: Mapping[str, object]) -> str:
    gate_ok = row.get("gate_ok")
    if gate_ok is None:
        return "-"
    return "pass" if gate_ok else "FAIL"


def _render_markdown(report: Mapping[str, object]) -> str:
    """The markdown view of a rendered report document.

    The delta/perf columns render only when the report carries a
    ``baseline`` section, so baseline-less reports stay byte-identical
    to schema v1 output.
    """
    baseline = report.get("baseline")
    lines = [
        "# Perf-history report",
        "",
        f"Generated by {report['generator']} "
        f"(report schema v{report['schema_version']}).",
        "",
        "## Bench summary",
        "",
    ]
    if baseline is not None:
        lines.extend([
            "| benchmark | file | status | runs | gate | gate ok "
            "| delta | perf |",
            "| --- | --- | --- | --- | --- | --- | --- | --- |",
        ])
    else:
        lines.extend([
            "| benchmark | file | status | runs | gate | gate ok |",
            "| --- | --- | --- | --- | --- | --- |",
        ])
    for row in report["summary"]:
        cells = (
            f"| {row['benchmark']} | {row['file']} | {row['status']} "
            f"| {row['runs']} | {row['gate']} | {_gate_cell(row)} |")
        if baseline is not None:
            cells += f" {row.get('delta', '-')} | {row.get('perf', '-')} |"
        lines.append(cells)
    if baseline is not None:
        lines.extend([
            "", "## Baseline deltas", "",
            f"Compared against history in `{baseline['dir']}` "
            f"(warn at {baseline['gates']['warn_slowdown']:.0%}, fail at "
            f"{baseline['gates']['fail_slowdown']:.0%} regression).",
            "",
        ])
        for kind, entry in sorted(baseline["benches"].items()):
            if not entry.get("comparable"):
                lines.append(
                    f"- {kind}: not comparable — "
                    f"{entry.get('reason', 'unknown reason')}")
                continue
            sha = entry.get("baseline_git_sha") or "unknown"
            lines.append(
                f"- {kind} (baseline {sha} @ "
                f"{entry.get('baseline_recorded_at')}):")
            for delta in entry.get("deltas", []):
                status = delta["status"]
                marker = status.upper() if status == "fail" else status
                lines.append(
                    f"  - {delta['metric']}: {delta['baseline']:g} -> "
                    f"{delta['current']:g} ({delta['change']:+.1%}) "
                    f"[{marker}]")
    for kind, entry in report["benches"].items():
        headline = entry.get("headline") or {}
        detail = {key: value for key, value in headline.items()
                  if key not in ("runs", "gate", "gate_ok")}
        if not detail:
            continue
        lines.extend(["", f"## {kind}", ""])
        for key in sorted(detail):
            lines.append(f"- {key}: {detail[key]}")
    traces = report.get("traces") or []
    if traces:
        lines.extend(["", "## Traces", ""])
        for trace in traces:
            problem = trace.get("problem")
            status = f"problem: {problem}" if problem else (
                f"{trace.get('events', 0)} events, "
                f"{trace.get('counters', 0)} counters, "
                f"sources {trace.get('sources')}")
            if not problem and "peak_live_tenants" in trace:
                status += (f", peak live tenants "
                           f"{trace['peak_live_tenants']}")
            if not problem and "peak_rss_bytes" in trace:
                status += (f", peak RSS "
                           f"{trace['peak_rss_bytes'] / 2**20:.0f} MiB")
            lines.append(f"- `{trace['path']}` — {status}")
    grids = report.get("grids")
    if grids:
        profile = grids.get("profile")
        lines.extend([
            "", "## Grids", "",
            f"Figure/headline tables (profile: {profile or 'default'}).",
        ])
        for name, table in sorted(grids.get("tables", {}).items()):
            lines.extend(["", f"### {name}", "", "```", table.rstrip(),
                          "```"])
    warnings = report.get("warnings") or []
    if warnings:
        lines.extend(["", "## Warnings", ""])
        for warning in warnings:
            lines.append(f"- {warning}")
    lines.append("")
    return "\n".join(lines)


def write_report_artifacts(bench_paths: Sequence[str],
                           out_dir: str,
                           trace_paths: Sequence[str] = (),
                           force: bool = False,
                           baseline_dir: Optional[str] = None,
                           gates: Optional[RegressionGates] = None,
                           grid_tables: Optional[Mapping[str, str]] = None,
                           grid_profile: Optional[str] = None
                           ) -> Dict[str, str]:
    """Write ``report.json`` / ``report.md`` / ``report.manifest.json``.

    Args:
        bench_paths: BENCH_*.json files to ingest (fail-soft).
        out_dir: output directory (created if needed).
        trace_paths: optional ``*.jsonl`` trace artifacts to summarize.
        force: overwrite existing artifacts.
        baseline_dir: optional bench-history directory for regression
            deltas (see :func:`render_report`).
        gates: warn/fail slowdown thresholds for the baseline deltas.
        grid_tables: optional pre-rendered figure/headline tables.
        grid_profile: the experiment profile the grid tables ran.

    Returns:
        Mapping of artifact kind to written path.

    Raises:
        FileExistsError: an artifact exists and ``force`` is off.
    """
    report, markdown = render_report(
        bench_paths, trace_paths, baseline_dir=baseline_dir, gates=gates,
        grid_tables=grid_tables, grid_profile=grid_profile)
    os.makedirs(out_dir, exist_ok=True)
    targets = {
        "json": os.path.join(out_dir, "report.json"),
        "markdown": os.path.join(out_dir, "report.md"),
        "manifest": os.path.join(out_dir, "report.manifest.json"),
    }
    if not force:
        for path in targets.values():
            if os.path.exists(path):
                raise FileExistsError(
                    f"refusing to overwrite {path} (pass --force)")
    with open(targets["json"], "w", encoding="utf-8") as handle:
        handle.write(json.dumps(report, sort_keys=True, indent=2) + "\n")
    with open(targets["markdown"], "w", encoding="utf-8") as handle:
        handle.write(markdown)
    effective_gates = gates or RegressionGates()
    manifest = build_manifest(
        "report",
        config={"bench_paths": sorted(os.path.basename(p)
                                      for p in bench_paths),
                "trace_paths": sorted(os.path.basename(p)
                                      for p in trace_paths),
                "baseline_dir": baseline_dir,
                "gates": ({"warn_slowdown": effective_gates.warn_slowdown,
                           "fail_slowdown": effective_gates.fail_slowdown}
                          if baseline_dir is not None else None),
                "grids": sorted(grid_tables) if grid_tables else None},
        extra={"report_schema_version": REPORT_SCHEMA_VERSION,
               "warnings": len(report["warnings"])},
    )
    manifest.write(targets["manifest"])
    return targets
