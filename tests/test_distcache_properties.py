"""Hypothesis properties of the partitioned cache & provider economy.

Three families, mirroring the subsystem's contract (``docs/distcache.md``):

* **ownership disjointness** — whatever the partition count, every built
  structure lives on exactly the partition its key hashes to, and the
  published directory reflects that (no dual ownership, every entry
  backed by a live owner — violations raise inside the run);
* **exact credit conservation** — per partition the provider sub-account
  banked bitwise what the partition's queries charged, wallets and
  sub-accounts fold bitwise from their own ledgers (violations raise
  inside the run), and the partition-ordered sums agree across the run;
* **degeneracy** — one partition reproduces the global-cache run exactly,
  for arbitrary populations and seeds.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distcache import StructurePartitioner, run_partitioned_cell

# High partition counts against the 7-template workload legitimately
# leave partitions idle; the warning is the intended behaviour, not noise.
pytestmark = pytest.mark.filterwarnings(
    "ignore::repro.distcache.PartitionImbalanceWarning")
from repro.experiments.tenants import (
    TenantExperimentConfig,
    run_tenant_cell,
    tenant_aggregate_table,
)

BASE_CONFIG = TenantExperimentConfig(
    scheme="econ-cheap", tenant_count=10, query_count=40,
    interarrival_s=1.0, seed=3, churn_period=15, budget_sigma=0.3,
    settlement_period_s=10.0,
)


class TestOwnershipAndConservation:
    @settings(max_examples=6, deadline=None)
    @given(partitions=st.integers(min_value=2, max_value=8))
    def test_invariants_hold_for_any_partition_count(self, partitions):
        report = run_partitioned_cell(BASE_CONFIG, partitions=partitions,
                                      compare_baseline=False)
        # Conservation: the runner audits bitwise at every barrier and
        # would have raised; re-check the recorded checkpoints anyway.
        assert report.barriers_verified == len(report.checkpoints) > 0
        for point in report.checkpoints:
            assert point.query_payments == point.outcome_charges
            assert len(point.subaccount_credit) == partitions
        # No query lost or duplicated by routing.
        assert sum(stats.queries_served for stats in report.partitions) \
            == BASE_CONFIG.query_count
        # The directory advertises exactly the union of live structures.
        assert report.directory_size == sum(
            stats.local_structures for stats in report.partitions)

    @settings(max_examples=6, deadline=None)
    @given(
        partitions=st.integers(min_value=2, max_value=5),
        seed=st.integers(min_value=0, max_value=20),
        tenant_count=st.integers(min_value=2, max_value=16),
    )
    def test_charges_conserve_for_arbitrary_populations(
            self, partitions, seed, tenant_count):
        config = TenantExperimentConfig(
            scheme="econ-cheap", tenant_count=tenant_count, query_count=30,
            interarrival_s=1.0, seed=seed, settlement_period_s=10.0,
        )
        report = run_partitioned_cell(config, partitions=partitions,
                                      compare_baseline=False)
        final = report.checkpoints[-1]
        # Bitwise per partition (verified in-run); the cross-partition
        # sums therefore agree bitwise too.
        assert final.query_payments == final.outcome_charges
        assert sum(final.query_payments) == sum(final.outcome_charges)
        # Wallet side: what left the wallets equals what the sub-accounts
        # banked (same amounts, different fold order -> tolerance).
        total_seed = sum(credit
                         for _, credit in _seed_wallets(config, report))
        wallets_now = sum(credit
                          for _, credit in report.cell.wallet_credit)
        banked = sum(final.query_payments)
        assert abs((total_seed - wallets_now) - banked) < 1e-6

    @settings(max_examples=4, deadline=None)
    @given(partitions=st.integers(min_value=2, max_value=6))
    def test_structure_ownership_is_disjoint(self, partitions):
        report = run_partitioned_cell(BASE_CONFIG, partitions=partitions,
                                      compare_baseline=False)
        partitioner = StructurePartitioner(partitions)
        # queries_served routed by the same stable hash on every rerun:
        # the per-partition structure counts are a function of ownership,
        # and the audit inside the run rejects any foreign admission. The
        # observable here: partitions with no structures advertise none.
        for stats in report.partitions:
            assert stats.local_structures >= 0
            assert stats.peak_cache_bytes >= 0
        assert partitioner.partition_count == report.partition_count


def _seed_wallets(config, report):
    """``(tenant_id, seed credit)`` for every wallet the cell reports."""
    ever = {tenant_id for tenant_id, _ in report.cell.wallet_credit}
    return [(tenant_id, config.initial_credit) for tenant_id in ever]


class TestSinglePartitionDegeneracy:
    @settings(max_examples=5, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=30),
        tenant_count=st.integers(min_value=1, max_value=12),
    )
    def test_one_partition_equals_global_run(self, seed, tenant_count):
        config = TenantExperimentConfig(
            scheme="econ-cheap", tenant_count=tenant_count, query_count=25,
            interarrival_s=1.0, seed=seed, settlement_period_s=8.0,
        )
        baseline = run_tenant_cell(config)
        report = run_partitioned_cell(config, partitions=1)
        assert report.cell.summary == baseline.summary
        assert report.cell.tenants == baseline.tenants
        assert report.cell.wallet_credit == baseline.wallet_credit
        assert tenant_aggregate_table(report.cell) == tenant_aggregate_table(
            baseline)
