"""Unit tests for the investment rule (Eq. 3)."""

import pytest

from repro.economy.account import CloudAccount
from repro.economy.investment import InvestmentPolicy
from repro.economy.regret import RegretTracker
from repro.errors import ConfigurationError
from repro.structures.cached_column import CachedColumn


@pytest.fixture
def column():
    return CachedColumn("lineitem", "l_shipdate")


class TestInvestScore:
    def test_eq3_rounding(self):
        policy = InvestmentPolicy(regret_fraction=0.1)
        # round(regret / (a * CR)): CR=100, a=0.1 -> threshold scale 10
        assert policy.invest_score(4.9, 100.0) == 0
        assert policy.invest_score(5.0, 100.0) == 0  # round-half-to-even at 0.5
        assert policy.invest_score(6.0, 100.0) == 1
        assert policy.invest_score(25.0, 100.0) == 2

    def test_zero_credit_means_no_score(self):
        policy = InvestmentPolicy(regret_fraction=0.5)
        assert policy.invest_score(100.0, 0.0) == 0

    def test_negative_regret_rejected(self):
        with pytest.raises(ConfigurationError):
            InvestmentPolicy().invest_score(-1.0, 10.0)

    def test_fraction_must_be_in_open_interval(self):
        with pytest.raises(ConfigurationError):
            InvestmentPolicy(regret_fraction=0.0)
        with pytest.raises(ConfigurationError):
            InvestmentPolicy(regret_fraction=1.0)


class TestEvaluate:
    def test_should_build_when_regret_and_credit_allow(self, column):
        policy = InvestmentPolicy(regret_fraction=0.1)
        account = CloudAccount(initial_credit=100.0)
        decision = policy.evaluate(column, regret=20.0, build_cost=50.0, account=account)
        assert decision.should_build
        assert decision.invest_score >= 1
        assert decision.affordable

    def test_unaffordable_build_is_blocked(self, column):
        policy = InvestmentPolicy(regret_fraction=0.1)
        account = CloudAccount(initial_credit=10.0)
        decision = policy.evaluate(column, regret=20.0, build_cost=50.0, account=account)
        assert not decision.should_build
        assert not decision.affordable

    def test_affordability_check_can_be_disabled(self, column):
        policy = InvestmentPolicy(regret_fraction=0.1, require_affordable=False)
        account = CloudAccount(initial_credit=10.0)
        decision = policy.evaluate(column, regret=20.0, build_cost=50.0, account=account)
        assert decision.should_build

    def test_low_regret_is_not_built(self, column):
        policy = InvestmentPolicy(regret_fraction=0.5)
        account = CloudAccount(initial_credit=100.0)
        decision = policy.evaluate(column, regret=1.0, build_cost=1.0, account=account)
        assert not decision.should_build


class TestCandidates:
    def test_candidates_sorted_by_regret_and_filtered(self, column):
        policy = InvestmentPolicy(regret_fraction=0.1)
        account = CloudAccount(initial_credit=100.0)
        tracker = RegretTracker()
        other = CachedColumn("lineitem", "l_discount")
        built = CachedColumn("lineitem", "l_quantity")
        tracker.add(column, 30.0)
        tracker.add(other, 60.0)
        tracker.add(built, 90.0)

        decisions = policy.candidates(
            tracker, account,
            build_cost_of=lambda structure: 5.0,
            built_keys={built.key},
        )
        keys = [decision.structure.key for decision in decisions]
        assert keys == [other.key, column.key]
        assert all(decision.should_build for decision in decisions)

    def test_candidates_respect_affordability(self, column):
        policy = InvestmentPolicy(regret_fraction=0.1)
        account = CloudAccount(initial_credit=1.0)
        tracker = RegretTracker()
        tracker.add(column, 50.0)
        decisions = policy.candidates(
            tracker, account, build_cost_of=lambda structure: 10.0,
        )
        assert decisions == []

    def test_empty_tracker_gives_no_candidates(self):
        policy = InvestmentPolicy()
        account = CloudAccount(initial_credit=100.0)
        assert policy.candidates(RegretTracker(), account,
                                 build_cost_of=lambda s: 1.0) == []
