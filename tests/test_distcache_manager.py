"""Tests for the partition-scoped cache manager (ownership + directory)."""

import pytest

from repro.cache.manager import CacheConfig
from repro.distcache import (
    CrossShardDirectory,
    PartitionedCacheManager,
    StructurePartitioner,
)
from repro.errors import DistCacheError
from repro.structures.cached_column import CachedColumn


def columns_owned_by(partitioner, partition, count=1):
    """``count`` CachedColumns whose keys hash to ``partition``."""
    found = []
    for i in range(10_000):
        column = CachedColumn("lineitem", f"c{i}")
        if partitioner.partition_of(column.key) == partition:
            found.append(column)
            if len(found) == count:
                return found
    raise AssertionError("not enough keys found")


def admit(manager, structure, size=100, cost=10.0, rate=0.01, now=0.0):
    return manager.admit(structure, size_bytes=size, build_cost=cost,
                         maintenance_rate=rate, now=now)


@pytest.fixture
def partitioner():
    return StructurePartitioner(partition_count=2)


@pytest.fixture
def cache(partitioner):
    return PartitionedCacheManager(partitioner=partitioner, partition_index=0)


class TestOwnershipGuard:
    def test_owned_structure_admits_normally(self, partitioner, cache):
        column, = columns_owned_by(partitioner, 0)
        admit(cache, column, size=500)
        assert cache.contains(column.key)
        assert cache.owns(column.key)
        assert cache.disk_used_bytes == 500

    def test_foreign_structure_rejected(self, partitioner, cache):
        column, = columns_owned_by(partitioner, 1)
        with pytest.raises(DistCacheError, match="belongs to partition"):
            admit(cache, column)
        assert not cache.contains(column.key)

    def test_inherits_cache_manager_semantics(self, partitioner):
        """LRU capacity eviction is reused, not forked: the budgeted
        partition evicts its least-recently-used owned entry."""
        cache = PartitionedCacheManager(
            CacheConfig(capacity_bytes=1_000),
            partitioner=partitioner, partition_index=0)
        first, second, third = columns_owned_by(partitioner, 0, count=3)
        admit(cache, first, size=400, now=0.0)
        admit(cache, second, size=400, now=1.0)
        cache.record_usage([first.key], now=2.0)
        evicted = admit(cache, third, size=400, now=3.0)
        assert [record.key for record in evicted] == [second.key]

    def test_invalid_partition_index_rejected(self, partitioner):
        with pytest.raises(DistCacheError):
            PartitionedCacheManager(partitioner=partitioner, partition_index=2)


class TestDirectoryView:
    def test_starts_with_empty_directory(self, cache):
        assert cache.directory.version == 0
        assert cache.remote_entry("column:lineitem.c0") is None

    def test_remote_entry_reflects_directory(self, partitioner, cache):
        column, = columns_owned_by(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {1: [(column.key, 777)]}, partitioner, version=1)
        cache.set_directory(directory)
        entry = cache.remote_entry(column.key)
        assert entry is not None
        assert entry.partition == 1
        assert entry.size_bytes == 777

    def test_local_presence_beats_directory(self, partitioner, cache):
        column, = columns_owned_by(partitioner, 0)
        admit(cache, column)
        directory = CrossShardDirectory.publish(
            {0: [(column.key, 100)]}, partitioner, version=1)
        cache.set_directory(directory)
        assert cache.remote_entry(column.key) is None

    def test_snapshot_lists_live_structures(self, partitioner, cache):
        first, second = columns_owned_by(partitioner, 0, count=2)
        admit(cache, first, size=10)
        admit(cache, second, size=20)
        assert cache.snapshot() == ((first.key, 10), (second.key, 20))


class TestPeakBytes:
    def test_peak_survives_eviction(self, partitioner, cache):
        first, second = columns_owned_by(partitioner, 0, count=2)
        admit(cache, first, size=300, now=0.0)
        admit(cache, second, size=500, now=1.0)
        assert cache.peak_disk_used_bytes == 800
        cache.evict(first.key, now=2.0)
        assert cache.disk_used_bytes == 500
        assert cache.peak_disk_used_bytes == 800
