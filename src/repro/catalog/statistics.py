"""Selectivity and cardinality estimation over the analytic catalog.

The planner and the cost model need to know, for every query, how many rows
and bytes a plan touches and how many it returns. The estimator implements
the textbook System-R style rules (equality selects ``1/distinct``, ranges
select a fixed fraction, conjunctions multiply under independence) which is
all the original paper's optimizer-backed cost model relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.catalog.schema import Schema
from repro.errors import SchemaError


#: Default selectivity of a range predicate when no better estimate exists;
#: the classic System-R assumption.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0

#: Floor applied to every estimate so downstream divisions stay finite.
MIN_SELECTIVITY = 1e-9


@dataclass(frozen=True)
class ColumnStatistics:
    """Summary statistics of one column as the estimator sees it."""

    qualified_name: str
    row_count: int
    distinct_count: int
    width_bytes: int

    @property
    def equality_selectivity(self) -> float:
        """Fraction of rows matching ``column = constant``."""
        return max(MIN_SELECTIVITY, 1.0 / max(1, self.distinct_count))


class SelectivityEstimator:
    """Estimates predicate selectivities and result cardinalities."""

    def __init__(self, schema: Schema,
                 range_selectivity: float = DEFAULT_RANGE_SELECTIVITY) -> None:
        if not 0.0 < range_selectivity <= 1.0:
            raise SchemaError(
                f"range_selectivity must be in (0, 1], got {range_selectivity}"
            )
        self._schema = schema
        self._range_selectivity = range_selectivity
        self._cache: Dict[str, ColumnStatistics] = {}

    @property
    def schema(self) -> Schema:
        """The schema the estimator was built over."""
        return self._schema

    def column_statistics(self, table_name: str, column_name: str) -> ColumnStatistics:
        """Statistics of one column (cached)."""
        key = f"{table_name}.{column_name}"
        if key not in self._cache:
            table = self._schema.table(table_name)
            column = table.column(column_name)
            distinct = max(1, int(round(column.distinct_fraction * table.row_count)))
            self._cache[key] = ColumnStatistics(
                qualified_name=key,
                row_count=table.row_count,
                distinct_count=distinct,
                width_bytes=column.width_bytes,
            )
        return self._cache[key]

    # -- predicate selectivities --------------------------------------------

    def equality_selectivity(self, table_name: str, column_name: str) -> float:
        """Selectivity of ``column = constant``."""
        return self.column_statistics(table_name, column_name).equality_selectivity

    def range_selectivity(self, table_name: str, column_name: str,
                          fraction: Optional[float] = None) -> float:
        """Selectivity of a range predicate over one column.

        Args:
            fraction: explicit fraction of the column's domain covered by the
                range; defaults to the System-R constant.
        """
        self.column_statistics(table_name, column_name)  # validates names
        selectivity = self._range_selectivity if fraction is None else fraction
        if not 0.0 <= selectivity <= 1.0:
            raise SchemaError(f"range fraction must be in [0, 1], got {selectivity}")
        return max(MIN_SELECTIVITY, selectivity)

    def conjunction_selectivity(self, selectivities: Iterable[float]) -> float:
        """Selectivity of an AND of independent predicates."""
        combined = 1.0
        for selectivity in selectivities:
            if not 0.0 <= selectivity <= 1.0:
                raise SchemaError(
                    f"selectivity must be in [0, 1], got {selectivity}"
                )
            combined *= selectivity
        return max(MIN_SELECTIVITY, combined)

    # -- cardinalities and sizes ----------------------------------------------

    def output_rows(self, table_name: str, selectivity: float) -> int:
        """Number of rows a scan of ``table_name`` returns at ``selectivity``."""
        table = self._schema.table(table_name)
        return max(1, int(round(table.row_count * selectivity)))

    def output_bytes(self, table_name: str, column_names: Iterable[str],
                     selectivity: float) -> int:
        """Bytes returned when projecting ``column_names`` at ``selectivity``."""
        table = self._schema.table(table_name)
        width = sum(table.column(name).width_bytes for name in column_names)
        if width == 0:
            width = table.row_width_bytes
        return max(1, int(round(width * table.row_count * selectivity)))

    def scanned_bytes(self, table_name: str, column_names: Iterable[str]) -> int:
        """Bytes a column-store scan reads when touching ``column_names``."""
        table = self._schema.table(table_name)
        names = list(column_names)
        if not names:
            return table.size_bytes
        return sum(table.column_size_bytes(name) for name in names)
