"""Tests for market-shock fault injection: events, handlers, engine hooks."""

import pytest

from repro.cache.manager import CacheConfig, CacheManager
from repro.economy.account import CloudAccount
from repro.economy.engine import EconomyConfig, EconomyEngine
from repro.economy.negotiation import PlanSelection
from repro.economy.user_model import UserModel
from repro.errors import ConfigurationError, SimulationError
from repro.planner.enumerator import EnumeratorConfig, PlanEnumerator
from repro.simulator.events import (
    EventQueue,
    MaintenanceSettlementEvent,
    ProviderPriceShockEvent,
    QueryArrivalEvent,
    StructureFailureCheckEvent,
    StructureInvalidationEvent,
    TenantBudgetSqueezeEvent,
)
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.workload.generator import WorkloadGenerator, WorkloadSpec


def make_engine(execution_model, structure_costs, system,
                **economy_overrides):
    defaults = dict(
        regret_fraction=0.01,
        amortization_horizon=5_000,
        initial_credit=200.0,
        plan_selection=PlanSelection.CHEAPEST,
        user_model=UserModel(budget_factor=1.3),
    )
    defaults.update(economy_overrides)
    enumerator = PlanEnumerator(
        execution_model,
        candidate_indexes=system.candidate_indexes,
        config=EnumeratorConfig(allow_index_plans=True, max_extra_nodes=1),
    )
    return EconomyEngine(
        enumerator=enumerator,
        structure_costs=structure_costs,
        cache=CacheManager(CacheConfig()),
        config=EconomyConfig(**defaults),
    )


@pytest.fixture
def workload():
    spec = WorkloadSpec(query_count=80, interarrival_s=2.0, seed=13,
                        budget_scale_sigma=0.05)
    return WorkloadGenerator(spec).generate()


def query_payment_conservation(engine) -> bool:
    """The bitwise fold identity: provider deposits == outcome charges."""
    banked = engine.account.totals_by_category().get(
        CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0)
    charged = 0.0
    for outcome in engine.outcomes:
        charged += outcome.charge
    return banked == charged


class TestShockEventValidation:
    def test_price_shock_factor_must_be_positive(self):
        with pytest.raises(SimulationError):
            ProviderPriceShockEvent(time_s=1.0, factor=0.0)
        with pytest.raises(SimulationError):
            TenantBudgetSqueezeEvent(time_s=1.0, factor=-2.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            StructureInvalidationEvent(time_s=-1.0)

    def test_documented_priority_ladder(self):
        assert (MaintenanceSettlementEvent.priority
                < StructureInvalidationEvent.priority
                < ProviderPriceShockEvent.priority
                < TenantBudgetSqueezeEvent.priority
                < StructureFailureCheckEvent.priority
                < QueryArrivalEvent.priority)


class TestSameInstantDispatchOrder:
    def test_shocks_dispatch_after_settlement_before_queries(
            self, sample_query):
        queue = EventQueue()
        # Pushed deliberately out of order; all at the same instant.
        queue.push(QueryArrivalEvent(time_s=5.0, query=sample_query()))
        queue.push(TenantBudgetSqueezeEvent(time_s=5.0, factor=0.5))
        queue.push(ProviderPriceShockEvent(time_s=5.0, factor=2.0))
        queue.push(StructureInvalidationEvent(time_s=5.0))
        queue.push(MaintenanceSettlementEvent(time_s=5.0))
        order = [type(queue.pop()) for _ in range(5)]
        assert order == [
            MaintenanceSettlementEvent,
            StructureInvalidationEvent,
            ProviderPriceShockEvent,
            TenantBudgetSqueezeEvent,
            QueryArrivalEvent,
        ]


class TestEngineShockHooks:
    def test_price_shock_sets_the_factor_and_counts(
            self, execution_model, structure_costs, system):
        engine = make_engine(execution_model, structure_costs, system)
        assert engine.price_factor == 1.0
        engine.apply_price_shock(3.0)
        assert engine.price_factor == 3.0
        engine.apply_price_shock(1.0)  # relief
        assert engine.price_factor == 1.0
        assert engine.shock_counts["price_shock"] == 2
        with pytest.raises(ConfigurationError):
            engine.apply_price_shock(0.0)

    def test_budget_squeeze_sets_the_factor_and_counts(
            self, execution_model, structure_costs, system):
        engine = make_engine(execution_model, structure_costs, system)
        engine.apply_budget_squeeze(0.5)
        assert engine.budget_factor == 0.5
        assert engine.shock_counts["budget_squeeze"] == 1
        with pytest.raises(ConfigurationError):
            engine.apply_budget_squeeze(-1.0)

    def test_invalidation_destroys_matching_structures(
            self, execution_model, structure_costs, system, workload):
        engine = make_engine(execution_model, structure_costs, system)
        engine.process_workload(workload)
        assert engine.cache.entries, "workload should have built structures"
        before = {entry.structure.key for entry in engine.cache.entries}
        now = workload[-1].arrival_time
        records = engine.invalidate_structures("", now)
        assert {record.key for record in records} == before
        assert not engine.cache.entries
        assert engine.shock_counts["invalidation"] == 1

    def test_invalidation_predicate_filters_by_key(
            self, execution_model, structure_costs, system, workload):
        engine = make_engine(execution_model, structure_costs, system)
        engine.process_workload(workload)
        keys = {entry.structure.key for entry in engine.cache.entries}
        matching = {key for key in keys if "index" in key}
        records = engine.invalidate_structures(
            "index", workload[-1].arrival_time)
        assert {record.key for record in records} == matching
        survivors = {entry.structure.key for entry in engine.cache.entries}
        assert survivors == keys - matching


class TestStrictMaintenance:
    def test_disabled_policy_is_a_no_op(
            self, execution_model, structure_costs, system, workload):
        engine = make_engine(execution_model, structure_costs, system)
        engine.process_workload(workload)
        assert engine.enforce_maintenance(workload[-1].arrival_time) == ()
        assert engine.cache.entries

    def test_same_instant_enforcement_is_idempotent(
            self, execution_model, structure_costs, system, workload):
        """Regression: a periodic settlement and the trailing final
        settlement can land on the same instant. The second enforcement
        must be a no-op — without the per-instant guard it would see zero
        income since the just-moved mark and shut everything down."""
        engine = make_engine(execution_model, structure_costs, system,
                             strict_maintenance=True)
        engine.process_workload(workload)
        assert engine.cache.entries
        now = workload[-1].arrival_time + 10.0
        engine.enforce_maintenance(now)
        survivors = {entry.structure.key for entry in engine.cache.entries}
        assert engine.enforce_maintenance(now) == ()
        assert {entry.structure.key
                for entry in engine.cache.entries} == survivors

    def test_later_instants_enforce_again(
            self, execution_model, structure_costs, system, workload):
        """The guard is per-instant, not permanent: at a later settlement
        with no income since the mark, accrual forces shutdowns."""
        engine = make_engine(execution_model, structure_costs, system,
                             strict_maintenance=True)
        engine.process_workload(workload)
        assert engine.cache.entries
        end = workload[-1].arrival_time
        engine.enforce_maintenance(end + 10.0)
        records = engine.enforce_maintenance(end + 10_000.0)
        assert records, "idle accrual with zero income must shut down"
        assert all(record.reason == "maintenance_shutdown"
                   for record in records)


class TestSimulationUnderShocks:
    def run_with(self, system, workload, events,
                 settlement_period_s=20.0):
        scheme = system.scheme("econ-cheap")
        result = CloudSimulation(
            scheme,
            SimulationConfig(settlement_period_s=settlement_period_s),
        ).run(workload, shock_events=events)
        return scheme, result

    def test_mid_run_invalidation_books_eviction_losses(
            self, system, workload):
        mid = workload[len(workload) // 2].arrival_time
        _, clean = self.run_with(system, workload, ())
        scheme, shocked = self.run_with(
            system, workload,
            (StructureInvalidationEvent(time_s=mid),))
        assert shocked.summary.evictions > clean.summary.evictions
        assert shocked.summary.eviction_losses > clean.summary.eviction_losses
        assert query_payment_conservation(scheme.engine)

    def test_price_shock_window_conserves_credit(self, system, workload):
        mid = workload[len(workload) // 2].arrival_time
        end = workload[-1].arrival_time
        scheme, result = self.run_with(
            system, workload,
            (ProviderPriceShockEvent(time_s=mid, factor=4.0),
             ProviderPriceShockEvent(time_s=min(mid + 40.0, end),
                                     factor=1.0)))
        assert result.summary.query_count == len(workload)
        assert query_payment_conservation(scheme.engine)
        assert scheme.engine.price_factor == 1.0  # relief restored spot

    def test_budget_squeeze_window_conserves_credit(self, system, workload):
        mid = workload[len(workload) // 2].arrival_time
        end = workload[-1].arrival_time
        scheme, result = self.run_with(
            system, workload,
            (TenantBudgetSqueezeEvent(time_s=mid, factor=0.4),
             TenantBudgetSqueezeEvent(time_s=min(mid + 40.0, end),
                                      factor=1.0)))
        assert result.summary.query_count == len(workload)
        assert query_payment_conservation(scheme.engine)
        assert scheme.engine.budget_factor == 1.0

    def test_full_shock_sequence_conserves_credit(self, system, workload):
        span = workload[-1].arrival_time - workload[0].arrival_time
        first = workload[0].arrival_time
        events = (
            StructureInvalidationEvent(time_s=first + 0.35 * span,
                                       predicate="index"),
            ProviderPriceShockEvent(time_s=first + 0.5 * span, factor=3.0),
            ProviderPriceShockEvent(time_s=first + 0.7 * span, factor=1.0),
            TenantBudgetSqueezeEvent(time_s=first + 0.65 * span, factor=0.5),
            TenantBudgetSqueezeEvent(time_s=first + 0.9 * span, factor=1.0),
        )
        scheme, result = self.run_with(system, workload, events)
        assert result.summary.query_count == len(workload)
        assert query_payment_conservation(scheme.engine)
        counts = scheme.engine.shock_counts
        assert counts == {"invalidation": 1, "price_shock": 2,
                          "budget_squeeze": 2}

    def test_price_shock_scales_the_maintenance_rate(self, system, workload):
        scheme = system.scheme("econ-cheap")
        CloudSimulation(scheme).run(workload)
        base = scheme.maintenance_rate()
        assert base > 0, "built structures should accrue maintenance"
        scheme.apply_price_shock(2.0, workload[-1].arrival_time)
        assert scheme.maintenance_rate() == pytest.approx(2.0 * base)
