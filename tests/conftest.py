"""Shared fixtures for the test suite.

The heavyweight objects (the 2.5 TB schema, the assembled CloudSystem) are
session-scoped: they are analytic descriptions, cheap to query but not free
to rebuild hundreds of times.
"""

from __future__ import annotations

import pytest

from repro.catalog.statistics import SelectivityEstimator
from repro.catalog.tpch import build_tpch_schema
from repro.costmodel.build import StructureCostModel
from repro.costmodel.config import CostModelConfig
from repro.costmodel.execution import ExecutionCostModel
from repro.system import CloudSystem
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.templates import paper_templates, template_by_name


@pytest.fixture(scope="session")
def schema():
    """The 2.5 TB TPC-H-like schema."""
    return build_tpch_schema()


@pytest.fixture(scope="session")
def estimator(schema):
    """Selectivity estimator over the session schema."""
    return SelectivityEstimator(schema)


@pytest.fixture(scope="session")
def execution_model(estimator):
    """Execution cost model with the paper's default configuration."""
    return ExecutionCostModel(CostModelConfig(), estimator)


@pytest.fixture(scope="session")
def structure_costs(execution_model):
    """Structure build/maintenance cost model."""
    return StructureCostModel(execution_model)


@pytest.fixture(scope="session")
def system():
    """A fully assembled CloudSystem (schema, cost models, index advisor)."""
    return CloudSystem()


@pytest.fixture(scope="session")
def small_workload():
    """A deterministic 120-query workload at a 5-second inter-arrival time."""
    spec = WorkloadSpec(query_count=120, interarrival_s=5.0, seed=42)
    return WorkloadGenerator(spec).generate()


@pytest.fixture
def sample_query():
    """Factory: a concrete query instance of a given template."""

    def _make(template_name: str = "q6_forecast_revenue", query_id: int = 0,
              arrival_time: float = 0.0, budget_scale: float = 1.0):
        template = template_by_name(template_name)
        return template.instantiate(
            query_id=query_id, arrival_time=arrival_time,
            budget_scale=budget_scale,
        )

    return _make


@pytest.fixture(scope="session")
def all_templates():
    """The paper's seven query templates."""
    return paper_templates()
