"""Bitwise-parity tests of the vectorized batch evaluator.

The contract under test is strict: every float the batch pass produces
must equal — ``==``, not ``pytest.approx`` — the float the scalar
execution model computes for the same (query, plan) pair.
"""

import numpy as np
import pytest

from repro.costmodel.vectorized import (
    ESTIMATE_FIELDS,
    evaluate_plan_table,
    skyline_filter,
)
from repro.errors import PlanningError
from repro.planner.enumerator import PlanEnumerator
from repro.planner.plan_table import build_plan_table
from repro.planner.skyline import skyline_indices
from repro.structures.cached_index import CachedIndex
from repro.workload.templates import template_by_name


@pytest.fixture
def enumerator(execution_model):
    return PlanEnumerator(
        execution_model,
        candidate_indexes=(
            CachedIndex("lineitem", ("l_shipdate",)),
            CachedIndex("lineitem", ("l_quantity", "l_shipmode")),
        ),
    )


def instance_batch(template_name, count, seed=0):
    template = template_by_name(template_name)
    rng = np.random.default_rng(seed)
    queries = []
    for index in range(count):
        query = template.instantiate(query_id=index,
                                     arrival_time=float(index))
        # Perturb the resolved selectivities through fresh predicate
        # objects so instances genuinely differ.
        predicates = tuple(
            type(p)(p.table_name, p.column_name, p.kind,
                    min(1.0, max(1e-6, p.selectivity * rng.uniform(0.2, 1.8)))
                    if p.selectivity is not None else None)
            for p in query.predicates
        )
        queries.append(type(query)(
            query_id=query.query_id, template_name=query.template_name,
            table_name=query.table_name, predicates=predicates,
            projection_columns=query.projection_columns,
            aggregation_factor=query.aggregation_factor,
            arrival_time=query.arrival_time,
            parallel_fraction=query.parallel_fraction,
            base_cost_factor=query.base_cost_factor,
            budget_scale=query.budget_scale,
            tenant_id=query.tenant_id,
        ))
    return queries


@pytest.mark.parametrize("template_name", [
    "q6_forecast_revenue", "q14_promotion_effect", "q1_pricing_summary",
])
def test_batch_estimates_bitwise_equal_scalar(template_name, enumerator,
                                              execution_model):
    queries = instance_batch(template_name, count=17, seed=3)
    table = build_plan_table(queries[0], enumerator, execution_model)
    estimates = evaluate_plan_table(table, queries, execution_model)

    for column, query in enumerate(queries):
        scalar_plans = enumerator.enumerate(query)
        assert len(scalar_plans) == table.row_count
        for row, plan in enumerate(scalar_plans):
            scalar = plan.execution
            for name in ESTIMATE_FIELDS:
                assert estimates.value(name, row, column) == getattr(
                    scalar, name
                ), (template_name, query.query_id, plan.label, name)
            assert (estimates.execution_dollars_for(column)[row]
                    == scalar.dollars)
            batch_estimate = estimates.estimate_for(row, column)
            assert batch_estimate == scalar


def test_constant_rows_share_proto_estimate(enumerator, execution_model):
    queries = instance_batch("q6_forecast_revenue", count=4)
    table = build_plan_table(queries[0], enumerator, execution_model)
    estimates = evaluate_plan_table(table, queries, execution_model)
    for row_index, row in enumerate(table.rows):
        if row.constant:
            assert estimates.estimate_for(row_index, 2) is row.plan.execution


def test_mismatched_query_rejected(enumerator, execution_model):
    queries = instance_batch("q6_forecast_revenue", count=2)
    table = build_plan_table(queries[0], enumerator, execution_model)
    stranger = template_by_name("q1_pricing_summary").instantiate(
        query_id=99, arrival_time=0.0
    )
    with pytest.raises(PlanningError):
        evaluate_plan_table(table, [stranger], execution_model)
    with pytest.raises(PlanningError):
        evaluate_plan_table(table, [], execution_model)


class TestVectorizedSkyline:
    def test_matches_scalar_selection_and_order(self):
        rng = np.random.default_rng(11)
        for trial in range(50):
            count = int(rng.integers(1, 30))
            times = rng.uniform(0.0, 5.0, count)
            costs = rng.uniform(0.0, 5.0, count)
            # Inject exact ties to exercise the tolerance handling.
            if count > 3:
                times[1] = times[0]
                costs[2] = costs[0]
            scalar = skyline_indices(times.tolist(), costs.tolist())
            vectorized = skyline_filter(times, costs)
            assert vectorized == scalar

    def test_empty(self):
        assert skyline_filter(np.array([]), np.array([])) == []
