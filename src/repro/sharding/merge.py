"""Exact merge of per-shard results back into one cell result.

The merge has two jobs, in order:

1. **Verify the barriers.** Every replicated quantity — the run summary,
   the population shape, and the replicated half of every
   :class:`~repro.sharding.worker.SettlementCheckpoint` — must be bitwise
   identical across shards. Divergence means the replay was not
   deterministic, and the merge refuses to produce a result built on it.
   Shard-local halves must *add up*: at every settlement barrier the
   credit that left the owned wallets of all shards together equals the
   query payments the (replicated) provider account banked.

2. **Fold the ownership.** Per-tenant breakdowns and wallets are disjoint
   across shards by construction of the partitioner, so the fold is a
   concatenation plus a re-sort under the same total orders the unsharded
   run uses — which is what makes the merged report byte-identical to the
   single-process one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ShardingError
from repro.experiments.tenants import TenantCellResult, TenantExperimentConfig
from repro.obs.metrics import MetricsTimeseries
from repro.obs.trace import TraceRecorder
from repro.sharding.worker import ShardResult
from repro.simulator.metrics import TenantBreakdown

#: Tolerance of the cross-shard conservation audit. Shard-local sums reduce
#: the same ledger entries in a different association order than the
#: provider's running total, so the comparison is close-to, not bitwise.
CONSERVATION_REL_TOL = 1e-9
CONSERVATION_ABS_TOL = 1e-6


@dataclass(frozen=True)
class ShardMergeReport:
    """A merged cell plus the audit trail of how it was verified."""

    cell: TenantCellResult
    shard_count: int
    owned_tenants_per_shard: Tuple[int, ...]
    barriers_verified: int
    max_conservation_residual: float
    trace: Optional[TraceRecorder] = None
    metrics: Optional[MetricsTimeseries] = None


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ShardingError(message)


def _conserved(lhs: float, rhs: float) -> float:
    """Residual of a conservation identity; raises when out of tolerance."""
    residual = abs(lhs - rhs)
    if not math.isclose(lhs, rhs, rel_tol=CONSERVATION_REL_TOL,
                        abs_tol=CONSERVATION_ABS_TOL):
        raise ShardingError(
            f"credit conservation violated: {lhs!r} != {rhs!r} "
            f"(residual {residual!r})"
        )
    return residual


def _verify_replicated(shards: Sequence[ShardResult]) -> None:
    """Every replicated quantity must agree bitwise across shards."""
    first = shards[0]
    for shard in shards[1:]:
        for attribute in ("scheme", "summary", "population_size",
                          "churn_waves"):
            if getattr(shard, attribute) != getattr(first, attribute):
                raise ShardingError(
                    f"determinism barrier failed: shard {shard.shard_index} "
                    f"disagrees with shard {first.shard_index} on "
                    f"{attribute}"
                )
        if len(shard.checkpoints) != len(first.checkpoints):
            raise ShardingError(
                f"determinism barrier failed: shard {shard.shard_index} saw "
                f"{len(shard.checkpoints)} settlement barriers, shard "
                f"{first.shard_index} saw {len(first.checkpoints)}"
            )
        for reference, observed in zip(first.checkpoints, shard.checkpoints):
            for attribute in ("time_s", "queries_dispatched",
                              "provider_credit", "provider_query_payments"):
                if getattr(observed, attribute) != getattr(reference, attribute):
                    raise ShardingError(
                        f"determinism barrier failed at t={reference.time_s}: "
                        f"shard {shard.shard_index} disagrees on {attribute} "
                        f"({getattr(observed, attribute)!r} != "
                        f"{getattr(reference, attribute)!r})"
                    )


def _verify_conservation(shards: Sequence[ShardResult]) -> Tuple[int, float]:
    """Cross-shard credit conservation at every settlement barrier.

    Two identities per barrier:

    * each shard's own books balance: the seed credit minted by the
      barrier (``owned_seed_credit`` — constant for eager registration,
      growing with arrivals for a generative registry) == wallet credit
      left plus everything charged out of the shard's wallets;
    * the union of shard-local charges equals the query payments the
      replicated provider account banked — i.e. every dollar the provider
      received was booked by exactly one owning shard.

    Returns:
        ``(barriers verified, max residual observed)``.
    """
    barrier_count = len(shards[0].checkpoints)
    max_residual = 0.0
    for barrier in range(barrier_count):
        points = [shard.checkpoints[barrier] for shard in shards]
        for shard, point in zip(shards, points):
            max_residual = max(max_residual, _conserved(
                point.owned_seed_credit,
                point.owned_wallet_credit + point.owned_charged,
            ))
        max_residual = max(max_residual, _conserved(
            sum(point.owned_charged for point in points),
            points[0].provider_query_payments,
        ))
    # End-of-run, per shard: what it booked plus what it saw others own
    # must equal the provider's income — a mis-tallied foreign charge
    # cannot hide behind the cross-shard sum above.
    for shard in shards:
        final = shard.checkpoints[-1]
        max_residual = max(max_residual, _conserved(
            final.owned_charged + shard.foreign_charged,
            final.provider_query_payments,
        ))
        # By the final barrier every tenant has been minted, so the
        # barrier's seed-so-far must equal the shard's reported total —
        # exactly, both being the same running sum.
        _require(
            final.owned_seed_credit == shard.owned_initial_credit,
            f"shard {shard.shard_index} finished with "
            f"owned_seed_credit={final.owned_seed_credit!r} but reported "
            f"owned_initial_credit={shard.owned_initial_credit!r}",
        )
    return barrier_count, max_residual


def merge_shard_results(shards: Sequence[ShardResult],
                        config: TenantExperimentConfig) -> ShardMergeReport:
    """Fold one cell's shard results into a verified merged cell.

    Args:
        shards: one :class:`ShardResult` per shard, any order.
        config: the cell configuration the shards executed.

    Returns:
        The merged cell plus its audit trail.

    Raises:
        ShardingError: on missing/duplicate shards, on any determinism
            barrier divergence, or on a conservation violation.
    """
    results = sorted(shards, key=lambda shard: shard.shard_index)
    _require(bool(results), "cannot merge zero shard results")
    shard_count = results[0].shard_count
    _require(
        all(shard.shard_count == shard_count for shard in results),
        "shard results disagree on the shard count",
    )
    _require(
        [shard.shard_index for shard in results] == list(range(shard_count)),
        f"expected shard indices 0..{shard_count - 1}, got "
        f"{sorted(shard.shard_index for shard in shards)}",
    )
    _verify_replicated(results)
    barriers, max_residual = (0, 0.0)
    if results[0].checkpoints:
        barriers, max_residual = _verify_conservation(results)

    # Ownership must be disjoint: every tenant reported by exactly one shard.
    merged_breakdowns: List[TenantBreakdown] = []
    for shard in results:
        merged_breakdowns.extend(shard.tenants)
    tenant_ids = [item.tenant_id for item in merged_breakdowns]
    _require(len(tenant_ids) == len(set(tenant_ids)),
             "a tenant was reported by more than one shard")
    merged_breakdowns.sort(key=lambda item: (-item.query_count, item.tenant_id))

    wallet_entries: List[Tuple[int, str, float]] = []
    for shard in results:
        wallet_entries.extend(shard.wallets)
    wallet_ids = [tenant_id for _, tenant_id, _ in wallet_entries]
    _require(len(wallet_ids) == len(set(wallet_ids)),
             "a wallet was reported by more than one shard")
    wallet_entries.sort(key=lambda entry: (entry[0], entry[1]))
    wallets = tuple((tenant_id, credit)
                    for _, tenant_id, credit in wallet_entries)

    cell = TenantCellResult(
        config=config,
        summary=results[0].summary,
        tenants=tuple(merged_breakdowns),
        wallet_credit=wallets,
        population_size=results[0].population_size,
        churn_waves=results[0].churn_waves,
    )
    # Fold per-shard trace recorders and metrics collectors (when the
    # cell ran observed) the same way the checkpoints fold: records and
    # samples keep their shard source tags, so the merged series report
    # the replicated replay per shard.
    trace: Optional[TraceRecorder] = None
    if any(shard.trace is not None for shard in results):
        trace = TraceRecorder(source="merge")
        for shard in results:
            if shard.trace is not None:
                trace.absorb(shard.trace)
    metrics: Optional[MetricsTimeseries] = None
    if any(shard.metrics is not None for shard in results):
        metrics = MetricsTimeseries(source="merge")
        for shard in results:
            if shard.metrics is not None:
                metrics.absorb(shard.metrics)
    return ShardMergeReport(
        cell=cell,
        shard_count=shard_count,
        owned_tenants_per_shard=tuple(
            shard.owned_tenant_count for shard in results),
        barriers_verified=barriers,
        max_conservation_residual=max_residual,
        trace=trace,
        metrics=metrics,
    )
