"""Epoch-level batch scheduling for the vectorized planning fast path.

The :class:`BatchScheduler` sits between the simulator and the engine's
per-query pipeline: :meth:`BatchScheduler.prime` receives the upcoming
arrivals (once per run, or once per partition epoch in the distributed
runner) and splits them into **epochs** at settlement boundaries; when the
engine asks for the first query of an unevaluated epoch, every template's
batch across as many consecutive epochs as fit in the memory bound is
scored in one vectorized pass
(:func:`repro.costmodel.vectorized.evaluate_plan_table`) and the per-query
results are handed out as the queries arrive.

Only *execution estimates* are precomputed this way — they depend on the
query instance and the immutable cost model alone, never on cache state,
so scoring ahead of time is exact. Pricing against the mutable cache
(amortisation charges, accrued maintenance, what is built) stays strictly
per-query inside the engine, which is how the batched path keeps outcomes
bit-for-bit identical to scalar processing.

Evaluated blocks are dropped as soon as their last query is consumed, so
a scheduler that has drained an epoch holds no numpy arrays — relevant in
the partitioned runner, where schemes are pickled back to the coordinator
after every epoch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.costmodel.execution import ExecutionCostModel
from repro.costmodel.vectorized import BatchPlanEstimates, evaluate_plan_table
from repro.planner.enumerator import PlanEnumerator
from repro.planner.plan_table import PlanTable, PlanTableCache
from repro.workload.query import Query

#: Upper bound on queries evaluated in one vectorized pass when no
#: settlement period splits the workload (bounds peak array memory).
DEFAULT_MAX_BATCH_SIZE = 4096


@dataclass
class BatchPricingContext:
    """Mutable per-query pricing state of the batched planner.

    Built by the engine's batched pricing pass and handed to the
    remote-adjustment hook (the partitioned engine rewrites rows whose new
    structures are remotely advertised) before skyline selection and
    materialisation. All per-row lists are indexed by plan-table row;
    per-structure lists by the table's unique-structure slot.
    """

    __slots__ = (
        "table", "estimates", "column", "times", "execution_dollars",
        "charges", "cached_flags", "maintenance", "amortized", "prices",
        "existing", "remote_surcharges",
    )

    table: PlanTable
    estimates: BatchPlanEstimates
    column: int
    times: List[float]
    execution_dollars: List[float]
    charges: List[float]
    cached_flags: List[bool]
    maintenance: List[float]
    amortized: List[float]
    prices: List[float]
    existing: List[bool]
    # Per unique-structure slot: (dollars, seconds, shipped_bytes) for
    # structures served from a remote partition, else None. None as a whole
    # means no remote adjustment applies.
    remote_surcharges: Optional[List[Optional[Tuple[float, float, float]]]]


class _TemplateBlock:
    """One template's evaluated batch within the current epoch."""

    __slots__ = ("table", "estimates")

    def __init__(self, table: PlanTable, estimates: BatchPlanEstimates) -> None:
        self.table = table
        self.estimates = estimates


class BatchScheduler:
    """Groups primed arrivals into epochs and evaluates them lazily."""

    def __init__(self, enumerator: PlanEnumerator,
                 execution_model: ExecutionCostModel,
                 tables: Optional[PlanTableCache] = None,
                 max_batch_size: int = DEFAULT_MAX_BATCH_SIZE) -> None:
        if max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        self._enumerator = enumerator
        self._execution = execution_model
        self._tables = tables if tables is not None else PlanTableCache()
        self._max_batch = max_batch_size
        self._epochs: List[List[Query]] = []
        self._epoch_of: Dict[int, int] = {}
        self._window_end = -1
        self._blocks: Dict[str, _TemplateBlock] = {}
        self._columns: Dict[int, Tuple[str, int]] = {}
        self._remaining = 0
        # Observability sink (duck-typed TraceRecorder); None = disabled.
        self._trace = None

    def attach_trace(self, recorder) -> None:
        """Attach a read-only trace recorder (batch-window events)."""
        self._trace = recorder

    @property
    def tables(self) -> PlanTableCache:
        """The plan-table cache (shared across primes and epochs)."""
        return self._tables

    @property
    def pending_queries(self) -> int:
        """Primed queries not yet handed out."""
        return len(self._epoch_of)

    def prime(self, queries: Sequence[Query],
              settlement_period_s: Optional[float] = None) -> None:
        """Register upcoming arrivals, replacing any previous priming.

        Args:
            queries: the arrivals, in arrival order.
            settlement_period_s: when set, epoch boundaries follow the
                simulation's settlement grid (arrivals between consecutive
                settlement events form one epoch); otherwise the workload
                is chunked by :data:`DEFAULT_MAX_BATCH_SIZE` alone.
        """
        ordered = list(queries)
        epochs: List[List[Query]] = []
        if ordered and settlement_period_s:
            start_s = ordered[0].arrival_time
            last_slot: Optional[int] = None
            for query in ordered:
                slot = int((query.arrival_time - start_s) // settlement_period_s)
                if slot != last_slot:
                    epochs.append([])
                    last_slot = slot
                epochs[-1].append(query)
        elif ordered:
            epochs.append(ordered)
        # Cap epoch size so one vectorized pass stays memory-bounded.
        capped: List[List[Query]] = []
        for epoch in epochs:
            for offset in range(0, len(epoch), self._max_batch):
                capped.append(epoch[offset:offset + self._max_batch])
        self._epochs = capped
        self._epoch_of = {}
        for index, epoch in enumerate(capped):
            for query in epoch:
                self._epoch_of[query.query_id] = index
        self._window_end = -1
        self._blocks = {}
        self._columns = {}
        self._remaining = 0

    def view_for(self, query: Query
                 ) -> Optional[Tuple[PlanTable, BatchPlanEstimates, int]]:
        """The evaluated batch view of ``query``, or ``None`` to fall back.

        Each primed query is handed out exactly once; asking again (or
        asking for an unprimed query) returns ``None`` and the engine runs
        its scalar path, which is outcome-identical by construction.
        """
        epoch = self._epoch_of.pop(query.query_id, None)
        if epoch is None:
            return None
        if epoch > self._window_end:
            self._evaluate_window(epoch)
        entry = self._columns.pop(query.query_id, None)
        if entry is None:
            return None
        template_name, column = entry
        block = self._blocks.get(template_name)
        if block is None:
            return None
        self._remaining -= 1
        if self._remaining <= 0:
            # Window drained: release the arrays eagerly.
            self._blocks = {}
            self._columns = {}
        return block.table, block.estimates, column

    def clear(self) -> None:
        """Drop all primed queries and evaluated blocks."""
        self._epochs = []
        self._epoch_of = {}
        self._window_end = -1
        self._blocks = {}
        self._columns = {}
        self._remaining = 0

    # -- internals -------------------------------------------------------------

    def _evaluate_window(self, start: int) -> None:
        # Execution estimates depend on the query instance and the
        # immutable cost model alone — never on settlement state — so one
        # vectorized pass may span as many consecutive epochs as fit in
        # the memory bound. Epochs stay the grouping unit; only the
        # evaluation is amortized across them.
        queries: List[Query] = []
        index = start
        while index < len(self._epochs):
            epoch_queries = self._epochs[index]
            if queries and len(queries) + len(epoch_queries) > self._max_batch:
                break
            queries.extend(epoch_queries)
            self._epochs[index] = []
            self._window_end = index
            index += 1
        groups: Dict[str, List[Query]] = {}
        for query in queries:
            groups.setdefault(query.template_name, []).append(query)
        blocks: Dict[str, _TemplateBlock] = {}
        columns: Dict[int, Tuple[str, int]] = {}
        for template_name, group in groups.items():
            representative = group[0]
            table = self._tables.table_for(
                representative, self._enumerator, self._execution
            )
            # A template name reused with a different shape cannot be
            # batched against this table; those queries fall back to the
            # scalar path (see view_for).
            usable = [
                query for query in group
                if len(query.predicates) == table.predicate_count
                and query.table_name == representative.table_name
            ]
            if not usable:
                continue
            estimates = evaluate_plan_table(table, usable, self._execution)
            blocks[template_name] = _TemplateBlock(table, estimates)
            for column, query in enumerate(usable):
                columns[query.query_id] = (template_name, column)
        self._blocks = blocks
        self._columns = columns
        self._remaining = len(columns)
        if self._trace is not None and queries:
            self._trace.event(
                "batch_window",
                time_s=queries[0].arrival_time,
                size=len(queries),
                templates=len(blocks),
                epochs=self._window_end - start + 1,
            )
