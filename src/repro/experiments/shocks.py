"""Scheme resilience under market shocks: paired baseline/shocked cells.

For every scheme the runner replays the identical populated workload
twice — once clean, once with the configured shock sequence injected —
and reports how much each headline metric degraded. The shocked run is
additionally audited for **bitwise** conservation, reusing the fold
identities the distributed layers pin:

* provider side — the provider account's ``query_payment`` deposits fold
  to exactly the total the query outcomes charged (the engine deposits
  ``outcome.charge`` per query, in processing order, so the two folds
  add the same floats in the same order);
* wallet side — every tenant wallet's balance folds bitwise from its own
  ledger (no money appears or vanishes outside the recorded
  transactions).

Shocks move *state* (structures destroyed, prices scaled, budgets
squeezed), never money: a run whose audit is not exact is a bug, not a
tolerance problem.

``run_shock_resilience`` fans cells over worker processes exactly like
:func:`repro.experiments.tenants.run_tenant_experiment` — each cell is
deterministic, so the parallel tables are byte-identical.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

from repro.distcache.merge import ledger_fold
from repro.economy.account import CloudAccount
from repro.economy.engine import EconomyConfig
from repro.economy.tenancy import TenantRegistry
from repro.errors import ExperimentError
from repro.experiments.reporting import format_table
from repro.experiments.tenants import (
    TenantCellResult,
    TenantExperimentConfig,
    build_population,
    run_tenant_cell,
    sorted_breakdowns,
)
from repro.policies.economic import EconomicSchemeConfig
from repro.simulator.simulation import CloudSimulation, SimulationConfig
from repro.system import CloudSystem
from repro.workload.grammar import compile_shock_events


@dataclass(frozen=True)
class ConservationAudit:
    """Bitwise conservation evidence from one shocked cell.

    ``query_payments`` and ``outcome_charges`` are the provider-side and
    tenant-side folds of the same money stream, computed independently;
    ``wallet_ledger_mismatches`` counts wallets whose balance did not
    fold bitwise from their own ledger (always 0 on a passing run).
    """

    query_payments: float
    outcome_charges: float
    wallets_audited: int
    wallet_ledger_mismatches: int

    @property
    def exact(self) -> bool:
        """Whether every conservation identity held bitwise."""
        return (self.query_payments == self.outcome_charges
                and self.wallet_ledger_mismatches == 0)


@dataclass(frozen=True)
class SchemeResilience:
    """One scheme's paired clean/shocked cells plus the shocked audit."""

    baseline: TenantCellResult
    shocked: TenantCellResult
    audit: Optional[ConservationAudit]

    @property
    def scheme(self) -> str:
        """The scheme both cells ran."""
        return self.shocked.config.scheme

    @property
    def cost_ratio(self) -> float:
        """Shocked operating cost over baseline (1.0 = unaffected)."""
        base = self.baseline.summary.operating_cost
        if base == 0.0:
            return float("inf") if self.shocked.summary.operating_cost else 1.0
        return self.shocked.summary.operating_cost / base


def baseline_config(config: TenantExperimentConfig) -> TenantExperimentConfig:
    """The clean twin of a shocked cell: same population, chaos stripped.

    Shocks and the strict-maintenance shutdown policy are the fault
    knobs; everything else — tiers included, they shape the population
    itself — stays, so the pair differs only by the injected faults.
    """
    return replace(config, shocks=(), strict_maintenance=False)


def audited_shock_cell(
        config: TenantExperimentConfig,
        trace=None, metrics=None,
) -> Tuple[TenantCellResult, Optional[ConservationAudit]]:
    """Run one shocked cell and audit conservation on the live engine.

    Mirrors :func:`repro.experiments.tenants.run_tenant_cell` step for
    step (the cell result is bitwise identical to it) but keeps the
    scheme in hand so the provider account, outcomes, and wallet ledgers
    can be folded before they are thrown away. The bypass baseline has
    no economy, so its audit is ``None``. ``trace``/``metrics`` attach
    under the zero-perturbation contract, exactly as in
    :func:`~repro.experiments.tenants.run_tenant_cell`.
    """
    populated = build_population(config)
    system = CloudSystem()
    registry: Optional[TenantRegistry] = None
    if config.scheme == "bypass":
        scheme = system.scheme(config.scheme)
    else:
        registry = TenantRegistry()
        registry.register_all(populated.profiles)
        scheme = system.scheme(
            config.scheme, economic_config=EconomicSchemeConfig(
                economy=EconomyConfig(
                    planning=config.planning,
                    strict_maintenance=config.strict_maintenance,
                ),
                tenants=registry,
            )
        )
    observers = []
    if trace is not None or metrics is not None:
        from repro.obs.metrics import attach_observability

        observers = attach_observability(scheme, trace=trace,
                                         metrics=metrics)
    simulation = CloudSimulation(
        scheme, SimulationConfig(
            warmup_queries=config.warmup_queries,
            settlement_period_s=config.settlement_period_s,
        )
    )
    result = simulation.run(
        populated.queries,
        tenant_lifecycle=populated.lifecycle,
        observers=observers,
        shock_events=compile_shock_events(config.shocks, populated.queries),
    )

    audit: Optional[ConservationAudit] = None
    if registry is not None:
        engine = scheme.engine
        banked = engine.account.totals_by_category().get(
            CloudAccount.CATEGORY_QUERY_PAYMENT, 0.0)
        charged = 0.0
        for outcome in engine.outcomes:
            charged += outcome.charge
        mismatches = sum(
            1 for state in registry.states()
            if ledger_fold(state.account) != state.account.credit
        )
        audit = ConservationAudit(
            query_payments=banked,
            outcome_charges=charged,
            wallets_audited=len(registry),
            wallet_ledger_mismatches=mismatches,
        )

    wallets: Tuple[Tuple[str, float], ...] = ()
    if registry is not None:
        wallets = tuple(registry.credit_by_tenant().items())
    cell = TenantCellResult(
        config=config,
        summary=result.summary,
        tenants=sorted_breakdowns(result.steps),
        wallet_credit=wallets,
        population_size=populated.tenant_count,
        churn_waves=populated.churn_waves,
    )
    return cell, audit


def _resilience_pair(config: TenantExperimentConfig,
                     trace=None, metrics=None) -> SchemeResilience:
    """Worker entry point: one scheme's clean + shocked + audit.

    The clean twin runs unobserved — the recorders describe the *faulted*
    replay, which is the one the resilience table and the conservation
    audit interrogate.
    """
    clean = run_tenant_cell(baseline_config(config))
    shocked, audit = audited_shock_cell(config, trace=trace,
                                        metrics=metrics)
    return SchemeResilience(baseline=clean, shocked=shocked, audit=audit)


def run_shock_resilience(configs: Sequence[TenantExperimentConfig],
                         jobs: Optional[int] = None,
                         trace=None,
                         metrics=None) -> List[SchemeResilience]:
    """Run paired clean/shocked cells for every config (typically one per
    scheme), optionally fanned over worker processes.

    Args:
        configs: the *shocked* cells (their ``shocks`` field is the fault
            sequence; the clean twin is derived with
            :func:`baseline_config`).
        jobs: worker processes; ``None`` or 1 runs sequentially. Each
            pair is deterministic, so the parallel results are
            byte-identical and come back in ``configs`` order.
        trace: optional :class:`~repro.obs.trace.TraceRecorder` recording
            the shocked cells (the clean twins stay unobserved); observed
            runs execute sequentially so records land in one recorder —
            the results are byte-identical either way.
        metrics: optional :class:`~repro.obs.metrics.MetricsTimeseries`
            sampled at the shocked cells' settlement barriers, same
            contract.
    """
    cells = list(configs)
    if not cells:
        raise ExperimentError("at least one shocked cell is required")
    for config in cells:
        if not config.shocks and not config.strict_maintenance:
            raise ExperimentError(
                f"cell for scheme {config.scheme!r} injects no faults "
                f"(no shocks, strict_maintenance off); a resilience pair "
                f"needs at least one"
            )
    worker_count = 1 if jobs is None else int(jobs)
    if worker_count < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    if trace is not None or metrics is not None:
        return [_resilience_pair(config, trace=trace, metrics=metrics)
                for config in cells]
    if worker_count == 1 or len(cells) == 1:
        return [_resilience_pair(config) for config in cells]
    with ProcessPoolExecutor(
            max_workers=min(worker_count, len(cells))) as executor:
        return list(executor.map(_resilience_pair, cells))


# -- tables --------------------------------------------------------------------


def _conservation_cell(audit: Optional[ConservationAudit]) -> str:
    if audit is None:
        return "n/a"
    if audit.exact:
        return "exact"
    return f"VIOLATED ({audit.query_payments!r} != {audit.outcome_charges!r})"


def shock_resilience_table(results: Sequence[SchemeResilience]) -> str:
    """The scheme-resilience table: clean versus shocked, one row per scheme.

    The conservation column is the shocked run's bitwise audit — any
    value other than ``exact`` (or ``n/a`` for the economy-less bypass
    baseline) is a correctness failure, not noise.
    """
    headers = ["scheme", "cost", "cost+shocks", "cost x", "hit", "hit+shocks",
               "p95_s+shocks", "evictions+shocks", "conservation"]
    rows: List[List[object]] = []
    for item in results:
        base, shocked = item.baseline.summary, item.shocked.summary
        rows.append([
            item.scheme,
            base.operating_cost,
            shocked.operating_cost,
            item.cost_ratio,
            base.cache_hit_rate,
            shocked.cache_hit_rate,
            shocked.p95_response_time_s,
            shocked.evictions,
            _conservation_cell(item.audit),
        ])
    return format_table(headers, rows,
                        title="Scheme resilience under market shocks")
