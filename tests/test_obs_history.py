"""Bench-history tests: records, comparability, deltas, gates, fallbacks."""

import json
import os

import pytest

from repro.obs.history import (
    HISTORY_SCHEMA_VERSION,
    METRIC_DIRECTIONS,
    RegressionGates,
    append_bench_history,
    bench_config_hash,
    compute_deltas,
    history_metrics,
    latest_comparable,
    load_history,
    record_from_bench,
)
from repro.obs.schema import validate_history_record

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _planner_doc(qps=1000.0, seed=0):
    return {
        "benchmark": "planner", "scheme": "econ-cheap", "seed": seed,
        "python": "3.11.0", "query_count": 100, "repetitions": 1,
        "outcomes_identical": True,
        "speedup": {"batched_cold_vs_scalar": 6.0,
                    "batched_warm_vs_scalar": 5.0},
        "runs": [
            {"benchmark_mode": "scalar", "queries_per_s": qps},
            {"benchmark_mode": "batched-cold", "queries_per_s": qps * 6},
            {"benchmark_mode": "batched-warm", "queries_per_s": qps * 5},
        ],
    }


class TestConfigHash:
    def test_result_fields_do_not_affect_comparability(self):
        fast, slow = _planner_doc(qps=2000.0), _planner_doc(qps=500.0)
        assert bench_config_hash(fast) == bench_config_hash(slow)

    def test_config_fields_do_affect_comparability(self):
        assert bench_config_hash(_planner_doc(seed=0)) \
            != bench_config_hash(_planner_doc(seed=1))


class TestHistoryMetrics:
    def test_planner_metrics_cover_every_mode(self):
        metrics = history_metrics(_planner_doc(qps=1000.0))
        assert metrics["scalar_queries_per_s"] == 1000.0
        assert metrics["batched_cold_queries_per_s"] == 6000.0
        assert metrics["batched_warm_queries_per_s"] == 5000.0
        assert metrics["batched_cold_speedup"] == 6.0

    def test_every_extracted_metric_has_a_declared_direction(self):
        """The failure mode METRIC_DIRECTIONS exists to prevent: a metric
        extracted for gating with no declared better-direction."""
        paths = [os.path.join(REPO_ROOT, f"BENCH_{kind}.json")
                 for kind in ("sharding", "distcache", "placement",
                              "planner", "shocks")]
        if not all(os.path.exists(path) for path in paths):
            pytest.skip("checked-in bench files not present")
        for path in paths:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
            for name in history_metrics(document):
                assert name in METRIC_DIRECTIONS, name


class TestRecordAndStore:
    def test_record_is_schema_valid(self):
        record = record_from_bench(_planner_doc(), git_sha="abc",
                                   recorded_at="2026-01-01T00:00:00Z")
        assert validate_history_record(record.to_dict()) == []
        assert record.schema_version == HISTORY_SCHEMA_VERSION

    def test_append_load_roundtrip(self, tmp_path):
        path = append_bench_history(_planner_doc(), str(tmp_path),
                                    git_sha="abc")
        assert path.endswith("planner.jsonl")
        append_bench_history(_planner_doc(qps=2000.0), str(tmp_path),
                             git_sha="def")
        records, problems = load_history(str(tmp_path))
        assert problems == []
        assert [r.git_sha for r in records["planner"]] == ["abc", "def"]

    def test_git_sha_fallback_outside_a_git_repo(self, tmp_path,
                                                 monkeypatch):
        """Records written outside a repository are valid, just
        unattributable — the RunManifest satellite contract."""
        monkeypatch.chdir(tmp_path)
        record = record_from_bench(_planner_doc())
        assert record.git_sha is None
        assert validate_history_record(record.to_dict()) == []

    def test_manifest_git_sha_fallback_outside_a_git_repo(self, tmp_path,
                                                          monkeypatch):
        from repro.obs.manifest import build_manifest

        monkeypatch.chdir(tmp_path)
        manifest = build_manifest("tenants")
        assert manifest.git_sha is None
        # The manifest still serializes the key (fail-soft, not absent).
        assert "git_sha" in manifest.to_dict()

    def test_load_history_is_fail_soft_over_corrupt_lines(self, tmp_path):
        good = record_from_bench(_planner_doc(), git_sha="abc").to_json()
        (tmp_path / "planner.jsonl").write_text(
            good + "\n"
            + "{not json\n"                       # corrupt line
            + json.dumps({"benchmark": "planner"}) + "\n"  # schema-invalid
            + good + "\n")
        records, problems = load_history(str(tmp_path))
        assert len(records["planner"]) == 2
        assert any("not valid JSON" in problem for problem in problems)
        assert any("missing required field" in problem
                   for problem in problems)

    def test_load_history_missing_dir_degrades_to_problem(self, tmp_path):
        records, problems = load_history(str(tmp_path / "nope"))
        assert records == {}
        assert problems and "does not exist" in problems[0]


class TestLatestComparable:
    def test_last_matching_record_wins(self, tmp_path):
        for sha in ("a", "b", "c"):
            append_bench_history(_planner_doc(), str(tmp_path), git_sha=sha)
        append_bench_history(_planner_doc(seed=9), str(tmp_path),
                             git_sha="other-config")
        records, _ = load_history(str(tmp_path))
        baseline = latest_comparable(records["planner"],
                                     bench_config_hash(_planner_doc()))
        assert baseline.git_sha == "c"

    def test_no_comparable_record_returns_none(self):
        assert latest_comparable([], "deadbeef") is None


class TestGates:
    def test_thresholds_classify_regressions(self):
        gates = RegressionGates(warn_slowdown=0.10, fail_slowdown=0.25)
        assert gates.status_of(None) == "info"
        assert gates.status_of(-0.5) == "ok"       # improvement
        assert gates.status_of(0.05) == "ok"       # sub-threshold noise
        assert gates.status_of(0.10) == "warn"
        assert gates.status_of(0.25) == "fail"

    def test_invalid_gates_raise(self):
        with pytest.raises(ValueError):
            RegressionGates(warn_slowdown=0.0)
        with pytest.raises(ValueError):
            RegressionGates(warn_slowdown=0.5, fail_slowdown=0.1)


class TestComputeDeltas:
    def test_higher_is_better_flags_drops(self):
        baseline = record_from_bench(_planner_doc(qps=1000.0),
                                     git_sha="abc")
        current = history_metrics(_planner_doc(qps=800.0))
        deltas = {d.name: d for d in compute_deltas(current, baseline)}
        scalar = deltas["scalar_queries_per_s"]
        assert scalar.change == pytest.approx(-0.2)
        assert scalar.regression == pytest.approx(0.2)
        assert scalar.status == "warn"

    def test_lower_is_better_flags_rises(self):
        baseline = record_from_bench(
            {"benchmark": "shocks", "python": "x", "seed": 0,
             "tenants": 5, "query_count": 10, "grammar": "g",
             "conservation_exact": True,
             "runs": [{"cost_ratio": 1.0, "clean_queries_per_s": 100.0}]},
            git_sha="abc")
        deltas = compute_deltas({"max_cost_ratio": 1.5}, baseline)
        (delta,) = deltas
        assert delta.regression == pytest.approx(0.5)
        assert delta.status == "fail"

    def test_info_metrics_never_gate(self):
        baseline = record_from_bench(
            {"benchmark": "placement", "python": "x", "seed": 0,
             "scheme": "s", "tenant_count": 5, "query_count": 10,
             "partitions": 2, "handoff_threshold": 0.0,
             "runs": [{"placement": "adaptive", "handoffs": 10,
                       "remote_hit_rate": 0.1,
                       "remote_surcharge_dollars": 1.0}]},
            git_sha="abc")
        deltas = {d.name: d
                  for d in compute_deltas({"handoffs": 100.0}, baseline)}
        assert deltas["handoffs"].regression is None
        assert deltas["handoffs"].status == "info"

    def test_metrics_missing_on_either_side_are_skipped(self):
        baseline = record_from_bench(_planner_doc(), git_sha="abc")
        deltas = compute_deltas({"scalar_queries_per_s": 1000.0,
                                 "clean_queries_per_s": 5.0}, baseline)
        assert [d.name for d in deltas] == ["scalar_queries_per_s"]

    def test_undeclared_direction_fails_loudly(self):
        baseline = record_from_bench(_planner_doc(), git_sha="abc")
        object.__setattr__(baseline, "metrics",
                           dict(baseline.metrics, mystery_metric=1.0))
        with pytest.raises(KeyError):
            compute_deltas({"mystery_metric": 2.0}, baseline)

    def test_zero_baseline_is_inf_change_not_a_crash(self):
        baseline = record_from_bench(_planner_doc(qps=0.0), git_sha="abc")
        # qps=0 zeroes scalar; batched modes scale from it so also 0.
        deltas = {d.name: d for d in compute_deltas(
            {"scalar_queries_per_s": 10.0}, baseline)}
        assert deltas["scalar_queries_per_s"].change == float("inf")
