"""Tests for the cross-shard directory and its consistency invariants."""

import pickle

import pytest

from repro.distcache import (
    CrossShardDirectory,
    DirectoryDelta,
    DirectoryEntry,
    StructurePartitioner,
    verify_delta_fold,
)
from repro.errors import DistCacheError


def _owned_key(partitioner, partition, base="column:t.c"):
    """A key whose hash-owner is ``partition`` (search by suffix)."""
    for i in range(10_000):
        key = f"{base}{i}"
        if partitioner.partition_of(key) == partition:
            return key
    raise AssertionError("no key found for partition")


@pytest.fixture
def partitioner():
    return StructurePartitioner(partition_count=3)


class TestPublication:
    def test_empty_directory(self):
        directory = CrossShardDirectory.empty()
        assert len(directory) == 0
        assert directory.version == 0
        assert not directory.contains("anything")

    def test_publish_and_lookup(self, partitioner):
        key = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {1: [(key, 2048)]}, partitioner, version=3)
        assert directory.contains(key)
        assert directory.owner_of(key) == 1
        assert directory.entry(key).size_bytes == 2048
        assert directory.version == 3

    def test_unknown_key_raises(self, partitioner):
        directory = CrossShardDirectory.publish({}, partitioner)
        with pytest.raises(DistCacheError):
            directory.entry("column:t.missing")

    def test_wrong_owner_rejected(self, partitioner):
        key = _owned_key(partitioner, 1)
        holder = 2 if partitioner.partition_of(key) != 2 else 0
        with pytest.raises(DistCacheError, match="owned by"):
            CrossShardDirectory.publish({holder: [(key, 10)]}, partitioner)

    def test_dual_ownership_rejected(self):
        partitioner = StructurePartitioner(partition_count=1)
        key = "column:t.c0"
        with pytest.raises(DistCacheError):
            CrossShardDirectory.publish(
                {0: [(key, 10), (key, 10)]}, partitioner)


class TestRemoteView:
    def test_owner_sees_nothing_remote(self, partitioner):
        key = _owned_key(partitioner, 0)
        directory = CrossShardDirectory.publish({0: [(key, 10)]}, partitioner)
        assert directory.remote_entry(key, viewer=0) is None

    def test_other_partitions_see_remote_entry(self, partitioner):
        key = _owned_key(partitioner, 0)
        directory = CrossShardDirectory.publish({0: [(key, 10)]}, partitioner)
        assert directory.remote_entry(key, viewer=1).partition == 0
        assert directory.remote_entry(key, viewer=2).partition == 0

    def test_entries_of_partition(self, partitioner):
        key0 = _owned_key(partitioner, 0)
        key1 = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {0: [(key0, 10)], 1: [(key1, 20)]}, partitioner)
        assert [entry.key for entry in directory.entries_of(0)] == [key0]
        assert [entry.key for entry in directory.entries_of(1)] == [key1]


class TestBackedByAudit:
    def test_live_owner_passes(self, partitioner):
        key = _owned_key(partitioner, 2)
        directory = CrossShardDirectory.publish({2: [(key, 10)]}, partitioner)
        directory.verify_backed_by({2: [key]})

    def test_stale_entry_detected(self, partitioner):
        key = _owned_key(partitioner, 2)
        directory = CrossShardDirectory.publish({2: [(key, 10)]}, partitioner)
        with pytest.raises(DistCacheError, match="not backed"):
            directory.verify_backed_by({2: []})


class TestTransport:
    def test_picklable(self, partitioner):
        key = _owned_key(partitioner, 1)
        directory = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=7)
        clone = pickle.loads(pickle.dumps(directory))
        assert clone.version == 7
        assert clone.entry(key).size_bytes == 42


class TestDirectoryDelta:
    """Delta publication: ``prev + delta == full`` at every barrier."""

    def test_delta_from_empty_is_all_adds(self, partitioner):
        key = _owned_key(partitioner, 1)
        full = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=1)
        delta = DirectoryDelta.between(CrossShardDirectory.empty(), full)
        assert [entry.key for entry in delta.adds] == [key]
        assert delta.removes == () and delta.moves == ()
        verify_delta_fold(CrossShardDirectory.empty(), delta, full)

    def test_adds_removes_and_moves_are_classified(self, partitioner):
        kept = _owned_key(partitioner, 0)
        dropped = _owned_key(partitioner, 1)
        grown = _owned_key(partitioner, 2)
        added = _owned_key(partitioner, 0, base="index:t.i")
        prev = CrossShardDirectory.publish(
            {0: [(kept, 10)], 1: [(dropped, 20)], 2: [(grown, 30)]},
            partitioner, version=1)
        cur = CrossShardDirectory.publish(
            {0: [(kept, 10), (added, 5)], 2: [(grown, 31)]},
            partitioner, version=2)
        delta = DirectoryDelta.between(prev, cur)
        assert [entry.key for entry in delta.adds] == [added]
        assert delta.removes == (dropped,)
        assert [entry.key for entry in delta.moves] == [grown]
        assert delta.change_count == 3 and not delta.is_empty
        verify_delta_fold(prev, delta, cur)

    def test_ownership_handoff_surfaces_as_a_move(self):
        partitioner = StructurePartitioner(2)
        key = _owned_key(partitioner, 0)
        prev = CrossShardDirectory.publish(
            {0: [(key, 10)]}, partitioner, version=1)
        moved = partitioner.with_overrides({key: 1})
        cur = CrossShardDirectory.publish(
            {1: [(key, 10)]}, moved, version=2)
        delta = DirectoryDelta.between(prev, cur)
        assert [entry.key for entry in delta.moves] == [key]
        assert delta.moves[0].partition == 1
        verify_delta_fold(prev, delta, cur)

    def test_fold_divergence_detected(self, partitioner):
        key = _owned_key(partitioner, 1)
        full = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=1)
        lossy = DirectoryDelta(base_version=0, version=1,
                               adds=(), removes=(), moves=())
        with pytest.raises(DistCacheError, match="fold diverged"):
            verify_delta_fold(CrossShardDirectory.empty(), lossy, full)

    def test_apply_delta_version_and_key_guards(self, partitioner):
        key = _owned_key(partitioner, 1)
        prev = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=1)
        entry = DirectoryEntry(key=key, partition=1, size_bytes=42)
        with pytest.raises(DistCacheError, match="version"):
            prev.apply_delta(DirectoryDelta(
                base_version=5, version=6, adds=(), removes=(), moves=()))
        with pytest.raises(DistCacheError, match="already advertised"):
            prev.apply_delta(DirectoryDelta(
                base_version=1, version=2, adds=(entry,), removes=(),
                moves=()))
        with pytest.raises(DistCacheError, match="not advertised"):
            prev.apply_delta(DirectoryDelta(
                base_version=1, version=2, adds=(),
                removes=("column:t.ghost",), moves=()))

    def test_delta_must_advance_version_by_one(self):
        with pytest.raises(DistCacheError, match="version"):
            DirectoryDelta(base_version=1, version=3,
                           adds=(), removes=(), moves=())

    def test_delta_rejects_double_touched_keys(self, partitioner):
        key = _owned_key(partitioner, 0)
        entry = DirectoryEntry(key=key, partition=0, size_bytes=1)
        with pytest.raises(DistCacheError, match="at most once"):
            DirectoryDelta(base_version=0, version=1, adds=(entry,),
                           removes=(key,), moves=())

    def test_empty_delta_is_cheaper_than_any_snapshot(self, partitioner):
        key = _owned_key(partitioner, 1)
        full = CrossShardDirectory.publish(
            {1: [(key, 42)]}, partitioner, version=1)
        delta = DirectoryDelta.between(
            full, CrossShardDirectory(full.entries_by_key(), version=2))
        assert delta.is_empty
        assert delta.wire_bytes < full.wire_bytes
