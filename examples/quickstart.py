"""Quickstart: simulate the self-tuned cache economy on a small workload.

Run with::

    python examples/quickstart.py

The script assembles the 2.5 TB TPC-H-like cloud, generates a short
SDSS-like workload, runs the econ-cheap scheme (the paper's full economic
model choosing the cheapest affordable plan), and prints what the cloud
built, what it spent, and how fast queries came back.
"""

from __future__ import annotations

import _bootstrap  # noqa: F401  (makes src/ importable as a script)

from repro import CloudSystem, WorkloadGenerator, WorkloadSpec, run_scheme


def main() -> None:
    system = CloudSystem()
    print(system.schema.describe())
    print()

    spec = WorkloadSpec(query_count=800, interarrival_s=10.0, seed=7)
    workload = WorkloadGenerator(spec).generate()
    print(f"Generated {len(workload)} queries from "
          f"{len(set(q.template_name for q in workload))} templates")

    scheme = system.scheme("econ-cheap")
    result = run_scheme(scheme, workload)
    summary = result.summary

    print()
    print(f"Scheme:              {summary.scheme_name}")
    print(f"Operating cost:      ${summary.operating_cost:,.2f}")
    print(f"  execution (CPU):   ${summary.execution_cpu_dollars:,.2f}")
    print(f"  execution (I/O):   ${summary.execution_io_dollars:,.2f}")
    print(f"  execution (net):   ${summary.execution_network_dollars:,.2f}")
    print(f"  structure builds:  ${summary.build_dollars:,.2f}")
    print(f"  storage/uptime:    ${summary.maintenance_dollars:,.2f}")
    print(f"Mean response time:  {summary.mean_response_time_s:.2f} s")
    print(f"95th percentile:     {summary.p95_response_time_s:.2f} s")
    print(f"Cache hit rate:      {summary.cache_hit_rate:.0%}")
    print(f"Structures built:    {summary.builds}")
    print(f"User charges:        ${summary.total_charge:,.2f}")
    print(f"Cloud profit:        ${summary.total_profit:,.2f}")

    print()
    print("Structures in the cache at the end of the run:")
    for entry in scheme.cache.entries:
        print(f"  {entry.key:55s} served {entry.queries_served:4d} queries, "
              f"build ${entry.build_cost:8.2f}")


if __name__ == "__main__":
    main()
