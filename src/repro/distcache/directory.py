"""The cross-shard directory: who holds which structure, published at barriers.

Every partition plans queries against its **local** cache plus this
directory — an immutable snapshot of what the *other* partitions held at
the last settlement barrier. A directory hit is not a local hit: the
structure can be used without building it, but each access pays the
remote surcharge of :class:`~repro.distcache.engine.RemoteAccessModel`.

The directory is the explicitly weaker half of the partitioned-mode
semantics contract (``docs/distcache.md``):

* **Epoch consistency** — a structure built mid-epoch becomes visible to
  other partitions only at the next barrier; one evicted mid-epoch may
  still be advertised until then. Within an epoch every partition prices
  against the same frozen snapshot, which is what keeps the run
  deterministic regardless of worker scheduling.
* **Ownership consistency** — these invariants are *not* relaxed and are
  re-verified at every publication: a key appears in at most one
  partition's snapshot, the holder is the key's owner under the
  :class:`~repro.distcache.partition.StructurePartitioner` (override
  table included — an adaptive handoff changes who the *rightful* holder
  is, never how many there may be), and every entry is backed by a
  structure that was live at the snapshot instant.

Barriers do not have to republish the whole snapshot: a
:class:`DirectoryDelta` carries only the adds/removes/moves against the
previous epoch, and :meth:`CrossShardDirectory.apply_delta` folds it
forward with the invariant ``prev + delta == full snapshot`` verified by
the runner at every barrier (plus a periodic full-snapshot anchor for
audit). The wire cost of both forms is modeled deterministically so
reports and benchmarks can compare bytes published per barrier.

Example:
    >>> from repro.distcache.partition import StructurePartitioner
    >>> partitioner = StructurePartitioner(partition_count=2)
    >>> key = "column:lineitem.l_quantity"
    >>> owner = partitioner.partition_of(key)
    >>> directory = CrossShardDirectory.publish(
    ...     {owner: [(key, 1024)]}, partitioner)
    >>> directory.contains(key), directory.owner_of(key) == owner
    (True, True)
    >>> directory.remote_entry(key, viewer=owner) is None
    True
    >>> other = 1 - owner
    >>> directory.remote_entry(key, viewer=other).size_bytes
    1024
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.distcache.partition import StructurePartitioner
from repro.errors import DistCacheError


#: Modeled wire cost of one advertised entry beyond its key: the owning
#: partition (4 bytes) plus the structure's size (8 bytes).
_ENTRY_OVERHEAD_BYTES = 12
#: Modeled wire cost of one tombstone beyond its key: a record tag.
_REMOVE_OVERHEAD_BYTES = 4
#: Modeled fixed cost of any publication: versions plus record counts.
_HEADER_BYTES = 16


@dataclass(frozen=True)
class DirectoryEntry:
    """One advertised structure: its key, its owner, and its footprint."""

    key: str
    partition: int
    size_bytes: int

    def __post_init__(self) -> None:
        if not self.key:
            raise DistCacheError("directory entry key must not be empty")
        if self.size_bytes < 0:
            raise DistCacheError("directory entry size_bytes must be >= 0")

    @property
    def wire_bytes(self) -> int:
        """Modeled bytes this entry costs to publish."""
        return len(self.key.encode("utf-8")) + _ENTRY_OVERHEAD_BYTES


@dataclass(frozen=True)
class DirectoryDelta:
    """One barrier's directory changes against the previous epoch.

    The delta is what a barrier actually publishes when a full snapshot
    is not due: entries newly advertised (``adds``), keys no longer
    advertised (``removes``), and entries whose owner or size changed
    (``moves`` — an adaptive ownership handoff shows up here). Folding it
    onto the previous snapshot with
    :meth:`CrossShardDirectory.apply_delta` must reproduce the full
    snapshot exactly; the runner verifies that at every barrier.

    Attributes:
        base_version: the epoch this delta applies on top of.
        version: the epoch the fold produces.
        adds: entries absent at ``base_version`` (key-sorted).
        removes: keys advertised at ``base_version`` but no longer
            (sorted).
        moves: entries present at both epochs whose partition or size
            changed (key-sorted).

    Example:
        >>> delta = DirectoryDelta(base_version=1, version=2,
        ...     adds=(DirectoryEntry("column:a", 0, 64),), removes=(),
        ...     moves=())
        >>> delta.change_count, delta.is_empty
        (1, False)
    """

    base_version: int
    version: int
    adds: Tuple[DirectoryEntry, ...]
    removes: Tuple[str, ...]
    moves: Tuple[DirectoryEntry, ...]

    def __post_init__(self) -> None:
        if self.version != self.base_version + 1:
            raise DistCacheError(
                f"delta must advance the version by exactly 1, got "
                f"{self.base_version} -> {self.version}")
        touched = ([entry.key for entry in self.adds] + list(self.removes)
                   + [entry.key for entry in self.moves])
        if len(set(touched)) != len(touched):
            raise DistCacheError(
                "delta records must touch each key at most once")

    @property
    def change_count(self) -> int:
        """Total records carried (adds + removes + moves)."""
        return len(self.adds) + len(self.removes) + len(self.moves)

    @property
    def is_empty(self) -> bool:
        """Whether the directory did not change this epoch."""
        return self.change_count == 0

    @property
    def wire_bytes(self) -> int:
        """Modeled bytes publishing this delta costs."""
        total = _HEADER_BYTES
        for entry in self.adds:
            total += entry.wire_bytes
        for key in self.removes:
            total += len(key.encode("utf-8")) + _REMOVE_OVERHEAD_BYTES
        for entry in self.moves:
            total += entry.wire_bytes
        return total

    @classmethod
    def between(cls, previous: "CrossShardDirectory",
                current: "CrossShardDirectory") -> "DirectoryDelta":
        """The delta that folds ``previous`` forward onto ``current``.

        Deterministic: adds/removes/moves come out key-sorted, so two
        processes diffing the same snapshots publish identical deltas.
        """
        prev_entries = previous.entries_by_key()
        adds: List[DirectoryEntry] = []
        moves: List[DirectoryEntry] = []
        for key in sorted(current.entries_by_key()):
            entry = current.entry(key)
            before = prev_entries.get(key)
            if before is None:
                adds.append(entry)
            elif before != entry:
                moves.append(entry)
        removes = tuple(sorted(
            key for key in prev_entries if not current.contains(key)))
        return cls(
            base_version=previous.version,
            version=current.version,
            adds=tuple(adds),
            removes=removes,
            moves=tuple(moves),
        )


class CrossShardDirectory:
    """An immutable snapshot of every partition's live structures.

    Build one with :meth:`publish` (which verifies the ownership
    invariants) or start from :meth:`empty`; instances are picklable and
    safe to share read-only across partition workers.
    """

    def __init__(self, entries: Mapping[str, DirectoryEntry],
                 version: int = 0) -> None:
        self._entries: Dict[str, DirectoryEntry] = dict(entries)
        self._version = version

    # -- construction ----------------------------------------------------------

    @classmethod
    def empty(cls) -> "CrossShardDirectory":
        """The pre-first-barrier directory: nothing is advertised yet."""
        return cls({}, version=0)

    @classmethod
    def publish(cls, snapshots: Mapping[int, Sequence[Tuple[str, int]]],
                partitioner: StructurePartitioner,
                version: int = 1) -> "CrossShardDirectory":
        """Build a directory from per-partition ``(key, size_bytes)`` snapshots.

        Args:
            snapshots: for each partition index, the structures it holds
                *right now* — i.e. taken at the barrier, so every entry is
                backed by a live owner by construction, and re-verified here.
            partitioner: the structure → partition mapping of the run.
            version: monotonically increasing epoch number (for audits).

        Raises:
            DistCacheError: if a key is reported by two partitions, or by
                a partition that is not its hash-owner.
        """
        entries: Dict[str, DirectoryEntry] = {}
        for partition, keys in sorted(snapshots.items()):
            partitioner.validate_index(partition)
            for key, size_bytes in keys:
                if key in entries:
                    raise DistCacheError(
                        f"directory consistency violated: {key!r} reported "
                        f"by partitions {entries[key].partition} and "
                        f"{partition}"
                    )
                if not partitioner.owns(partition, key):
                    raise DistCacheError(
                        f"directory consistency violated: {key!r} held by "
                        f"partition {partition} but owned by "
                        f"{partitioner.partition_of(key)}"
                    )
                entries[key] = DirectoryEntry(
                    key=key, partition=partition, size_bytes=size_bytes,
                )
        return cls(entries, version=version)

    # -- lookups ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def version(self) -> int:
        """The barrier epoch this snapshot was published at (0 = empty)."""
        return self._version

    @property
    def entries(self) -> Tuple[DirectoryEntry, ...]:
        """Every advertised entry (stable order: publication order)."""
        return tuple(self._entries.values())

    def contains(self, key: str) -> bool:
        """Whether any partition advertised ``key`` at the last barrier."""
        return key in self._entries

    def entry(self, key: str) -> DirectoryEntry:
        """The entry for ``key`` or raise :class:`DistCacheError`."""
        try:
            return self._entries[key]
        except KeyError:
            raise DistCacheError(f"structure not in directory: {key!r}") from None

    def owner_of(self, key: str) -> int:
        """The partition advertising ``key`` (raises when not advertised)."""
        return self.entry(key).partition

    def remote_entry(self, key: str, viewer: int) -> Optional[DirectoryEntry]:
        """The entry for ``key`` if it lives on a partition other than
        ``viewer``; ``None`` when unadvertised or held by the viewer itself."""
        entry = self._entries.get(key)
        if entry is None or entry.partition == viewer:
            return None
        return entry

    def entries_of(self, partition: int) -> Tuple[DirectoryEntry, ...]:
        """Every entry advertised by one partition (insertion order)."""
        return tuple(entry for entry in self._entries.values()
                     if entry.partition == partition)

    def entries_by_key(self) -> Dict[str, DirectoryEntry]:
        """The advertised entries as a fresh ``key -> entry`` mapping."""
        return dict(self._entries)

    @property
    def wire_bytes(self) -> int:
        """Modeled bytes publishing this snapshot in full costs."""
        return _HEADER_BYTES + sum(entry.wire_bytes
                                   for entry in self._entries.values())

    # -- delta folding ---------------------------------------------------------

    def apply_delta(self, delta: DirectoryDelta) -> "CrossShardDirectory":
        """Fold a barrier's delta onto this snapshot.

        The result advertises exactly what the delta's publisher held:
        ``prev + delta == full snapshot`` is the invariant the runner
        re-verifies at every barrier (:func:`verify_delta_fold`).

        Raises:
            DistCacheError: if the delta was cut against a different
                version, adds a key already advertised, or removes/moves
                a key that is not.
        """
        if delta.base_version != self._version:
            raise DistCacheError(
                f"delta applies to version {delta.base_version}, but this "
                f"snapshot is version {self._version}")
        entries = dict(self._entries)
        for key in delta.removes:
            if entries.pop(key, None) is None:
                raise DistCacheError(
                    f"delta removes {key!r}, which is not advertised")
        for entry in delta.moves:
            if entry.key not in entries:
                raise DistCacheError(
                    f"delta moves {entry.key!r}, which is not advertised")
            entries[entry.key] = entry
        for entry in delta.adds:
            if entry.key in entries:
                raise DistCacheError(
                    f"delta adds {entry.key!r}, which is already advertised")
            entries[entry.key] = entry
        return CrossShardDirectory(entries, version=delta.version)

    def same_entries(self, other: "CrossShardDirectory") -> bool:
        """Whether two snapshots advertise identical entries (any order)."""
        return self.entries_by_key() == other.entries_by_key()

    def verify_backed_by(self, live_keys_by_partition:
                         Mapping[int, Sequence[str]]) -> None:
        """Audit that every entry's owner still holds the structure.

        Called with live snapshots at the barrier the directory was
        published from; a stale entry means the publication protocol was
        violated (entries are rebuilt from live state each barrier, so
        this should be impossible — the audit keeps it that way).

        Raises:
            DistCacheError: on the first entry without a live owner.
        """
        live = {partition: frozenset(keys)
                for partition, keys in live_keys_by_partition.items()}
        for key, entry in self._entries.items():
            if key not in live.get(entry.partition, frozenset()):
                raise DistCacheError(
                    f"directory entry {key!r} is not backed by a live "
                    f"structure on its owner partition {entry.partition}"
                )


def verify_delta_fold(previous: CrossShardDirectory, delta: DirectoryDelta,
                      full: CrossShardDirectory) -> None:
    """Audit one barrier's delta publication: ``prev + delta == full``.

    Folds the delta onto the previous snapshot and demands the result
    advertise exactly the full snapshot's entries at its version. Run by
    the runner at **every** barrier (not only anchors), so a divergent
    delta can never propagate silently.

    Raises:
        DistCacheError: when the fold and the full snapshot disagree.

    Example:
        >>> prev = CrossShardDirectory.empty()
        >>> from repro.distcache.partition import StructurePartitioner
        >>> partitioner = StructurePartitioner(partition_count=1)
        >>> full = CrossShardDirectory.publish({0: [("column:a", 64)]},
        ...                                    partitioner, version=1)
        >>> delta = DirectoryDelta.between(prev, full)
        >>> verify_delta_fold(prev, delta, full)  # silently passes
        >>> bad = DirectoryDelta(base_version=0, version=1, adds=(),
        ...                      removes=(), moves=())
        >>> verify_delta_fold(prev, bad, full)
        Traceback (most recent call last):
            ...
        repro.errors.DistCacheError: directory delta fold diverged at version 1: folding the delta onto version 0 does not reproduce the full snapshot
    """
    folded = previous.apply_delta(delta)
    if folded.version != full.version or not folded.same_entries(full):
        raise DistCacheError(
            f"directory delta fold diverged at version {full.version}: "
            f"folding the delta onto version {previous.version} does not "
            f"reproduce the full snapshot"
        )
