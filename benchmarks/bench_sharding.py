"""Shard-scaling benchmark: one tenants cell at increasing shard counts.

Runs the same population cell unsharded and at each requested shard
count, verifies the merged tables stay byte-identical, and records the
timings plus the *state-scaling* numbers that are the point of the
replicated-replay design (per-worker owned tenant states shrink ~1/N
even though each worker replays the full stream — see
``docs/sharding.md``). Results land in ``BENCH_sharding.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_sharding.py --tenants 200 --queries 400

or via the pytest wrapper (``benchmarks/test_bench_sharding.py``), which
uses a smaller population so the suite stays fast.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from typing import Dict, List, Optional, Sequence

_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.experiments.tenants import (  # noqa: E402
    TenantExperimentConfig,
    run_tenant_cell,
    tenant_aggregate_table,
)
from repro.sharding import ShardCoordinator  # noqa: E402

#: Default artifact path: the repository root, as a first-class record.
DEFAULT_OUTPUT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_sharding.json")


def run_benchmark(tenant_count: int = 200, query_count: int = 400,
                  shard_counts: Sequence[int] = (1, 2, 4),
                  scheme: str = "econ-cheap", seed: int = 0,
                  max_workers: Optional[int] = None) -> Dict:
    """Time one cell unsharded and at each shard count; verify identity.

    Args:
        tenant_count: population size of the cell.
        query_count: queries replayed per run.
        shard_counts: shard counts to scale through.
        scheme: the caching scheme under test.
        seed: workload/population seed.
        max_workers: process budget per sharded run; ``None`` uses one
            worker per shard.

    Returns:
        The report dictionary written to ``BENCH_sharding.json``.
    """
    config = TenantExperimentConfig(
        scheme=scheme, tenant_count=tenant_count, query_count=query_count,
        interarrival_s=1.0, seed=seed,
    )
    started = time.perf_counter()
    baseline = run_tenant_cell(config)
    baseline_s = time.perf_counter() - started
    baseline_table = tenant_aggregate_table(baseline)

    runs: List[Dict] = []
    for shards in shard_counts:
        workers = shards if max_workers is None else max_workers
        coordinator = ShardCoordinator(shards, max_workers=workers)
        started = time.perf_counter()
        report = coordinator.run_cell(config)
        elapsed_s = time.perf_counter() - started
        identical = tenant_aggregate_table(report.cell) == baseline_table
        if not identical:  # a broken merge must not look like a fast one
            raise AssertionError(
                f"sharded table diverged from baseline at shards={shards}")
        runs.append({
            "shards": shards,
            "max_workers": workers,
            "elapsed_s": elapsed_s,
            "queries_per_s": query_count / elapsed_s,
            "speedup_vs_unsharded": baseline_s / elapsed_s,
            "owned_tenants_per_shard": list(report.owned_tenants_per_shard),
            "max_owned_tenant_states": max(report.owned_tenants_per_shard),
            "barriers_verified": report.barriers_verified,
            "max_conservation_residual": report.max_conservation_residual,
            "byte_identical": identical,
        })
    return {
        "benchmark": "sharding",
        "scheme": scheme,
        "tenant_count": tenant_count,
        "query_count": query_count,
        "seed": seed,
        "python": platform.python_version(),
        "unsharded": {
            "elapsed_s": baseline_s,
            "queries_per_s": query_count / baseline_s,
            "tenant_states": baseline.population_size,
        },
        "runs": runs,
    }


def write_report(report: Dict, path: str = DEFAULT_OUTPUT) -> str:
    """Write the report as pretty JSON; returns the path."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Record shard-scaling throughput to BENCH_sharding.json")
    parser.add_argument("--tenants", type=int, default=200)
    parser.add_argument("--queries", type=int, default=400)
    parser.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--scheme", default="econ-cheap")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--output", default=DEFAULT_OUTPUT)
    parser.add_argument("--history", default=None, metavar="DIR",
                        help="additionally append a bench-history record "
                             "(git sha + config hash + headline metrics) "
                             "to DIR/<benchmark>.jsonl for "
                             "'repro report --baseline'")
    args = parser.parse_args(argv)
    report = run_benchmark(
        tenant_count=args.tenants, query_count=args.queries,
        shard_counts=tuple(args.shards), scheme=args.scheme, seed=args.seed,
    )
    path = write_report(report, args.output)
    if args.history:
        from repro.obs.history import append_bench_history

        history_path = append_bench_history(report, args.history)
        print(f"history appended to {history_path}")
    for run in report["runs"]:
        print(f"shards={run['shards']}: {run['elapsed_s']:.2f}s "
              f"({run['queries_per_s']:.0f} q/s, max "
              f"{run['max_owned_tenant_states']} tenant states/worker)")
    print(f"report written to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
