"""User budget functions ``B_Q(t)`` (Section IV-C, Figure 1).

The user expresses how much she is willing to pay as a function of the
response time the cloud can guarantee. The function must be non-increasing
on ``(0, tmax]`` and is worth nothing beyond ``tmax``. Figure 1 shows the
three canonical shapes: a step function (a flat price up to a deadline), a
convex decay (price drops quickly, then flattens), and a concave decay
(price stays high, then drops towards the deadline).
"""

from __future__ import annotations

import abc
from typing import Sequence

from repro.errors import BudgetFunctionError


class BudgetFunction(abc.ABC):
    """A non-increasing willingness-to-pay curve over response time.

    Args:
        max_time_s: ``tmax``; the function is worth nothing beyond it.

    Example:
        >>> budget = StepBudget(amount=4.0, max_time_s=10.0)
        >>> budget.value(5.0), budget.value(11.0)
        (4.0, 0.0)
        >>> budget.accepts(response_time_s=5.0, price=3.5)
        True
    """

    def __init__(self, max_time_s: float) -> None:
        if max_time_s <= 0:
            raise BudgetFunctionError(
                f"max_time_s must be positive, got {max_time_s}"
            )
        self._max_time_s = float(max_time_s)

    @property
    def max_time_s(self) -> float:
        """``tmax``: beyond this response time the user pays nothing."""
        return self._max_time_s

    def value(self, response_time_s: float) -> float:
        """The price the user is willing to pay at ``response_time_s``.

        Args:
            response_time_s: the (positive) response time offered.

        Returns:
            The willingness-to-pay; 0 beyond ``tmax`` (the user would not
            accept the service at all).

        Raises:
            BudgetFunctionError: for non-positive response times.

        Example:
            >>> ConvexBudget(amount=8.0, max_time_s=4.0).value(2.0)
            2.0
        """
        if response_time_s <= 0:
            raise BudgetFunctionError(
                f"response_time_s must be positive, got {response_time_s}"
            )
        if response_time_s > self._max_time_s:
            return 0.0
        return self._value_within_range(response_time_s)

    def accepts(self, response_time_s: float, price: float) -> bool:
        """Whether the user would pay ``price`` for this response time.

        Args:
            response_time_s: the response time offered.
            price: the price asked.

        Returns:
            ``True`` iff ``price <= B(response_time_s)``.

        Example:
            >>> StepBudget(amount=2.0, max_time_s=1.0).accepts(0.5, 2.5)
            False
        """
        return price <= self.value(response_time_s)

    @abc.abstractmethod
    def _value_within_range(self, response_time_s: float) -> float:
        """The curve on ``(0, tmax]``; implementations need not re-validate."""

    @abc.abstractmethod
    def scaled(self, factor: float) -> "BudgetFunction":
        """A copy of the function with all prices multiplied by ``factor``."""


class StepBudget(BudgetFunction):
    """Figure 1(a): a flat budget ``|a|`` up to ``tmax`` (the paper's user model).

    Example:
        >>> StepBudget(amount=3.0, max_time_s=2.0).scaled(2.0)
        StepBudget(amount=6.0, max_time_s=2.0)
    """

    def __init__(self, amount: float, max_time_s: float) -> None:
        super().__init__(max_time_s)
        if amount < 0:
            raise BudgetFunctionError(f"amount must be non-negative, got {amount}")
        self._amount = float(amount)

    @property
    def amount(self) -> float:
        """The flat willingness-to-pay."""
        return self._amount

    def _value_within_range(self, response_time_s: float) -> float:
        return self._amount

    def scaled(self, factor: float) -> "StepBudget":
        """A copy with the willingness-to-pay multiplied by ``factor``."""
        _validate_scale(factor)
        return StepBudget(self._amount * factor, self._max_time_s)

    def __repr__(self) -> str:
        return f"StepBudget(amount={self._amount}, max_time_s={self._max_time_s})"


class ConvexBudget(BudgetFunction):
    """Figure 1(b): the budget decays quadratically, fast at first.

    ``B(t) = amount * (1 - t / tmax)^2`` — below the straight line between
    the endpoints, matching the convex bound given in the figure caption.

    Example:
        >>> ConvexBudget(amount=4.0, max_time_s=2.0).value(1.0)
        1.0
    """

    def __init__(self, amount: float, max_time_s: float) -> None:
        super().__init__(max_time_s)
        if amount < 0:
            raise BudgetFunctionError(f"amount must be non-negative, got {amount}")
        self._amount = float(amount)

    @property
    def amount(self) -> float:
        """The willingness-to-pay at (near-)zero response time."""
        return self._amount

    def _value_within_range(self, response_time_s: float) -> float:
        remaining = 1.0 - response_time_s / self._max_time_s
        return self._amount * remaining * remaining

    def scaled(self, factor: float) -> "ConvexBudget":
        """A copy with the willingness-to-pay multiplied by ``factor``."""
        _validate_scale(factor)
        return ConvexBudget(self._amount * factor, self._max_time_s)

    def __repr__(self) -> str:
        return f"ConvexBudget(amount={self._amount}, max_time_s={self._max_time_s})"


class ConcaveBudget(BudgetFunction):
    """Figure 1(c): the budget stays high and drops near the deadline.

    ``B(t) = amount * (1 - (t / tmax)^2)`` — above the straight line between
    the endpoints, matching the concave bound given in the figure caption.

    Example:
        >>> ConcaveBudget(amount=4.0, max_time_s=2.0).value(1.0)
        3.0
    """

    def __init__(self, amount: float, max_time_s: float) -> None:
        super().__init__(max_time_s)
        if amount < 0:
            raise BudgetFunctionError(f"amount must be non-negative, got {amount}")
        self._amount = float(amount)

    @property
    def amount(self) -> float:
        """The willingness-to-pay at (near-)zero response time."""
        return self._amount

    def _value_within_range(self, response_time_s: float) -> float:
        fraction = response_time_s / self._max_time_s
        return self._amount * (1.0 - fraction * fraction)

    def scaled(self, factor: float) -> "ConcaveBudget":
        """A copy with the willingness-to-pay multiplied by ``factor``."""
        _validate_scale(factor)
        return ConcaveBudget(self._amount * factor, self._max_time_s)

    def __repr__(self) -> str:
        return f"ConcaveBudget(amount={self._amount}, max_time_s={self._max_time_s})"


def validate_descending(function: BudgetFunction,
                        sample_times: Sequence[float] = None) -> None:
    """Check the non-increasing contract ``B(t1) >= B(t2)`` for ``t1 < t2``.

    The contract is sampled on a grid (or on the provided ``sample_times``)
    because arbitrary user-supplied budget functions cannot be checked
    symbolically.

    Args:
        function: the budget function to check.
        sample_times: optional explicit sample instants; defaults to a
            32-point grid over ``(0, tmax]``.

    Raises:
        BudgetFunctionError: on a violation.

    Example:
        >>> validate_descending(StepBudget(amount=1.0, max_time_s=5.0))
    """
    if sample_times is None:
        steps = 32
        sample_times = [
            function.max_time_s * (index + 1) / steps for index in range(steps)
        ]
    ordered = sorted(float(value) for value in sample_times if value > 0)
    previous_time = None
    previous_value = None
    for time_s in ordered:
        value = function.value(time_s)
        if previous_value is not None and value > previous_value + 1e-12:
            raise BudgetFunctionError(
                f"budget function increases between t={previous_time} "
                f"({previous_value}) and t={time_s} ({value})"
            )
        previous_time, previous_value = time_s, value


def _validate_scale(factor: float) -> None:
    if factor < 0:
        raise BudgetFunctionError(f"scale factor must be non-negative, got {factor}")
