"""Cache structures the cloud can invest in.

Section V-C: "the cache needs to decide on building and maintaining three
different types of structures: 1) CPU nodes N, 2) table columns T, and
3) indexes I". Each structure knows its identity (a stable key used by the
regret tracker), its size on disk, and which queries it can serve.
"""

from repro.structures.base import CacheStructure, StructureKind
from repro.structures.cpu_node import CpuNode
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex

__all__ = [
    "CacheStructure",
    "StructureKind",
    "CpuNode",
    "CachedColumn",
    "CachedIndex",
]
