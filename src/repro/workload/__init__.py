"""Query model and workload generation.

The workload of Section VII-A consists of 7 TPC-H query templates that
simulate the query evolution of a million SDSS-like queries. This package
provides the analytic query model (which columns a query touches, how
selective its predicates are, how big its result is), the seven templates,
and a generator that produces an evolving workload with the data and
temporal locality properties Section VI calls out as prerequisites for a
viable cache economy. The scenario layer (:mod:`repro.workload.scenarios`)
adds bursty, diurnal, and phase-shift arrival regimes plus drifting
template mixes, each announcing its phase boundaries to the simulation
kernel. The population layer (:mod:`repro.workload.population`) assigns a
Zipf-skewed, optionally churning N-tenant population to any query stream.
"""

from repro.workload.arrival import (
    ArrivalProcess,
    FixedInterarrival,
    PhaseChange,
    PoissonArrival,
    TraceArrival,
)
from repro.workload.generator import WorkloadGenerator, WorkloadSpec
from repro.workload.population import (
    PopulatedWorkload,
    PopulationSpec,
    TenantLifecycleMarker,
    TenantPopulation,
)
from repro.workload.query import Predicate, PredicateKind, Query, QueryTemplate
from repro.workload.scenarios import (
    SCENARIO_NAMES,
    BurstyArrival,
    DiurnalArrival,
    PhaseShiftArrival,
    ScenarioWorkload,
    build_scenario,
    drifting_mix_workload,
)
from repro.workload.templates import paper_templates, template_by_name

__all__ = [
    "ArrivalProcess",
    "FixedInterarrival",
    "PhaseChange",
    "PoissonArrival",
    "TraceArrival",
    "BurstyArrival",
    "DiurnalArrival",
    "PhaseShiftArrival",
    "ScenarioWorkload",
    "SCENARIO_NAMES",
    "build_scenario",
    "drifting_mix_workload",
    "WorkloadGenerator",
    "WorkloadSpec",
    "PopulatedWorkload",
    "PopulationSpec",
    "TenantLifecycleMarker",
    "TenantPopulation",
    "Predicate",
    "PredicateKind",
    "Query",
    "QueryTemplate",
    "paper_templates",
    "template_by_name",
]
