"""Cache contents management.

The cache manager tracks which structures are built, how much disk they
occupy, when they were last useful, and how much unpaid maintenance they have
accrued. It implements the LRU garbage collection the paper applies to the
structure pool and the maintenance-driven "structure failure" of footnote 3.
"""

from repro.cache.lru import LruTracker
from repro.cache.storage import CacheEntry, EvictionRecord
from repro.cache.manager import CacheManager

__all__ = [
    "LruTracker",
    "CacheEntry",
    "EvictionRecord",
    "CacheManager",
]
