"""Scheme factory: build any of the paper's four schemes by name."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.costmodel.build import StructureCostModel
from repro.costmodel.execution import ExecutionCostModel
from repro.errors import ConfigurationError
from repro.policies.base import CachingScheme
from repro.policies.bypass_yield import BypassYieldConfig, BypassYieldScheme
from repro.policies.economic import (
    EconomicSchemeConfig,
    build_econ_cheap,
    build_econ_col,
    build_econ_fast,
)

#: The four schemes of Figures 4 and 5, in the order the paper plots them.
SCHEME_NAMES = ("bypass", "econ-col", "econ-cheap", "econ-fast")


def build_scheme(name: str, execution_model: ExecutionCostModel,
                 structure_costs: StructureCostModel,
                 economic_config: Optional[EconomicSchemeConfig] = None,
                 bypass_config: Optional[BypassYieldConfig] = None
                 ) -> CachingScheme:
    """Build a scheme by its paper name.

    Args:
        name: one of :data:`SCHEME_NAMES`.
        execution_model: the shared execution cost model.
        structure_costs: the shared structure cost model.
        economic_config: configuration for the econ-* schemes.
        bypass_config: configuration for the bypass baseline.
    """
    if name == "bypass":
        return BypassYieldScheme(
            execution_model, structure_costs,
            config=bypass_config or BypassYieldConfig(),
        )
    if name == "econ-col":
        return build_econ_col(execution_model, structure_costs, economic_config)
    if name == "econ-cheap":
        return build_econ_cheap(execution_model, structure_costs, economic_config)
    if name == "econ-fast":
        return build_econ_fast(execution_model, structure_costs, economic_config)
    raise ConfigurationError(
        f"unknown scheme {name!r}; expected one of {', '.join(SCHEME_NAMES)}"
    )
