"""Unit tests for the simulated user model."""

import pytest

from repro.economy.budget import ConcaveBudget, ConvexBudget, StepBudget
from repro.economy.user_model import UserModel
from repro.errors import ConfigurationError


class TestUserModel:
    def test_default_is_a_step_function(self, sample_query):
        model = UserModel(budget_factor=1.5, max_time_factor=2.0)
        budget = model.budget_for(sample_query(), backend_price=0.1,
                                  backend_response_time_s=10.0)
        assert isinstance(budget, StepBudget)
        assert budget.value(1.0) == pytest.approx(0.15)
        assert budget.max_time_s == pytest.approx(20.0)

    def test_budget_scale_multiplies_willingness(self, sample_query):
        model = UserModel(budget_factor=2.0)
        query = sample_query(budget_scale=1.5)
        budget = model.budget_for(query, backend_price=0.1,
                                  backend_response_time_s=10.0)
        assert budget.value(1.0) == pytest.approx(0.3)

    def test_minimum_budget_floor(self, sample_query):
        model = UserModel(budget_factor=1.0, minimum_budget=0.5)
        budget = model.budget_for(sample_query(), backend_price=0.001,
                                  backend_response_time_s=10.0)
        assert budget.value(1.0) == pytest.approx(0.5)

    def test_backend_plan_is_always_acceptable(self, sample_query):
        """max_time_factor >= 1 guarantees tmax covers the back-end response."""
        model = UserModel()
        budget = model.budget_for(sample_query(), backend_price=0.1,
                                  backend_response_time_s=42.0)
        assert budget.max_time_s >= 42.0

    @pytest.mark.parametrize("shape, expected", [
        ("step", StepBudget),
        ("convex", ConvexBudget),
        ("concave", ConcaveBudget),
    ])
    def test_shapes(self, sample_query, shape, expected):
        model = UserModel(shape=shape)
        budget = model.budget_for(sample_query(), backend_price=0.1,
                                  backend_response_time_s=10.0)
        assert isinstance(budget, expected)

    @pytest.mark.parametrize("kwargs", [
        {"budget_factor": 0.0},
        {"max_time_factor": 0.5},
        {"shape": "staircase"},
        {"minimum_budget": -1.0},
    ])
    def test_invalid_configuration_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            UserModel(**kwargs)

    def test_invalid_reference_inputs_rejected(self, sample_query):
        model = UserModel()
        with pytest.raises(ConfigurationError):
            model.budget_for(sample_query(), backend_price=-1.0,
                             backend_response_time_s=1.0)
        with pytest.raises(ConfigurationError):
            model.budget_for(sample_query(), backend_price=1.0,
                             backend_response_time_s=0.0)
