"""The coordinator: fan shard tasks out, collect, verify, merge.

One :class:`ShardCoordinator` serves a whole experiment: it expands every
cell into ``shard_count`` independent :class:`~repro.sharding.worker.ShardTask`
objects, runs all of them on one shared ``ProcessPoolExecutor`` (or
in-process when ``max_workers`` is 1 — the execution path is the same
``run_shard`` function either way), and folds each cell's shards through
:func:`~repro.sharding.merge.merge_shard_results`, where the settlement
barriers are aligned and audited.

The two parallelism axes compose: ``max_workers`` is the total process
budget, shared by the ``cells x shards`` task matrix, so scheme-level
parallelism (the old ``--jobs``) and tenant-level sharding (``--shards``)
never fight over who gets to spawn.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ShardingError
from repro.experiments.tenants import TenantExperimentConfig
from repro.sharding.merge import ShardMergeReport, merge_shard_results
from repro.sharding.worker import ShardResult, ShardTask, run_shard


class ShardImbalanceWarning(UserWarning):
    """More shards than tenants: some workers will own nothing."""


@dataclass(frozen=True)
class ShardPlan:
    """How a sharded run is laid out.

    Attributes:
        shard_count: tenant shards per cell (>= 1).
        max_workers: total process budget shared by all shard tasks; 1 runs
            everything in-process, which is still the full partition/merge
            pipeline (useful for tests and byte-identity checks).
    """

    shard_count: int = 1
    max_workers: int = 1

    def __post_init__(self) -> None:
        if self.shard_count < 1:
            raise ShardingError(
                f"shard_count must be >= 1, got {self.shard_count}"
            )
        if self.max_workers < 1:
            raise ShardingError(
                f"max_workers must be >= 1, got {self.max_workers}"
            )


class ShardCoordinator:
    """Executes tenant cells as sharded runs and merges them exactly."""

    def __init__(self, shard_count: int, max_workers: int = 1,
                 trace: bool = False, metrics: bool = False) -> None:
        self._plan = ShardPlan(shard_count=shard_count,
                               max_workers=max_workers)
        self._trace = trace
        self._metrics = metrics

    @property
    def plan(self) -> ShardPlan:
        """The run layout."""
        return self._plan

    @property
    def shard_count(self) -> int:
        """Tenant shards per cell."""
        return self._plan.shard_count

    def tasks_for(self, config: TenantExperimentConfig) -> List[ShardTask]:
        """The shard tasks one cell expands into."""
        if self.shard_count > config.tenant_count:
            warnings.warn(
                f"shard count {self.shard_count} exceeds the tenant count "
                f"{config.tenant_count}; some shards will own no tenants",
                ShardImbalanceWarning,
                stacklevel=2,
            )
        return [
            ShardTask(config=config, shard_index=index,
                      shard_count=self.shard_count, trace=self._trace,
                      metrics=self._metrics)
            for index in range(self.shard_count)
        ]

    def run_cell(self, config: TenantExperimentConfig) -> ShardMergeReport:
        """Run one cell sharded and return the verified merged result."""
        return self.run_cells([config])[0]

    def run_cells(self, configs: Sequence[TenantExperimentConfig]
                  ) -> List[ShardMergeReport]:
        """Run many cells sharded over one shared process pool.

        Results come back in ``configs`` order; every cell is merged and
        verified independently (a determinism divergence in one cell does
        not silently poison the others — it raises).
        """
        cells = list(configs)
        if not cells:
            raise ShardingError("at least one tenant cell is required")
        tasks: List[ShardTask] = []
        for config in cells:
            tasks.extend(self.tasks_for(config))
        results = self._execute(tasks)
        reports: List[ShardMergeReport] = []
        for index, config in enumerate(cells):
            group = results[index * self.shard_count:
                            (index + 1) * self.shard_count]
            reports.append(merge_shard_results(group, config))
        return reports

    def _execute(self, tasks: List[ShardTask]) -> List[ShardResult]:
        workers = min(self._plan.max_workers, len(tasks))
        if workers == 1:
            return [run_shard(task) for task in tasks]
        with ProcessPoolExecutor(max_workers=workers) as executor:
            return list(executor.map(run_shard, tasks))
