"""Unit tests for query-plan objects."""

import pytest

from repro.costmodel.execution import ExecutionEstimate
from repro.errors import PlanningError
from repro.planner.plan import PlanKind, QueryPlan, required_columns_for
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode


def make_estimate(dollars=1.0, response=5.0):
    return ExecutionEstimate(
        cost_units=10.0, io_operations=100.0, cpu_seconds=2.0,
        network_bytes=0.0, response_time_s=response,
        cpu_dollars=dollars / 2, io_dollars=dollars / 2, network_dollars=0.0,
    )


class TestRequiredColumns:
    def test_fact_table_columns_are_required(self, sample_query):
        query = sample_query("q6_forecast_revenue")
        keys = {column.key for column in required_columns_for(query)}
        assert "column:lineitem.l_shipdate" in keys
        assert "column:lineitem.l_extendedprice" in keys

    def test_join_predicate_columns_are_required(self, sample_query):
        query = sample_query("q3_shipping_priority")
        keys = {column.key for column in required_columns_for(query)}
        assert "column:orders.o_orderdate" in keys
        assert "column:customer.c_mktsegment" in keys

    def test_no_duplicates(self, sample_query):
        columns = required_columns_for(sample_query("q12_shipping_modes"))
        keys = [column.key for column in columns]
        assert len(keys) == len(set(keys))


class TestQueryPlan:
    def test_backend_plan_has_no_structures(self, sample_query):
        plan = QueryPlan(query=sample_query(), kind=PlanKind.BACKEND,
                         execution=make_estimate())
        assert plan.label == "backend"
        assert not plan.runs_in_cache
        assert plan.structure_keys == frozenset()
        assert plan.is_existing([])

    def test_backend_plan_rejects_structures(self, sample_query):
        with pytest.raises(PlanningError):
            QueryPlan(query=sample_query(), kind=PlanKind.BACKEND,
                      execution=make_estimate(),
                      structures=(CachedColumn("lineitem", "l_shipdate"),))

    def test_index_plan_requires_an_index(self, sample_query):
        with pytest.raises(PlanningError):
            QueryPlan(query=sample_query(), kind=PlanKind.CACHE_INDEX,
                      execution=make_estimate())

    def test_column_plan_rejects_an_index(self, sample_query):
        with pytest.raises(PlanningError):
            QueryPlan(query=sample_query(), kind=PlanKind.CACHE_COLUMN_SCAN,
                      execution=make_estimate(),
                      index=CachedIndex("lineitem", ("l_shipdate",)))

    def test_new_structures_against_cache_state(self, sample_query):
        columns = (CachedColumn("lineitem", "l_shipdate"),
                   CachedColumn("lineitem", "l_discount"))
        plan = QueryPlan(query=sample_query(), kind=PlanKind.CACHE_COLUMN_SCAN,
                         execution=make_estimate(), structures=columns)
        missing = plan.new_structures(["column:lineitem.l_shipdate"])
        assert [s.key for s in missing] == ["column:lineitem.l_discount"]
        assert not plan.is_existing(["column:lineitem.l_shipdate"])
        assert plan.is_existing([c.key for c in columns])

    def test_structure_accessors(self, sample_query):
        index = CachedIndex("lineitem", ("l_shipdate",))
        structures = (CachedColumn("lineitem", "l_shipdate"), index, CpuNode(1))
        plan = QueryPlan(query=sample_query(), kind=PlanKind.CACHE_INDEX,
                         execution=make_estimate(), structures=structures,
                         index=index, node_count=2)
        assert len(plan.cached_columns) == 1
        assert len(plan.cpu_nodes) == 1
        assert "2nodes" in plan.label
        assert index.key in plan.label
        assert plan.runs_in_cache

    def test_execution_shortcuts(self, sample_query):
        plan = QueryPlan(query=sample_query(), kind=PlanKind.BACKEND,
                         execution=make_estimate(dollars=3.0, response=9.0))
        assert plan.response_time_s == 9.0
        assert plan.execution_dollars == pytest.approx(3.0)

    def test_rejects_bad_node_count(self, sample_query):
        with pytest.raises(PlanningError):
            QueryPlan(query=sample_query(), kind=PlanKind.BACKEND,
                      execution=make_estimate(), node_count=0)
