"""Tests for the experiment profiles, runner, figures and reporting."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentProfile, PAPER_PROFILE, QUICK_PROFILE
from repro.experiments.figure4 import figure4_rows, figure4_table
from repro.experiments.figure5 import figure5_rows, figure5_table
from repro.experiments.headline import headline_ratios, headline_table
from repro.experiments.reporting import format_table
from repro.experiments.runner import build_system, clear_grid_cache, run_cell, run_grid


#: A deliberately tiny profile so the experiment machinery can be exercised
#: inside the unit-test budget; the numbers it produces are not meaningful.
TINY_PROFILE = ExperimentProfile(
    name="tiny",
    query_count=40,
    interarrival_times_s=(1.0, 30.0),
    schemes=("bypass", "econ-col", "econ-cheap", "econ-fast"),
)


@pytest.fixture(scope="module")
def tiny_grid():
    clear_grid_cache()
    return run_grid(TINY_PROFILE)


class TestProfiles:
    def test_paper_profile_matches_the_figure_sweep(self):
        assert PAPER_PROFILE.interarrival_times_s == (1.0, 10.0, 30.0, 60.0)
        assert PAPER_PROFILE.schemes == ("bypass", "econ-col", "econ-cheap", "econ-fast")

    def test_quick_profile_is_smaller(self):
        assert QUICK_PROFILE.query_count < PAPER_PROFILE.query_count

    @pytest.mark.parametrize("kwargs", [
        {"query_count": 0},
        {"warmup_queries": 100, "query_count": 50},
        {"interarrival_times_s": ()},
        {"interarrival_times_s": (0.0,)},
        {"schemes": ()},
        {"schemes": ("econ-magic",)},
        {"disk_duration_scale": 0.0},
    ])
    def test_invalid_profiles_rejected(self, kwargs):
        with pytest.raises(ExperimentError):
            ExperimentProfile(name="bad", **kwargs)

    def test_with_overrides(self):
        profile = QUICK_PROFILE.with_overrides(query_count=10)
        assert profile.query_count == 10
        assert profile.name == QUICK_PROFILE.name


class TestRunner:
    def test_grid_has_every_cell(self, tiny_grid):
        assert len(tiny_grid.cells) == 8
        for scheme in TINY_PROFILE.schemes:
            for interval in TINY_PROFILE.interarrival_times_s:
                cell = tiny_grid.cell(scheme, interval)
                assert cell.summary.query_count == TINY_PROFILE.query_count

    def test_missing_cell_raises(self, tiny_grid):
        with pytest.raises(ExperimentError):
            tiny_grid.cell("bypass", 123.0)

    def test_series_follows_the_interval_order(self, tiny_grid):
        series = tiny_grid.series("bypass", lambda s: s.operating_cost)
        assert len(series) == 2
        assert all(value > 0 for value in series)

    def test_grid_is_cached_per_profile(self):
        first = run_grid(TINY_PROFILE)
        second = run_grid(TINY_PROFILE)
        assert first is second
        clear_grid_cache()
        third = run_grid(TINY_PROFILE, use_cache=False)
        assert third is not first

    def test_run_cell_standalone(self):
        system = build_system(TINY_PROFILE)
        cell = run_cell(system, TINY_PROFILE, "bypass", 1.0)
        assert cell.scheme == "bypass"
        assert cell.summary.operating_cost > 0

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_grid(TINY_PROFILE, use_cache=False, jobs=0)

    def test_grid_cache_is_bounded(self):
        from repro.experiments import runner

        clear_grid_cache()
        profiles = [
            TINY_PROFILE.with_overrides(name=f"bound-{index}", query_count=2)
            for index in range(runner._GRID_CACHE_MAX_ENTRIES + 2)
        ]
        small = [profile.with_overrides(interarrival_times_s=(1.0,),
                                        schemes=("bypass",))
                 for profile in profiles]
        for profile in small:
            run_grid(profile)
        assert len(runner._GRID_CACHE) == runner._GRID_CACHE_MAX_ENTRIES
        # The oldest entries were evicted; the newest are still cached.
        assert small[0] not in runner._GRID_CACHE
        assert small[-1] in runner._GRID_CACHE
        clear_grid_cache()


class TestParallelRunner:
    """The grid is embarrassingly parallel; fan-out must not change results."""

    PARALLEL_PROFILE = ExperimentProfile(
        name="parallel-check",
        query_count=40,
        interarrival_times_s=(1.0, 30.0),
        schemes=("bypass", "econ-cheap"),
    )

    def test_parallel_grid_is_cell_for_cell_identical(self):
        sequential = run_grid(self.PARALLEL_PROFILE, use_cache=False)
        parallel = run_grid(self.PARALLEL_PROFILE, use_cache=False, jobs=2)
        assert len(parallel.cells) == len(sequential.cells)
        for seq_cell, par_cell in zip(sequential.cells, parallel.cells):
            assert par_cell.scheme == seq_cell.scheme
            assert par_cell.interarrival_s == seq_cell.interarrival_s
            # MetricsSummary is a frozen dataclass: equality is exact,
            # field by field, no tolerance.
            assert par_cell.summary == seq_cell.summary


class TestFigures:
    def test_figure4_rows_shape(self, tiny_grid):
        rows = figure4_rows(tiny_grid)
        assert len(rows) == 2
        assert all(len(row) == 1 + len(TINY_PROFILE.schemes) for row in rows)
        assert all(isinstance(value, float) for row in rows for value in row[1:])

    def test_figure5_rows_shape(self, tiny_grid):
        rows = figure5_rows(tiny_grid)
        assert len(rows) == 2
        assert all(value > 0 for row in rows for value in row[1:])

    def test_tables_render(self, tiny_grid):
        cost_table = figure4_table(grid=tiny_grid)
        response_table = figure5_table(grid=tiny_grid)
        assert "Figure 4" in cost_table and "bypass" in cost_table
        assert "Figure 5" in response_table and "econ-fast" in response_table

    def test_headline_ratios_computable(self, tiny_grid):
        ratios = headline_ratios(grid=tiny_grid)
        assert ratios.econ_col_vs_bypass_cost > 0
        assert ratios.econ_cheap_vs_econ_col_response > 0
        assert "claim" in headline_table(grid=tiny_grid)

    def test_headline_requires_all_schemes(self):
        partial = TINY_PROFILE.with_overrides(name="partial", schemes=("bypass",))
        grid = run_grid(partial, use_cache=False)
        with pytest.raises(ExperimentError):
            headline_ratios(grid=grid)


class TestReporting:
    def test_format_table_renders_floats(self):
        table = format_table(["a", "b"], [[1, 2.345], [3, 4.0]], title="demo")
        assert "demo" in table
        assert "2.35" in table
        assert table.count("\n") == 4

    def test_format_table_validates_row_width(self):
        with pytest.raises(ExperimentError):
            format_table(["a"], [[1, 2]])

    def test_format_table_requires_headers(self):
        with pytest.raises(ExperimentError):
            format_table([], [])

    def test_booleans_render_as_yes_no(self):
        table = format_table(["flag"], [[True], [False]])
        assert "yes" in table and "no" in table
