"""Tests for the ablation drivers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.ablations import (
    ABLATION_HEADERS,
    amortization_ablation,
    bypass_budget_ablation,
    locality_ablation,
    regret_fraction_ablation,
)
from repro.experiments.config import ExperimentProfile

TINY = ExperimentProfile(name="tiny-ablation", query_count=40,
                         interarrival_times_s=(1.0,))


class TestAblations:
    def test_regret_fraction_rows(self):
        rows = regret_fraction_ablation(fractions=(0.01, 0.5), profile=TINY)
        assert len(rows) == 2
        assert all(len(row) == len(ABLATION_HEADERS) for row in rows)
        assert rows[0][0] == 0.01

    def test_amortization_rows(self):
        rows = amortization_ablation(horizons=(10, 10_000), profile=TINY)
        assert [row[0] for row in rows] == [10, 10_000]
        assert all(row[1] > 0 for row in rows)

    def test_locality_rows(self):
        rows = locality_ablation(hot_probabilities=(0.3, 0.95), profile=TINY)
        assert [row[0] for row in rows] == [0.3, 0.95]

    def test_bypass_budget_rows(self):
        rows = bypass_budget_ablation(cache_fractions=(0.1, 0.3), profile=TINY)
        assert [row[0] for row in rows] == [0.1, 0.3]

    @pytest.mark.parametrize("driver, kwargs", [
        (regret_fraction_ablation, {"fractions": ()}),
        (amortization_ablation, {"horizons": ()}),
        (locality_ablation, {"hot_probabilities": ()}),
        (bypass_budget_ablation, {"cache_fractions": ()}),
    ])
    def test_empty_sweeps_rejected(self, driver, kwargs):
        with pytest.raises(ExperimentError):
            driver(profile=TINY, **kwargs)
