"""Unit tests for the cost-model configuration."""

import pytest

from repro import constants
from repro.costmodel.config import CostModelConfig
from repro.errors import ConfigurationError
from repro.pricing.catalog import ec2_2009_pricing, network_only_pricing


class TestDefaults:
    def test_paper_parameters(self):
        config = CostModelConfig()
        assert config.cpu_load_factor == 1.0
        assert config.cpu_cost_factor == pytest.approx(0.014)
        assert config.network_cpu_fraction == 1.0
        assert config.network_latency_s == 0.0
        assert config.network_throughput_bps == pytest.approx(25e6 / 8)

    def test_duration_scale_defaults_to_one(self):
        assert CostModelConfig().disk_duration_scale == 1.0


class TestValidation:
    @pytest.mark.parametrize("field, value", [
        ("cpu_cost_factor", 0.0),
        ("io_cost_factor", -1.0),
        ("network_throughput_bps", 0.0),
        ("bytes_per_cost_unit", 0.0),
        ("io_page_bytes", 0.0),
        ("index_random_access_penalty", 0.0),
        ("disk_duration_scale", 0.0),
        ("network_latency_s", -1.0),
        ("node_boot_time_s", -1.0),
        ("cpu_load_factor", 0.5),
    ])
    def test_invalid_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            CostModelConfig(**{field: value})


class TestDerivedRates:
    def test_storage_rate_applies_duration_scale(self):
        base = CostModelConfig()
        scaled = CostModelConfig(disk_duration_scale=10.0)
        assert scaled.storage_rate_per_byte_second == pytest.approx(
            10.0 * base.storage_rate_per_byte_second
        )

    def test_node_uptime_rate_applies_duration_scale(self):
        base = CostModelConfig()
        scaled = CostModelConfig(disk_duration_scale=4.0)
        assert scaled.node_uptime_rate_per_second == pytest.approx(
            4.0 * base.node_uptime_rate_per_second
        )

    def test_with_pricing_swaps_catalog(self):
        config = CostModelConfig().with_pricing(network_only_pricing())
        assert config.pricing.io_per_million == 0.0
        assert config.cpu_cost_factor == pytest.approx(0.014)

    def test_with_overrides(self):
        config = CostModelConfig().with_overrides(network_latency_s=0.5)
        assert config.network_latency_s == 0.5
        assert config.pricing.network_gb == ec2_2009_pricing().network_gb
