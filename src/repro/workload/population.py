"""Population-scale workloads: who issues each query.

The ROADMAP's north star is "heavy traffic from millions of users"; this
module is the layer that turns an anonymous query stream into traffic from
an N-tenant population:

* activity is **Zipf-skewed** — a few tenants issue most of the queries,
  the long tail issues the rest, matching every measured multi-user trace;
* the population **churns** — on a configurable schedule a fraction of the
  active tenants leaves and is replaced by fresh ones, each replacement
  inheriting its predecessor's activity rank (the skew is stationary even
  while identities rotate);
* every join/leave is announced as a :class:`TenantLifecycleMarker`, which
  the simulation layer schedules as first-class
  :class:`~repro.simulator.events.TenantArrivalEvent` /
  :class:`~repro.simulator.events.TenantChurnEvent` kernel events.

Two ways to consume a population:

* :meth:`TenantPopulation.populate` materialises everything up front (the
  original eager path, byte-stable and convenient at small N);
* :meth:`TenantPopulation.stream` yields the same markers and populated
  queries lazily through a :class:`PopulationStream`, in time order, so a
  million-tenant run never holds the whole workload in memory. The eager
  path is implemented by draining the stream, so the two are identical by
  construction.

Tenant profiles are **generative**: :class:`GenerativeProfileSource`
derives any tenant's static profile purely from ``(population seed,
tenant index)`` — no RNG stream is shared with the query-assignment
draws — which is what lets a registry materialise a profile at first
arrival instead of holding the whole population (see
:class:`~repro.economy.tenancy.GenerativeTenantRegistry`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import (TYPE_CHECKING, Callable, Iterable, Iterator, List,
                    Optional, Sequence, Tuple, Union)

import numpy as np

from repro.errors import WorkloadError
from repro.workload.query import Query

if TYPE_CHECKING:  # deferred: economy imports the cost model, which imports
    # the workload package — a module-level import here would be circular.
    from repro.economy.tenancy import TenantProfile

#: Domain separators for the per-tenant RNG streams. Each derived quantity
#: draws from ``default_rng((separator, seed, index))`` — a dedicated
#: stream per (tenant, purpose) — so any single tenant's profile is
#: computable in O(1) without replaying the draws of the tenants before it.
_MULTIPLIER_STREAM = 0x7E01
_TIER_STREAM = 0x7E02

#: How many queries a :class:`PopulationStream` assigns per vectorized
#: draw. numpy ``Generator.choice`` consumes one uniform per sample, so
#: chunked draws are bitwise identical to one whole-segment draw — the
#: chunk size only bounds memory, never changes the output.
_STREAM_CHUNK = 4096


def tenant_id_for(index: int) -> str:
    """The canonical id of the ``index``-th tenant ever minted."""
    return f"t{index:05d}"


def tenant_index_of(tenant_id: str) -> Optional[int]:
    """Invert :func:`tenant_id_for`; ``None`` for ids outside the scheme.

    Only exact round-trips count (``t00012`` → 12, but ``t12`` or
    ``alice`` → ``None``), so ad-hoc ids can never alias a population
    member.
    """
    if len(tenant_id) < 6 or not tenant_id.startswith("t"):
        return None
    digits = tenant_id[1:]
    if not digits.isdigit():
        return None
    index = int(digits)
    return index if tenant_id_for(index) == tenant_id else None


@dataclass(frozen=True)
class PopulationSpec:
    """Parameters of the tenant population.

    Attributes:
        tenant_count: number of tenants active at any one time.
        zipf_exponent: skew of the activity distribution; tenant of rank
            ``r`` (0-based) is drawn with weight ``1 / (r + 1) ** s``.
            ``0`` gives a uniform population, ``~1.1`` a realistic skew.
        initial_credit: seed credit of every tenant wallet.
        budget_sigma: lognormal sigma of the per-tenant budget multiplier
            (0 gives every tenant the baseline willingness-to-pay).
        churn_period: replace part of the population every this many
            queries; ``0`` disables churn.
        churn_fraction: fraction of the active tenants replaced per wave
            (``0`` also disables churn).
        seed: RNG seed; equal specs produce equal populations.
    """

    tenant_count: int = 100
    zipf_exponent: float = 1.1
    initial_credit: float = 50.0
    budget_sigma: float = 0.0
    churn_period: int = 0
    churn_fraction: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.tenant_count <= 0:
            raise WorkloadError("tenant_count must be positive")
        if self.zipf_exponent < 0:
            raise WorkloadError("zipf_exponent must be non-negative")
        if self.initial_credit < 0:
            raise WorkloadError("initial_credit must be non-negative")
        if self.budget_sigma < 0:
            raise WorkloadError("budget_sigma must be non-negative")
        if self.churn_period < 0:
            raise WorkloadError("churn_period must be non-negative")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise WorkloadError("churn_fraction must be in [0, 1]")


@dataclass(frozen=True)
class TenantLifecycleMarker:
    """One tenant joining (``"arrival"``) or leaving (``"churn"``)."""

    time_s: float
    tenant_id: str
    kind: str

    def __post_init__(self) -> None:
        if self.kind not in ("arrival", "churn"):
            raise WorkloadError(
                f"kind must be 'arrival' or 'churn', got {self.kind!r}"
            )


@dataclass(frozen=True)
class PopulatedWorkload:
    """A query stream with tenants assigned, plus the population metadata."""

    queries: Tuple[Query, ...]
    profiles: Tuple["TenantProfile", ...]
    lifecycle: Tuple[TenantLifecycleMarker, ...]

    @property
    def tenant_count(self) -> int:
        """Total tenants that ever existed (initial + churn replacements)."""
        return len(self.profiles)

    @property
    def churn_waves(self) -> int:
        """Number of churn markers emitted."""
        return sum(1 for marker in self.lifecycle if marker.kind == "churn")


def tier_boundaries(tiers: Sequence) -> np.ndarray:
    """The cumulative tier-probability boundaries of a weighted tier list.

    ``tiers`` is duck-typed (anything carrying ``weight``); the grammar
    layer's :class:`~repro.workload.grammar.TenantTier` is the usual
    concrete type, kept out of this module to avoid an import cycle.
    """
    weights = np.array([tier.weight for tier in tiers], dtype=float)
    total = weights.sum()
    if total <= 0:
        raise WorkloadError("tenant tiers must have positive total weight")
    return np.cumsum(weights / total)


def tier_index_for(seed: int, index: int, boundaries: np.ndarray) -> int:
    """The SLA tier of tenant ``index``, derived from its own RNG stream.

    Mirrors ``numpy.random.Generator.choice(p=...)`` — one uniform
    searched into the cumulative boundaries — but draws the uniform from
    the tenant's dedicated stream, so the assignment of tenant *i* never
    depends on how many tenants were assigned before it. Both the eager
    tier rewrite (:func:`repro.workload.grammar.apply_tenant_tiers`) and
    the generative source below call this exact function, which is what
    keeps their tiered profiles bitwise identical.
    """
    uniform = np.random.default_rng((_TIER_STREAM, seed, index)).random()
    return min(int(np.searchsorted(boundaries, uniform, side="right")),
               len(boundaries) - 1)


@dataclass(frozen=True)
class GenerativeProfileSource:
    """Derives any tenant's static profile purely from ``(seed, index)``.

    The source is tiny and picklable: it carries the population spec plus
    the (optional) SLA tiers, and every derivation is a pure function of
    the tenant's index — dedicated RNG streams per tenant, no shared
    cursor. ``profile_for(i)`` therefore equals the ``i``-th profile the
    eager :meth:`TenantPopulation.populate` path mints (including after
    churn replacements and under tier rewrites), which the registry layer
    relies on to materialise profiles on demand.

    Profiles are *static* by contract — ``joined_at_s`` is always 0; the
    simulated arrival instants live in the lifecycle event stream, not in
    the profile (a profile must be derivable before, during, or after the
    tenant's tenure and always compare equal).
    """

    spec: PopulationSpec
    tiers: Tuple = ()

    def profile_for(self, index: int) -> "TenantProfile":
        """The static profile of the ``index``-th tenant ever minted."""
        from repro.economy.tenancy import TenantProfile

        if index < 0:
            raise WorkloadError(f"tenant index must be >= 0, got {index}")
        spec = self.spec
        multiplier = self.base_multiplier(index)
        credit = spec.initial_credit
        if self.tiers:
            tier = self.tiers[self.tier_of(index)]
            multiplier = multiplier * tier.budget_multiplier
            credit = credit * tier.credit_multiplier
        return TenantProfile(
            tenant_id=tenant_id_for(index),
            initial_credit=credit,
            budget_multiplier=multiplier,
        )

    def base_multiplier(self, index: int) -> float:
        """The pre-tier budget multiplier of tenant ``index``."""
        spec = self.spec
        if spec.budget_sigma <= 0:
            return 1.0
        rng = np.random.default_rng((_MULTIPLIER_STREAM, spec.seed, index))
        return float(max(1e-6, rng.lognormal(mean=0.0,
                                             sigma=spec.budget_sigma)))

    def tier_of(self, index: int) -> int:
        """The tier index assigned to tenant ``index`` (requires tiers)."""
        return tier_index_for(self.spec.seed, index,
                              tier_boundaries(self.tiers))

    def initial_credit_for(self, index: int) -> float:
        """The seed credit of tenant ``index`` (cheaper than a profile)."""
        credit = self.spec.initial_credit
        if self.tiers:
            credit = credit * self.tiers[self.tier_of(index)].credit_multiplier
        return credit

    def index_of(self, tenant_id: str) -> Optional[int]:
        """The population index behind ``tenant_id``; ``None`` if ad-hoc."""
        return tenant_index_of(tenant_id)


class PopulationStream:
    """Lazily populates a query stream: markers and queries in time order.

    Iterating yields :class:`TenantLifecycleMarker` and populated
    :class:`~repro.workload.query.Query` objects interleaved in
    non-decreasing time order (a churn wave's markers precede the first
    query of the segment that follows it). Memory is bounded by the
    *concurrently active* population — the slot list, the Zipf weight
    vector, and one draw chunk — never by the total number of queries or
    tenants ever minted.

    The stream is single-use; after exhaustion the population shape is
    available as :attr:`tenants_minted` / :attr:`churn_events` /
    :attr:`queries_emitted`.

    Args:
        spec: the population shape.
        queries: the base workload, in arrival order (any iterable; a
            generator keeps the whole pipeline lazy).
        source: profile source; defaults to a fresh one over ``spec``.
            Only consulted through ``on_profile`` — query assignment
            itself needs ids, not profiles.
        on_profile: optional callback invoked with each freshly minted
            tenant's profile (the eager path collects them; the streamed
            registry path passes ``None`` and derives on demand).
        chunk_size: upper bound on queries per vectorized draw.
    """

    def __init__(self, spec: PopulationSpec, queries: Iterable[Query],
                 source: Optional[GenerativeProfileSource] = None,
                 on_profile: Optional[Callable] = None,
                 chunk_size: int = _STREAM_CHUNK) -> None:
        if chunk_size <= 0:
            raise WorkloadError("chunk_size must be positive")
        self._spec = spec
        self._source = source or GenerativeProfileSource(spec=spec)
        self._queries = queries
        self._on_profile = on_profile
        self._chunk = chunk_size
        self._started = False
        self.tenants_minted = 0
        self.churn_events = 0
        self.queries_emitted = 0
        self.start_s: Optional[float] = None

    @property
    def spec(self) -> PopulationSpec:
        """The population specification."""
        return self._spec

    @property
    def source(self) -> GenerativeProfileSource:
        """The profile source minting this stream's tenants."""
        return self._source

    def __iter__(self) -> Iterator[Union[TenantLifecycleMarker, Query]]:
        if self._started:
            raise WorkloadError("a PopulationStream is single-use")
        self._started = True
        spec = self._spec
        iterator = iter(self._queries)
        pending = next(iterator, None)
        if pending is None:
            raise WorkloadError("cannot populate an empty workload")
        rng = np.random.default_rng(spec.seed)
        self.start_s = pending.arrival_time
        # Slot r holds the tenant of activity rank r; churn replaces the
        # slot's occupant but the slot keeps its Zipf weight, so the skew
        # stays stationary while identities rotate.
        slots = [self._mint() for _ in range(spec.tenant_count)]
        weights = self._slot_weights()
        for tenant_id in slots:
            yield TenantLifecycleMarker(time_s=self.start_s,
                                        tenant_id=tenant_id, kind="arrival")
        # Tenants are drawn one inter-churn segment at a time: the weights
        # are constant between waves, so vectorized choice() draws replace
        # a per-query O(tenant_count) CDF rebuild — the difference between
        # seconds and hours at population scale.
        churning = bool(spec.churn_period) and spec.churn_fraction > 0
        while pending is not None:
            if churning and self.queries_emitted:
                for marker in self._churn_wave(slots, rng,
                                               pending.arrival_time):
                    yield marker
            remaining = spec.churn_period if churning else None
            while pending is not None and (remaining is None or remaining > 0):
                cap = (self._chunk if remaining is None
                       else min(self._chunk, remaining))
                buffer = [pending]
                pending = None
                while len(buffer) < cap:
                    item = next(iterator, None)
                    if item is None:
                        break
                    buffer.append(item)
                draws = rng.choice(len(slots), size=len(buffer), p=weights)
                for query, slot in zip(buffer, draws):
                    yield replace(query, tenant_id=slots[int(slot)])
                self.queries_emitted += len(buffer)
                if remaining is not None:
                    remaining -= len(buffer)
                if remaining is None or remaining > 0:
                    pending = next(iterator, None)
            if pending is None:
                pending = next(iterator, None)

    # -- internals -------------------------------------------------------------

    def _slot_weights(self) -> np.ndarray:
        """Normalised Zipf weights over the population slots."""
        ranks = np.arange(1, self._spec.tenant_count + 1, dtype=float)
        raw = ranks ** (-self._spec.zipf_exponent)
        return raw / raw.sum()

    def _mint(self) -> str:
        """Mint the next tenant (profiles derive purely from the index)."""
        index = self.tenants_minted
        self.tenants_minted += 1
        if self._on_profile is not None:
            self._on_profile(self._source.profile_for(index))
        return tenant_id_for(index)

    def _churn_wave(self, slots: List[str], rng: np.random.Generator,
                    now_s: float) -> Iterator[TenantLifecycleMarker]:
        """Replace a fraction of the active tenants; yields the markers."""
        spec = self._spec
        count = max(1, int(round(spec.churn_fraction * len(slots))))
        chosen = rng.choice(len(slots), size=min(count, len(slots)),
                            replace=False)
        for slot in sorted(int(value) for value in chosen):
            leaving = slots[slot]
            arriving = self._mint()
            slots[slot] = arriving
            self.churn_events += 1
            # The arrival marker precedes the churn marker; at equal times
            # the kernel also dispatches arrivals first (priority 4 < 6).
            yield TenantLifecycleMarker(time_s=now_s, tenant_id=arriving,
                                        kind="arrival")
            yield TenantLifecycleMarker(time_s=now_s, tenant_id=leaving,
                                        kind="churn")


class TenantPopulation:
    """Assigns an N-tenant population to an existing query stream."""

    def __init__(self, spec: PopulationSpec = PopulationSpec()) -> None:
        self._spec = spec

    @property
    def spec(self) -> PopulationSpec:
        """The population specification."""
        return self._spec

    # -- generation ------------------------------------------------------------

    def stream(self, queries: Iterable[Query],
               source: Optional[GenerativeProfileSource] = None,
               on_profile: Optional[Callable] = None) -> PopulationStream:
        """The lazy population stream over ``queries`` (see above)."""
        return PopulationStream(self._spec, queries, source=source,
                                on_profile=on_profile)

    def populate(self, queries: Sequence[Query]) -> PopulatedWorkload:
        """Assign a tenant to every query and derive the lifecycle markers.

        Queries keep their ids, arrival times, and selectivities — only
        ``tenant_id`` changes — so the same workload replayed single-tenant
        and populated differs in nothing but who pays for each query.

        Implemented by draining :meth:`stream`, so the eager and streamed
        paths are identical by construction — the fidelity gate the
        bounded-memory execution mode rests on.

        Args:
            queries: the base workload, in arrival order.

        Returns:
            The populated workload (queries, tenant profiles, lifecycle).
        """
        profiles: List["TenantProfile"] = []
        populated: List[Query] = []
        lifecycle: List[TenantLifecycleMarker] = []
        for item in self.stream(queries, on_profile=profiles.append):
            if isinstance(item, TenantLifecycleMarker):
                lifecycle.append(item)
            else:
                populated.append(item)
        return PopulatedWorkload(
            queries=tuple(populated),
            profiles=tuple(profiles),
            lifecycle=tuple(lifecycle),
        )
