"""Per-template plan tables: the structural half of batched planning.

The plan set the enumerator produces for a query — plan kind x node count x
relevant index — is a function of the *template* alone: instances of one
template differ only in their predicate selectivities. A :class:`PlanTable`
materialises that structural set once per template, in the exact order
:meth:`~repro.planner.enumerator.PlanEnumerator.enumerate` emits plans,
together with everything the vectorized evaluator
(:mod:`repro.costmodel.vectorized`) needs to score a whole batch of
instances against it:

* a **proto plan** per row (the :class:`~repro.planner.plan.QueryPlan`
  built for the representative instance; per-instance plans are
  ``dataclasses.replace`` copies of it),
* the row's structures as indices into a deduplicated structure list, so
  per-query pricing touches each distinct structure once instead of once
  per plan,
* which rows are **constant** (their execution estimate is identical for
  every instance: column scans always, index rows whose index serves no
  predicate, never the back-end row) and, for instance-dependent index
  rows, which predicate *positions* the index prefix serves,
* the scalar cost-model coefficients of each row (probe bytes, multi-node
  overhead and speed-up factors) so the batched pass reproduces the scalar
  arithmetic expression for expression.

Tables are cached per template name by :class:`PlanTableCache` and stamped
with the enumerator's :attr:`~repro.planner.enumerator.PlanEnumerator.generation`;
bumping the generation (``enumerator.invalidate()``) after a catalog or
candidate-pool swap invalidates every cached table at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.costmodel.execution import ExecutionCostModel, ExecutionEstimate
from repro.costmodel.scaling import cpu_overhead_factor, speedup_factor
from repro.errors import PlanningError
from repro.planner.enumerator import PlanEnumerator
from repro.planner.plan import PlanKind, QueryPlan
from repro.structures.base import CacheStructure
from repro.workload.query import PredicateKind, Query


@dataclass(frozen=True)
class PlanRow:
    """One structural plan shape of a template.

    Attributes:
        plan: the proto :class:`QueryPlan`, built for the representative
            instance; batched execution replaces its ``query`` (and, for
            non-constant rows, its ``execution``) per instance.
        structure_indices: positions of the row's structures inside
            :attr:`PlanTable.unique_structures`, in plan-structure order.
        constant: whether the row's execution estimate is the same for
            every instance of the template.
        served_positions: for instance-dependent index rows, the predicate
            positions (into ``query.predicates``) the index prefix serves,
            in index-key order; empty otherwise.
        probe_bytes: bytes read probing the row's index (index rows only).
        cpu_overhead: multi-node coordination factor of the row's node count.
        speedup: multi-node speed-up factor at the template's parallel
            fraction.
    """

    plan: QueryPlan
    structure_indices: Tuple[int, ...]
    constant: bool
    served_positions: Tuple[int, ...] = ()
    probe_bytes: Optional[float] = None
    cpu_overhead: float = 1.0
    speedup: float = 1.0


@dataclass(frozen=True)
class PlanTable:
    """The materialised plan set of one template.

    Row order is exactly the enumerator's emission order, which downstream
    consumers (skyline, budget reference, negotiation) rely on for
    bit-for-bit parity with the scalar path.
    """

    template_name: str
    generation: int
    rows: Tuple[PlanRow, ...]
    unique_structures: Tuple[CacheStructure, ...]
    backend_row: Optional[int]
    backend_base: Optional[ExecutionEstimate]
    predicate_count: int
    full_scan_bytes: float
    fact_row_count: int
    projection_width_bytes: int
    aggregation_factor: float
    base_cost_factor: float

    @property
    def row_count(self) -> int:
        """Number of plan rows in the table."""
        return len(self.rows)


def _served_positions(query: Query, index) -> Tuple[int, ...]:
    """Predicate positions the index prefix serves, template-level.

    Mirrors :meth:`ExecutionCostModel._index_served_selectivity` exactly,
    including its dict semantics (a later predicate on the same column
    shadows an earlier one) — but returns *positions*, which are fixed for
    the template, instead of resolved selectivities, which are not.
    """
    if index.table_name != query.table_name:
        return ()
    position_by_column: Dict[str, int] = {}
    for position, predicate in enumerate(query.predicates):
        if predicate.table_name == query.table_name:
            position_by_column[predicate.column_name] = position
    served: List[int] = []
    for column_name in index.column_names:
        position = position_by_column.get(column_name)
        if position is None:
            break
        served.append(position)
        if query.predicates[position].kind is PredicateKind.RANGE:
            break
    return tuple(served)


def build_plan_table(query: Query, enumerator: PlanEnumerator,
                     execution_model: ExecutionCostModel) -> PlanTable:
    """Materialise the plan table of ``query``'s template.

    ``query`` acts as the representative instance: structural facts (plan
    set, structures, served prefixes) are template properties, and the
    constant rows' execution estimates are taken verbatim from the scalar
    cost model's run over this instance.
    """
    plans = enumerator.enumerate(query)
    if not plans:
        raise PlanningError(
            f"no plans enumerated for template {query.template_name!r}"
        )
    estimator = execution_model.estimator
    config = execution_model.config
    schema = estimator.schema

    index_by_key: Dict[str, int] = {}
    unique_structures: List[CacheStructure] = []
    rows: List[PlanRow] = []
    backend_row: Optional[int] = None
    backend_base: Optional[ExecutionEstimate] = None

    for position, plan in enumerate(plans):
        indices: List[int] = []
        for structure in plan.structures:
            slot = index_by_key.get(structure.key)
            if slot is None:
                slot = len(unique_structures)
                index_by_key[structure.key] = slot
                unique_structures.append(structure)
            indices.append(slot)

        served: Tuple[int, ...] = ()
        probe_bytes: Optional[float] = None
        if plan.kind is PlanKind.BACKEND:
            backend_row = position
            # The constant cache leg of Eq. 9; the transfer leg depends on
            # the instance selectivities and is evaluated per batch.
            backend_base = execution_model.cache_execution(
                query, index=None, node_count=1
            )
            constant = False
        elif plan.kind is PlanKind.CACHE_INDEX:
            served = _served_positions(query, plan.index)
            constant = not served
            if served:
                probe_bytes = config.index_probe_fraction * plan.index.size_bytes(
                    schema
                )
        else:
            constant = True

        rows.append(PlanRow(
            plan=plan,
            structure_indices=tuple(indices),
            constant=constant,
            served_positions=served,
            probe_bytes=probe_bytes,
            cpu_overhead=cpu_overhead_factor(plan.node_count),
            speedup=speedup_factor(plan.node_count, query.parallel_fraction),
        ))

    fact_table = schema.table(query.table_name)
    projection_width = sum(
        fact_table.column(name).width_bytes for name in query.projection_columns
    )
    return PlanTable(
        template_name=query.template_name,
        generation=enumerator.generation,
        rows=tuple(rows),
        unique_structures=tuple(unique_structures),
        backend_row=backend_row,
        backend_base=backend_base,
        predicate_count=len(query.predicates),
        full_scan_bytes=float(query.scanned_bytes(estimator)),
        fact_row_count=fact_table.row_count,
        projection_width_bytes=projection_width,
        aggregation_factor=query.aggregation_factor,
        base_cost_factor=query.base_cost_factor,
    )


class PlanTableCache:
    """Per-template plan tables, invalidated by the enumerator generation.

    One cache instance can outlive many batches (and, in the partitioned
    runner, many epochs): a cached table is reused as long as the owning
    enumerator's generation has not moved, and transparently rebuilt the
    first time a template is requested after ``enumerator.invalidate()``.
    """

    def __init__(self) -> None:
        self._tables: Dict[str, PlanTable] = {}

    def __len__(self) -> int:
        return len(self._tables)

    def table_for(self, query: Query, enumerator: PlanEnumerator,
                  execution_model: ExecutionCostModel) -> PlanTable:
        """The (possibly cached) plan table of ``query``'s template."""
        generation = enumerator.generation
        table = self._tables.get(query.template_name)
        if table is None or table.generation != generation:
            table = build_plan_table(query, enumerator, execution_model)
            self._tables[query.template_name] = table
        return table

    def clear(self) -> None:
        """Drop every cached table."""
        self._tables.clear()
