"""Paper-level simulation constants.

These defaults mirror the experimental setup of Section VII-A of the paper:

* the CPU nodes are never overloaded (``lcpu = 1``),
* the CPU is fully utilised during data transfer (``fn = 1``),
* there is no network latency (``l = 0``),
* the cache/back-end throughput is 25 Mbps (the maximum SDSS inter-node
  throughput reported by Wang et al.),
* SDSS response times are emulated with ``fcpu = 0.014``,
* query execution scales following the prototypical SDSS query: a 2x
  speed-up costs 25 % extra CPU when run on 3 nodes in parallel,
* 65 candidate indexes come from the index advisor,
* the bypass-yield baseline uses a cache of 30 % of the database size,
* the back-end database holds 2.5 TB of data.

Everything here can be overridden through the configuration objects of the
individual subsystems; the constants are only the paper defaults.
"""

from __future__ import annotations

#: Bytes per kilobyte/megabyte/gigabyte/terabyte (binary prefixes are *not*
#: used: the paper and the 2009 cloud price lists quote decimal units).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

#: Seconds per minute/hour/month, used to convert hourly and monthly prices
#: into per-second rates for the simulator.
SECONDS_PER_MINUTE = 60.0
SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0
SECONDS_PER_MONTH = 30.0 * SECONDS_PER_DAY

#: Total size of the simulated back-end database (Section VII-A: 2.5 TB).
BACKEND_DATABASE_BYTES = int(2.5 * TB)

#: CPU overload factor ``lcpu`` (Eq. 8). The paper assumes nodes are never
#: overloaded.
DEFAULT_CPU_LOAD_FACTOR = 1.0

#: Conversion factor ``fcpu`` from optimizer cost units to seconds of CPU
#: time (Section VII-A emulates SDSS response times with 0.014).
DEFAULT_CPU_COST_FACTOR = 0.014

#: Conversion factor ``fio`` from optimizer I/O units to actual I/O
#: operations. The paper does not publish a value; 1.0 keeps the optimizer's
#: logical-read count as the billed I/O count.
DEFAULT_IO_COST_FACTOR = 1.0

#: Fraction of a CPU consumed while managing a network transfer, ``fn``
#: (Eqs. 9 and 12). Section VII-A sets it to 1: the CPU is fully busy.
DEFAULT_NETWORK_CPU_FRACTION = 1.0

#: Network latency ``l`` in seconds between cache and back-end database.
DEFAULT_NETWORK_LATENCY_S = 0.0

#: Network throughput ``t`` between cache and back-end database, in bytes
#: per second (25 Mbps, Section VII-A).
DEFAULT_NETWORK_THROUGHPUT_BPS = 25 * MB / 8.0

#: Time needed to boot a new CPU node, ``b`` in Eq. 10 (seconds). Amazon EC2
#: instances in 2009 took on the order of a minute or two to boot.
DEFAULT_NODE_BOOT_TIME_S = 90.0

#: Multi-node scaling law of the prototypical SDSS query (Section VII-A):
#: running on ``SCALING_REFERENCE_NODES`` nodes yields a speed-up of
#: ``SCALING_REFERENCE_SPEEDUP`` at ``SCALING_REFERENCE_OVERHEAD`` extra CPU.
SCALING_REFERENCE_NODES = 3
SCALING_REFERENCE_SPEEDUP = 2.0
SCALING_REFERENCE_OVERHEAD = 0.25

#: Number of candidate indexes produced by the index advisor (Section VII-A
#: imports 65 recommendations from DB2's "recommend indexes" mode).
DEFAULT_CANDIDATE_INDEX_COUNT = 65

#: Cache budget of the bypass-yield (net-only) baseline, as a fraction of the
#: total database size (Section VII-A: the ideal size of 30 %).
BYPASS_CACHE_FRACTION = 0.30

#: Default regret-threshold fraction ``a`` of Eq. 3. The paper requires
#: ``0 < a < 1`` but does not publish the experimental value; 0.1 lets the
#: economy react within a few tens of queries while still demanding that a
#: structure's accumulated regret be a visible share of the credit.
DEFAULT_REGRET_FRACTION = 0.01

#: Default amortisation horizon ``n`` of Eq. 7 (queries over which the build
#: cost of a new structure is spread). Choosing ``n`` is explicitly left open
#: by the paper; hot structures in an SDSS-like, million-query workload serve
#: many thousands of queries, so the default spreads the build cost widely.
DEFAULT_AMORTIZATION_QUERIES = 5000

#: Default working capital of the cloud provider. The paper measures an
#: already-operating cloud; seeding the account lets short simulations make
#: the investments a long-running deployment would have made.
DEFAULT_INITIAL_CREDIT = 200.0

#: Inter-arrival times (seconds) evaluated by Figures 4 and 5.
PAPER_INTERARRIVAL_TIMES_S = (1.0, 10.0, 30.0, 60.0)

#: Number of queries in the paper's workload (a million SDSS-like queries).
PAPER_WORKLOAD_QUERY_COUNT = 1_000_000

#: Number of TPC-H query templates used by the workload of Section VII-A.
PAPER_TEMPLATE_COUNT = 7
