"""Unit tests for structure build and maintenance costs (Eqs. 10-15)."""

import pytest

from repro.costmodel.config import CostModelConfig
from repro.errors import ConfigurationError
from repro.structures.cached_column import CachedColumn
from repro.structures.cached_index import CachedIndex
from repro.structures.cpu_node import CpuNode


class TestNodeCosts:
    def test_eq10_build_cost_is_boot_time_times_rate(self, structure_costs):
        config = structure_costs.config
        expected = config.node_boot_time_s * config.pricing.cpu_node_per_second
        assert structure_costs.build_cost(CpuNode(1)) == pytest.approx(expected)

    def test_eq11_maintenance_is_constant_uptime_rate(self, structure_costs):
        config = structure_costs.config
        rate = structure_costs.maintenance_rate(CpuNode(1))
        assert rate == pytest.approx(config.node_uptime_rate_per_second)

    def test_build_time_is_boot_time(self, structure_costs):
        assert structure_costs.build_time_s(CpuNode(1)) == pytest.approx(
            structure_costs.config.node_boot_time_s
        )


class TestColumnCosts:
    def test_eq12_build_cost_is_the_transfer_cost(self, structure_costs, execution_model, schema):
        column = CachedColumn("lineitem", "l_shipdate")
        expected = execution_model.transfer(column.size_bytes(schema)).dollars
        assert structure_costs.build_cost(column) == pytest.approx(expected)

    def test_eq13_maintenance_scales_with_size(self, structure_costs, schema):
        small = CachedColumn("lineitem", "l_returnflag")   # 1 byte per row
        large = CachedColumn("lineitem", "l_extendedprice")  # 8 bytes per row
        assert structure_costs.maintenance_rate(large) == pytest.approx(
            8 * structure_costs.maintenance_rate(small), rel=0.01
        )

    def test_build_time_follows_throughput(self, structure_costs, schema):
        column = CachedColumn("lineitem", "l_shipdate")
        config = structure_costs.config
        expected = column.size_bytes(schema) / config.network_throughput_bps
        assert structure_costs.build_time_s(column) == pytest.approx(expected)

    def test_maintenance_cost_over_duration(self, structure_costs):
        column = CachedColumn("orders", "o_orderdate")
        rate = structure_costs.maintenance_rate(column)
        assert structure_costs.maintenance_cost(column, 3_600.0) == pytest.approx(rate * 3_600.0)

    def test_maintenance_cost_rejects_negative_duration(self, structure_costs):
        with pytest.raises(ConfigurationError):
            structure_costs.maintenance_cost(CachedColumn("orders", "o_orderdate"), -1.0)


class TestIndexCosts:
    def test_eq14_includes_missing_column_transfers(self, structure_costs):
        index = CachedIndex("lineitem", ("l_shipdate", "l_discount"))
        cold = structure_costs.build_cost(index, cached_columns=set())
        warm = structure_costs.build_cost(index, cached_columns={
            "column:lineitem.l_shipdate", "column:lineitem.l_discount",
        })
        assert cold > warm
        transfers = sum(
            structure_costs.build_cost(column) for column in index.required_columns()
        )
        assert cold == pytest.approx(warm + transfers)

    def test_sort_cost_is_positive(self, structure_costs):
        index = CachedIndex("lineitem", ("l_shipdate",))
        warm = structure_costs.build_cost(index, cached_columns={
            "column:lineitem.l_shipdate",
        })
        assert warm > 0

    def test_eq15_maintenance_scales_with_index_size(self, structure_costs, schema):
        narrow = CachedIndex("lineitem", ("l_returnflag",))
        wide = CachedIndex("lineitem", ("l_returnflag", "l_extendedprice"))
        assert structure_costs.maintenance_rate(wide) > structure_costs.maintenance_rate(narrow)
        expected = wide.size_bytes(schema) * structure_costs.config.storage_rate_per_byte_second
        assert structure_costs.maintenance_rate(wide) == pytest.approx(expected)

    def test_build_time_includes_sort_and_missing_transfers(self, structure_costs):
        index = CachedIndex("lineitem", ("l_shipdate",))
        cold = structure_costs.build_time_s(index, cached_columns=set())
        warm = structure_costs.build_time_s(index, cached_columns={
            "column:lineitem.l_shipdate",
        })
        assert cold > warm > 0


class TestUnknownStructures:
    def test_unknown_structure_type_rejected(self, structure_costs):
        class FakeStructure:
            key = "fake"

        with pytest.raises(ConfigurationError):
            structure_costs.build_cost(FakeStructure())  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            structure_costs.maintenance_rate(FakeStructure())  # type: ignore[arg-type]
        with pytest.raises(ConfigurationError):
            structure_costs.build_time_s(FakeStructure())  # type: ignore[arg-type]


class TestDurationScaling:
    def test_duration_scale_multiplies_maintenance_only(self, estimator):
        from repro.costmodel.execution import ExecutionCostModel
        from repro.costmodel.build import StructureCostModel

        base = StructureCostModel(ExecutionCostModel(CostModelConfig(), estimator))
        scaled = StructureCostModel(
            ExecutionCostModel(CostModelConfig(disk_duration_scale=20.0), estimator)
        )
        column = CachedColumn("lineitem", "l_shipdate")
        assert scaled.maintenance_rate(column) == pytest.approx(
            20.0 * base.maintenance_rate(column)
        )
        assert scaled.build_cost(column) == pytest.approx(base.build_cost(column))
