"""The partitioned economy engine: one partition's slice of the economy.

A :class:`PartitionedEconomyEngine` is an
:class:`~repro.economy.engine.EconomyEngine` whose cache is a
:class:`~repro.distcache.manager.PartitionedCacheManager` and whose
account is a per-partition provider **sub-account** (the caller seeds it
with ``initial_credit / partition_count``). Four behaviours change, each
a documented divergence from the global-cache economy
(``docs/distcache.md``):

1. **Remote-aware pricing.** A plan structure that is absent locally but
   advertised by the directory is *existing*, not *possible*: the plan
   needs no build, but each remote structure adds the
   :class:`RemoteAccessModel` surcharge to its execution cost, network
   traffic, and response time — a remote hit is not a local hit.
2. **Owned-only investment.** The engine only ever builds structures its
   partition owns; an index build may *read* remote or local columns but
   aborts if a required column is foreign-owned and not advertised
   (nobody here may materialise it).
3. **Owned-only regret with barrier forwarding.** Regret — the
   build-investment signal — lands on the local tracker only for
   structures this partition owns. Regret earned on *foreign-owned*
   missing structures is tallied separately and forwarded to the owning
   partition at the next settlement barrier (piggybacking on the
   directory exchange), so demand observed anywhere still reaches the
   one partition allowed to invest — with up to one epoch of lag.
4. **No cross-partition maintenance billing.** A remote access pays the
   surcharge to *this* partition's sub-account (it banked the user's
   payment and pays the transfer out of it); the owner's maintenance and
   amortisation are recovered by the owner's own traffic. A remote
   structure's idle clock therefore keeps running on its owner even while
   borrowers use it.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.costmodel.amortization import AmortizationPolicy
from repro.costmodel.build import StructureCostModel
from repro.economy.batch import BatchPricingContext
from repro.economy.engine import EconomyConfig, EconomyEngine, StructureBuild
from repro.economy.negotiation import NegotiationResult
from repro.economy.pricing import PricedPlan
from repro.economy.tenancy import TenantRegistry
from repro.distcache.manager import PartitionedCacheManager
from repro.errors import DistCacheError
from repro.planner.enumerator import PlanEnumerator
from repro.structures.base import CacheStructure
from repro.structures.cached_index import CachedIndex
from repro.workload.query import Query

_BYTES_PER_GB = 1024.0 ** 3


@dataclass(frozen=True)
class RemoteAccessModel:
    """The modeled cost of using a structure that lives on another partition.

    Each access to a remote structure ships a fraction of its bytes over
    the interconnect and pays a round trip; the model is deliberately
    simple — two per-GB rates and a flat RTT — because its role is to make
    remote hits *strictly worse than local hits and strictly better than
    rebuilding*, which is what shapes the partitioned economy.

    Attributes:
        transfer_fraction: fraction of the structure's bytes shipped per
            access. Probes and partial scans move far less than the full
            structure; the 1% default keeps a remote hit cheaper than the
            back-end for typical plans while still visibly worse than a
            local hit.
        dollars_per_gb: interconnect bandwidth price per GB shipped.
        seconds_per_gb: added response time per GB shipped.
        rtt_s: flat round-trip latency per remote structure access.

    Example:
        >>> model = RemoteAccessModel()
        >>> dollars, seconds, shipped = model.surcharge(1024 ** 3)
        >>> dollars > 0 and seconds > model.rtt_s and shipped > 0
        True
        >>> RemoteAccessModel().surcharge(0)[0]
        0.0
    """

    transfer_fraction: float = 0.01
    dollars_per_gb: float = 0.01
    seconds_per_gb: float = 0.08
    rtt_s: float = 0.002

    def __post_init__(self) -> None:
        if not 0.0 <= self.transfer_fraction <= 1.0:
            raise DistCacheError(
                f"transfer_fraction must be in [0, 1], got "
                f"{self.transfer_fraction}"
            )
        if min(self.dollars_per_gb, self.seconds_per_gb, self.rtt_s) < 0:
            raise DistCacheError("remote-access rates must be non-negative")

    def surcharge(self, size_bytes: int) -> "tuple[float, float, float]":
        """``(dollars, seconds, shipped_bytes)`` of one access to a
        remote structure of ``size_bytes``."""
        shipped = self.transfer_fraction * size_bytes
        gigabytes = shipped / _BYTES_PER_GB
        dollars = self.dollars_per_gb * gigabytes
        seconds = self.rtt_s + self.seconds_per_gb * gigabytes
        return dollars, seconds, shipped


class PartitionedEconomyEngine(EconomyEngine):
    """An :class:`EconomyEngine` scoped to one cache partition."""

    def __init__(self, enumerator: PlanEnumerator,
                 structure_costs: StructureCostModel,
                 cache: PartitionedCacheManager,
                 config: EconomyConfig = EconomyConfig(),
                 amortization: Optional[AmortizationPolicy] = None,
                 tenants: Optional[TenantRegistry] = None,
                 remote: RemoteAccessModel = RemoteAccessModel(),
                 record_placement_bids: bool = False) -> None:
        if not isinstance(cache, PartitionedCacheManager):
            raise DistCacheError(
                "PartitionedEconomyEngine requires a PartitionedCacheManager"
            )
        super().__init__(enumerator, structure_costs, cache=cache,
                         config=config, amortization=amortization,
                         tenants=tenants)
        self._remote = remote
        self._record_bids = record_placement_bids
        self._remote_hits = 0
        self._remote_structure_accesses = 0
        self._remote_bytes = 0.0
        self._remote_dollars = 0.0
        self._foreign_regret: Dict[str, Tuple[CacheStructure, float]] = {}
        self._forwarded_regret_received = 0.0
        self._placement_bids: Dict[str, float] = {}

    # -- introspection ---------------------------------------------------------

    @property
    def partition_index(self) -> int:
        """The partition this engine's cache owns."""
        return self.partitioned_cache.partition_index

    @property
    def partitioned_cache(self) -> PartitionedCacheManager:
        """The cache, typed as its partition-scoped subclass."""
        cache = self.cache
        assert isinstance(cache, PartitionedCacheManager)
        return cache

    @property
    def remote_model(self) -> RemoteAccessModel:
        """The remote-access cost model in force."""
        return self._remote

    @property
    def remote_hits(self) -> int:
        """Chosen plans that used at least one remote structure."""
        return self._remote_hits

    @property
    def remote_structure_accesses(self) -> int:
        """Total remote structure accesses by chosen plans."""
        return self._remote_structure_accesses

    @property
    def remote_bytes(self) -> float:
        """Modeled bytes shipped over the interconnect by chosen plans."""
        return self._remote_bytes

    @property
    def remote_dollars(self) -> float:
        """Modeled interconnect spend of the chosen plans' remote accesses."""
        return self._remote_dollars

    # -- remote-aware pricing --------------------------------------------------

    def _price_plans(self, query: Query, now: float) -> List[PricedPlan]:
        priced = super()._price_plans(query, now)
        if len(self.partitioned_cache.directory) == 0:
            return priced
        return [self._apply_remote(plan) for plan in priced]

    def _apply_remote(self, priced: PricedPlan) -> PricedPlan:
        """Re-price one plan with directory knowledge.

        Structures the base pricer classified as *new* (absent locally)
        but which the directory advertises on another partition become
        remote accesses: no build, no from-scratch amortisation — instead
        the surcharge is folded into the plan's execution estimate, so
        negotiation, charging, and regret all see the true remote price.
        """
        cache = self.partitioned_cache
        remote_entries = []
        local_new = []
        for structure in priced.new_structures:
            entry = cache.remote_entry(structure.key)
            if entry is None:
                local_new.append(structure)
            else:
                remote_entries.append((structure, entry))
        if not remote_entries:
            return priced

        dollars = seconds = shipped = 0.0
        for _, entry in remote_entries:
            access_dollars, access_seconds, access_bytes = \
                self._remote.surcharge(entry.size_bytes)
            dollars += access_dollars
            seconds += access_seconds
            shipped += access_bytes
        execution = priced.plan.execution
        execution = replace(
            execution,
            network_bytes=execution.network_bytes + shipped,
            network_dollars=execution.network_dollars + dollars,
            response_time_s=execution.response_time_s + seconds,
        )
        plan = replace(priced.plan, execution=execution)
        remote_keys = {structure.key for structure, _ in remote_entries}
        amortized_by_structure = {
            key: charge
            for key, charge in priced.amortized_by_structure.items()
            if key not in remote_keys
        }
        return PricedPlan(
            plan=plan,
            execution_dollars=plan.execution_dollars,
            amortized_dollars=sum(amortized_by_structure.values()),
            maintenance_dollars=priced.maintenance_dollars,
            new_structures=tuple(local_new),
            amortized_by_structure=amortized_by_structure,
        )

    def _adjust_batched_pricing(self, context: BatchPricingContext,
                                now: float) -> None:
        """Batched mirror of :meth:`_apply_remote`.

        Rewrites plan-table rows whose missing structures are advertised
        by the directory: the remote surcharge folds into the row's
        execution figures and response time, the remote structures drop
        out of the amortisation sum, and a row whose only missing
        structures are remote counts as existing — exactly the scalar
        re-pricing, expression for expression.
        """
        cache = self.partitioned_cache
        if len(cache.directory) == 0:
            return
        table = context.table
        surcharges: List[Optional[Tuple[float, float, float]]] = []
        any_remote = False
        for slot, structure in enumerate(table.unique_structures):
            if context.cached_flags[slot]:
                surcharges.append(None)
                continue
            entry = cache.remote_entry(structure.key)
            if entry is None:
                surcharges.append(None)
                continue
            surcharges.append(self._remote.surcharge(entry.size_bytes))
            any_remote = True
        if not any_remote:
            return
        context.remote_surcharges = surcharges

        estimates = context.estimates
        column = context.column
        charges = context.charges
        cached_flags = context.cached_flags
        for row_index, row in enumerate(table.rows):
            dollars = seconds = shipped = 0.0
            has_remote = False
            has_local_new = False
            amortized = 0.0
            for slot in row.structure_indices:
                if cached_flags[slot]:
                    amortized += charges[slot]
                    continue
                surcharge = surcharges[slot]
                if surcharge is None:
                    has_local_new = True
                    amortized += charges[slot]
                    continue
                access_dollars, access_seconds, access_bytes = surcharge
                dollars += access_dollars
                seconds += access_seconds
                shipped += access_bytes
                has_remote = True
            if not has_remote:
                continue
            cpu_dollars = estimates.value("cpu_dollars", row_index, column)
            io_dollars = estimates.value("io_dollars", row_index, column)
            network_dollars = estimates.value(
                "network_dollars", row_index, column
            )
            execution_dollars = (
                (cpu_dollars + io_dollars) + (network_dollars + dollars)
            )
            context.execution_dollars[row_index] = execution_dollars
            context.amortized[row_index] = amortized
            context.prices[row_index] = execution_dollars + amortized
            context.times[row_index] = context.times[row_index] + seconds
            context.existing[row_index] = not has_local_new

    # -- owned-only regret with barrier forwarding -----------------------------

    def _distribute_regret(self, query: Query,
                           result: NegotiationResult) -> None:
        """Record regret locally for owned structures, tally it for foreign.

        Remotely advertised structures earn no regret at all (they exist;
        nothing needs building). When every missing structure is locally
        owned — always the case with one partition — this is exactly the
        base engine's behaviour, call for call.
        """
        cache = self.partitioned_cache
        built_keys = cache.built_keys
        for plan, regret in result.regrets:
            missing = tuple(
                structure for structure in plan.plan.new_structures(built_keys)
                if cache.remote_entry(structure.key) is None
            )
            if not missing:
                continue
            owned = tuple(structure for structure in missing
                          if cache.owns(structure.key))
            if len(owned) == len(missing):
                self._regret.distribute(missing, regret,
                                        divide=self.config.divide_regret)
                if self.tenants is not None:
                    self.tenants.record_regret(
                        query.tenant_id, missing, regret,
                        divide=self.config.divide_regret)
                continue
            share = (regret / len(missing) if self.config.divide_regret
                     else regret)
            for structure in owned:
                self._regret.distribute((structure,), share)
            if self.tenants is not None:
                # The tenant's own mirror records the full regret where
                # the query ran (every partition holds the registry),
                # exactly like the base engine — only the provider-side
                # share of foreign structures travels at the barrier.
                self.tenants.record_regret(query.tenant_id, missing, regret,
                                           divide=self.config.divide_regret)
            for structure in missing:
                if cache.owns(structure.key):
                    continue
                previous = self._foreign_regret.get(structure.key)
                amount = (previous[1] if previous is not None else 0.0) + share
                self._foreign_regret[structure.key] = (structure, amount)

    def drain_foreign_regret(self
                             ) -> Tuple[Tuple[CacheStructure, float], ...]:
        """Hand over (and clear) regret owed to other partitions.

        Called by the runner at every settlement barrier; entries come
        back in first-touch order, which keeps the forwarding exchange
        deterministic.
        """
        items = tuple(self._foreign_regret.values())
        self._foreign_regret.clear()
        return items

    def absorb_forwarded_regret(
            self, items: Sequence[Tuple[CacheStructure, float]]) -> None:
        """Credit regret another partition observed for structures we own.

        The forwarded demand lands on the provider-side regret tracker
        only (the borrowing tenant's per-tenant mirror stays where the
        query ran); the next locally processed query evaluates the
        investment rule against it as usual.
        """
        cache = self.partitioned_cache
        for structure, amount in items:
            if not cache.owns(structure.key):
                raise DistCacheError(
                    f"regret for {structure.key!r} forwarded to partition "
                    f"{cache.partition_index}, which does not own it"
                )
            if cache.contains(structure.key):
                continue
            self._regret.distribute((structure,), amount)
            self._forwarded_regret_received += amount

    @property
    def forwarded_regret_received(self) -> float:
        """Total regret absorbed from other partitions so far."""
        return self._forwarded_regret_received

    # -- placement bids --------------------------------------------------------

    def drain_placement_bids(self) -> Tuple[Tuple[str, float], ...]:
        """Hand over (and clear) this epoch's per-structure benefit tally.

        Each chosen plan's structure accesses are valued through the
        remote-access model — a remote access at the surcharge it
        actually paid, a local access at the surcharge it avoided — so
        the adaptive :class:`~repro.distcache.placement.PlacementPolicy`
        compares challenger and incumbent in the same currency. Entries
        come back in first-touch order (deterministic: the query stream
        is replayed in a fixed order). Recording is pure observation and
        only happens when the engine was built with
        ``record_placement_bids=True`` (adaptive runs) — hash-placement
        runs never pay for, pickle, or drain the tally.
        """
        items = tuple(self._placement_bids.items())
        self._placement_bids.clear()
        return items

    def transfer_regret_to(self, other: "PartitionedEconomyEngine",
                           structure: CacheStructure) -> float:
        """Move a structure's in-flight regret to its new owner's tracker.

        Part of an ownership handoff: demand signal already accumulated
        here must follow the structure, or the new owner would rediscover
        it one epoch late. Returns the amount moved (usually 0.0 for a
        resident structure — building it reset the regret — but eviction
        races can leave a residue).
        """
        amount = self._regret.reset(structure.key)
        if amount > 0:
            other._regret.distribute((structure,), amount)
        return amount

    # -- owned-only investment -------------------------------------------------

    def _available_column_keys(self) -> Set[str]:
        """Local cached columns plus columns advertised by the directory.

        A build may read a remote column over the interconnect instead of
        re-extracting it from the back-end, so remote columns count as
        available for build-cost estimation and index construction.
        """
        available = super()._available_column_keys()
        available.update(self.partitioned_cache.remote_column_keys)
        return available

    def _build_structure(self, structure: CacheStructure, query_id: int,
                         now: float) -> List[StructureBuild]:
        cache = self.partitioned_cache
        if not cache.owns(structure.key):
            return []
        if isinstance(structure, CachedIndex):
            available = self._available_column_keys()
            for column in structure.required_columns():
                if column.key in available:
                    continue
                if not cache.owns(column.key):
                    # The column is foreign-owned and not advertised:
                    # neither buildable here nor readable remotely, so
                    # the index cannot be materialised on this partition.
                    return []
        return super()._build_structure(structure, query_id, now)

    # -- remote accounting -----------------------------------------------------

    def _settle_chosen_plan(self, query: Query, result: NegotiationResult,
                            now: float) -> float:
        recovered = super()._settle_chosen_plan(query, result, now)
        cache = self.partitioned_cache
        accesses = 0
        for structure in result.chosen.plan.structures:
            entry = cache.remote_entry(structure.key)
            if entry is None:
                # A locally resident structure defends its placement at
                # the surcharge this partition avoids by owning it. Only
                # adaptive runs pay for the tally — under hash placement
                # nothing ever drains it.
                if self._record_bids and cache.contains(structure.key):
                    size = cache.entry(structure.key).size_bytes
                    avoided, _, _ = self._remote.surcharge(size)
                    self._record_placement_bid(structure.key, avoided)
                continue
            accesses += 1
            dollars, _, shipped = self._remote.surcharge(entry.size_bytes)
            self._remote_dollars += dollars
            self._remote_bytes += shipped
            if self._record_bids:
                self._record_placement_bid(structure.key, dollars)
        if accesses:
            self._remote_hits += 1
            self._remote_structure_accesses += accesses
        return recovered

    def _record_placement_bid(self, key: str, dollars: float) -> None:
        """Tally one access's placement benefit (observation only)."""
        if dollars > 0:
            self._placement_bids[key] = (
                self._placement_bids.get(key, 0.0) + dollars)
