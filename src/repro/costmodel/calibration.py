"""Calibration of the ``f_cpu`` and ``f_io`` conversion factors.

Section V-B: "If these factors are stable, their values can be estimated by
running a fixed set of simple queries and plotting the actual CPU time and
logical disk reads." We implement exactly that: given observations pairing
the optimizer-reported units of a probe query with its measured CPU seconds
and I/O operations, fit the two factors by least squares through the origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CalibrationObservation:
    """One probe query: reported units versus measured resource usage."""

    reported_cost_units: float
    reported_io_units: float
    measured_cpu_seconds: float
    measured_io_operations: float

    def __post_init__(self) -> None:
        for name in ("reported_cost_units", "reported_io_units",
                     "measured_cpu_seconds", "measured_io_operations"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted conversion factors and their goodness of fit."""

    cpu_cost_factor: float
    io_cost_factor: float
    cpu_r_squared: float
    io_r_squared: float

    def describe(self) -> str:
        """One-line report of the fitted factors."""
        return (f"f_cpu={self.cpu_cost_factor:.5f} (R^2={self.cpu_r_squared:.3f}), "
                f"f_io={self.io_cost_factor:.5f} (R^2={self.io_r_squared:.3f})")


def calibrate_factors(
        observations: Sequence[CalibrationObservation]) -> CalibrationResult:
    """Fit ``f_cpu`` and ``f_io`` from probe-query observations.

    The model is ``measured_cpu = f_cpu * reported_cost`` and
    ``measured_io = f_io * reported_io`` (regression through the origin, as
    the paper's plotting procedure implies).
    """
    if len(observations) < 2:
        raise ConfigurationError(
            f"calibration needs at least 2 observations, got {len(observations)}"
        )
    cpu_factor, cpu_r2 = _fit_through_origin(
        [obs.reported_cost_units for obs in observations],
        [obs.measured_cpu_seconds for obs in observations],
    )
    io_factor, io_r2 = _fit_through_origin(
        [obs.reported_io_units for obs in observations],
        [obs.measured_io_operations for obs in observations],
    )
    return CalibrationResult(
        cpu_cost_factor=cpu_factor,
        io_cost_factor=io_factor,
        cpu_r_squared=cpu_r2,
        io_r_squared=io_r2,
    )


def _fit_through_origin(x_values: Sequence[float],
                        y_values: Sequence[float]) -> Tuple[float, float]:
    """Least-squares slope of ``y = slope * x`` plus the R^2 of the fit."""
    x = np.asarray(x_values, dtype=float)
    y = np.asarray(y_values, dtype=float)
    denominator = float(np.dot(x, x))
    if denominator == 0.0:
        raise ConfigurationError("calibration inputs are all zero")
    slope = float(np.dot(x, y) / denominator)
    residuals = y - slope * x
    total = float(np.dot(y - y.mean(), y - y.mean()))
    if total == 0.0:
        r_squared = 1.0
    else:
        r_squared = 1.0 - float(np.dot(residuals, residuals)) / total
    return slope, r_squared
