"""Figure 4: comparison of operating costs for the caching schemes.

The paper plots, for each query inter-arrival time (1, 10, 30, 60 seconds),
the operating cost in dollars of the four schemes. The driver reproduces the
same series: one row per inter-arrival time, one column per scheme.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.experiments.config import ExperimentProfile, PAPER_PROFILE
from repro.experiments.reporting import format_table
from repro.experiments.runner import ExperimentGrid, run_grid


def figure4_rows(grid: ExperimentGrid) -> List[List[object]]:
    """The Figure 4 series as table rows.

    Each row is ``[interarrival_s, cost(scheme_1), cost(scheme_2), ...]`` in
    the profile's scheme order.
    """
    rows: List[List[object]] = []
    for interval in grid.profile.interarrival_times_s:
        row: List[object] = [interval]
        for scheme in grid.profile.schemes:
            row.append(grid.metric(scheme, interval,
                                   lambda summary: summary.operating_cost))
        rows.append(row)
    return rows


def figure4_table(profile: Optional[ExperimentProfile] = None,
                  grid: Optional[ExperimentGrid] = None) -> str:
    """Render Figure 4 as a text table (runs the grid if needed)."""
    if grid is None:
        grid = run_grid(profile or PAPER_PROFILE)
    headers = ["interarrival_s"] + [f"{name} ($)" for name in grid.profile.schemes]
    return format_table(
        headers, figure4_rows(grid),
        title=(f"Figure 4 - operating cost in $ "
               f"({grid.profile.query_count} queries, profile {grid.profile.name!r})"),
    )


def main() -> None:
    """Command-line entry point: print the Figure 4 table."""
    print(figure4_table())


if __name__ == "__main__":
    main()
