"""SDSS-like evolving workload generator.

Section VI lists the workload properties the economy relies on: data access
locality (queries mostly target a specific part of the data), temporal
locality (similar queries arrive close in time), result-heaviness, and
parallelisability. Section VII-A then simulates "the query evolution of a
million SDSS-like queries" from 7 TPC-H templates.

The generator models this as a *phased* workload: time is divided into
phases, each phase concentrates its queries on a small set of currently-hot
templates (temporal locality) and on a narrow band of each template's
predicate domain (data locality). Phase changes make the hot set drift,
reproducing the "query evolution" that forces the cache to adapt — build new
structures, evict stale ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import WorkloadError
from repro.workload.arrival import ArrivalProcess, FixedInterarrival
from repro.workload.query import Query, QueryTemplate
from repro.workload.templates import paper_templates


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters of the evolving workload.

    Attributes:
        query_count: number of queries to generate.
        interarrival_s: mean query inter-arrival time in seconds (ignored
            when ``arrival_process`` is supplied).
        seed: RNG seed; two generators with equal specs produce equal
            workloads.
        hot_template_count: how many templates are "hot" in each phase
            (temporal locality: most queries come from the hot set).
        hot_template_probability: probability that a query is drawn from the
            hot set rather than uniformly from all templates.
        phase_length: number of queries after which the hot set and the hot
            data region drift (the workload "evolution").
        locality_width: width of the hot band of each range predicate's
            domain, as a fraction (data locality: smaller = more focused).
        selectivity_jitter: multiplicative jitter applied to template
            selectivities within the hot band, so repeated queries are
            similar but not identical.
        budget_scale_mean: mean of the per-query budget multiplier.
        budget_scale_sigma: lognormal sigma of the budget multiplier.
    """

    query_count: int = 2_000
    interarrival_s: float = 10.0
    seed: int = 0
    hot_template_count: int = 3
    hot_template_probability: float = 0.85
    phase_length: int = 400
    locality_width: float = 0.25
    selectivity_jitter: float = 0.2
    budget_scale_mean: float = 1.0
    budget_scale_sigma: float = 0.15

    def __post_init__(self) -> None:
        if self.query_count <= 0:
            raise WorkloadError("query_count must be positive")
        if self.interarrival_s <= 0:
            raise WorkloadError("interarrival_s must be positive")
        if self.hot_template_count <= 0:
            raise WorkloadError("hot_template_count must be positive")
        if not 0.0 <= self.hot_template_probability <= 1.0:
            raise WorkloadError("hot_template_probability must be in [0, 1]")
        if self.phase_length <= 0:
            raise WorkloadError("phase_length must be positive")
        if not 0.0 < self.locality_width <= 1.0:
            raise WorkloadError("locality_width must be in (0, 1]")
        if not 0.0 <= self.selectivity_jitter < 1.0:
            raise WorkloadError("selectivity_jitter must be in [0, 1)")
        if self.budget_scale_mean <= 0:
            raise WorkloadError("budget_scale_mean must be positive")
        if self.budget_scale_sigma < 0:
            raise WorkloadError("budget_scale_sigma must be non-negative")

    def with_interarrival(self, interarrival_s: float) -> "WorkloadSpec":
        """Copy of the spec with a different mean inter-arrival time."""
        return WorkloadSpec(
            query_count=self.query_count,
            interarrival_s=interarrival_s,
            seed=self.seed,
            hot_template_count=self.hot_template_count,
            hot_template_probability=self.hot_template_probability,
            phase_length=self.phase_length,
            locality_width=self.locality_width,
            selectivity_jitter=self.selectivity_jitter,
            budget_scale_mean=self.budget_scale_mean,
            budget_scale_sigma=self.budget_scale_sigma,
        )


@dataclass(frozen=True)
class ArrivalEnvelope:
    """The time extent of a workload, without the workload itself.

    The streamed execution path needs the quantities the eager path reads
    off the materialised query list — how many queries there are, when the
    first and last arrive — *before* any query exists, to place settlement
    horizons, shock onsets, and the trailing settlement. The envelope
    carries exactly those three numbers; because they come from the same
    :meth:`ArrivalProcess.arrival_times` floats the queries themselves are
    stamped with, every derived instant is bitwise the eager value.
    """

    query_count: int
    start_s: float
    last_s: float

    def __post_init__(self) -> None:
        if self.query_count <= 0:
            raise WorkloadError("query_count must be positive")
        if self.last_s < self.start_s:
            raise WorkloadError("last_s must not precede start_s")

    @property
    def span_s(self) -> float:
        """Seconds between the first and last arrival."""
        return self.last_s - self.start_s

    @property
    def trailing_interval_s(self) -> float:
        """The mean inter-arrival time (the trailing-settlement delay).

        Mirrors :func:`repro.simulator.simulation.trailing_interval_for`
        over a materialised list: span over ``count - 1`` gaps, 0 for a
        single query.
        """
        if self.query_count < 2:
            return 0.0
        return self.span_s / (self.query_count - 1)


class WorkloadGenerator:
    """Generates an evolving stream of :class:`~repro.workload.query.Query`."""

    def __init__(self, spec: WorkloadSpec = WorkloadSpec(),
                 templates: Optional[Sequence[QueryTemplate]] = None,
                 arrival_process: Optional[ArrivalProcess] = None) -> None:
        self._spec = spec
        self._templates: Tuple[QueryTemplate, ...] = tuple(
            templates if templates is not None else paper_templates()
        )
        if not self._templates:
            raise WorkloadError("at least one template is required")
        if spec.hot_template_count > len(self._templates):
            raise WorkloadError(
                f"hot_template_count={spec.hot_template_count} exceeds the "
                f"number of templates ({len(self._templates)})"
            )
        self._arrival_process = arrival_process or FixedInterarrival(
            spec.interarrival_s
        )

    @property
    def spec(self) -> WorkloadSpec:
        """The workload specification."""
        return self._spec

    @property
    def templates(self) -> Tuple[QueryTemplate, ...]:
        """The templates queries are drawn from."""
        return self._templates

    @property
    def arrival_process(self) -> ArrivalProcess:
        """The arrival process providing query arrival instants."""
        return self._arrival_process

    # -- generation ------------------------------------------------------------

    def generate(self, count: Optional[int] = None) -> List[Query]:
        """Generate the workload as a list (see :meth:`iter_queries`)."""
        return list(self.iter_queries(count))

    def arrival_envelope(self, count: Optional[int] = None) -> ArrivalEnvelope:
        """The workload's time extent, from the arrival process alone.

        Cheap relative to generation (no template/selectivity draws), and
        bitwise consistent with :meth:`iter_queries`: both read the same
        :meth:`ArrivalProcess.arrival_times` array.
        """
        total = self._spec.query_count if count is None else count
        if total <= 0:
            raise WorkloadError(f"count must be positive, got {total}")
        arrivals = self._arrival_process.arrival_times(total)
        return ArrivalEnvelope(query_count=total,
                               start_s=float(arrivals[0]),
                               last_s=float(arrivals[total - 1]))

    def iter_queries(self, count: Optional[int] = None) -> Iterator[Query]:
        """Yield queries in arrival order.

        Args:
            count: number of queries; defaults to ``spec.query_count``.
        """
        spec = self._spec
        total = spec.query_count if count is None else count
        if total < 0:
            raise WorkloadError(f"count must be non-negative, got {total}")
        rng = np.random.default_rng(spec.seed)
        arrivals = self._arrival_process.arrival_times(total)

        phase_index = -1
        hot_indices: List[int] = []
        hot_centers: Dict[str, float] = {}
        for query_index in range(total):
            current_phase = query_index // spec.phase_length
            if current_phase != phase_index:
                phase_index = current_phase
                hot_indices = self._draw_hot_templates(rng)
                hot_centers = self._draw_hot_centers(rng)
            template = self._pick_template(rng, hot_indices)
            selectivities = self._draw_selectivities(rng, template, hot_centers)
            budget_scale = self._draw_budget_scale(rng)
            yield template.instantiate(
                query_id=query_index,
                arrival_time=arrivals[query_index],
                selectivities=selectivities,
                budget_scale=budget_scale,
            )

    # -- internals -------------------------------------------------------------

    def _draw_hot_templates(self, rng: np.random.Generator) -> List[int]:
        """Pick which templates are hot for the next phase."""
        return list(
            rng.choice(len(self._templates), size=self._spec.hot_template_count,
                       replace=False)
        )

    def _draw_hot_centers(self, rng: np.random.Generator) -> Dict[str, float]:
        """Pick the center of the hot data band for each range predicate."""
        centers: Dict[str, float] = {}
        for template in self._templates:
            for predicate in template.predicates:
                centers.setdefault(predicate.qualified_column, float(rng.random()))
        return centers

    def _pick_template(self, rng: np.random.Generator,
                       hot_indices: List[int]) -> QueryTemplate:
        """Pick a template, favouring the hot set (temporal locality)."""
        if rng.random() < self._spec.hot_template_probability:
            index = int(rng.choice(hot_indices))
        else:
            index = int(rng.integers(len(self._templates)))
        return self._templates[index]

    def _draw_selectivities(self, rng: np.random.Generator,
                            template: QueryTemplate,
                            hot_centers: Dict[str, float]) -> Dict[str, float]:
        """Jitter template selectivities around the phase's hot band.

        Data locality is modelled by keeping the effective selectivity of each
        predicate close to the template's nominal value, scaled by where the
        hot band sits: the same band is hit repeatedly within a phase, so the
        same cached columns/indexes keep being useful.
        """
        spec = self._spec
        selectivities: Dict[str, float] = {}
        for predicate in template.predicates:
            if predicate.selectivity is None:
                continue
            center = hot_centers.get(predicate.qualified_column, 0.5)
            # The hot band narrows the nominal selectivity: a band of width w
            # centred at `center` keeps between (1-jitter) and (1+jitter) of
            # the template's nominal fraction, scaled by the band width.
            band_scale = spec.locality_width + (1.0 - spec.locality_width) * center
            jitter = 1.0 + spec.selectivity_jitter * (2.0 * rng.random() - 1.0)
            value = predicate.selectivity * band_scale * jitter
            selectivities[predicate.qualified_column] = float(
                min(1.0, max(1e-9, value))
            )
        return selectivities

    def _draw_budget_scale(self, rng: np.random.Generator) -> float:
        """Draw the per-query budget multiplier (lognormal around the mean)."""
        spec = self._spec
        if spec.budget_scale_sigma == 0:
            return spec.budget_scale_mean
        value = rng.lognormal(mean=np.log(spec.budget_scale_mean),
                              sigma=spec.budget_scale_sigma)
        return float(max(1e-6, value))
