"""Event-driven simulation of the cloud cache.

The simulator is a general event kernel: query arrivals, periodic
maintenance settlements, scheduled structure-failure checks and workload
phase changes are events dispatched to registered handlers along one
shared clock. The stock drivers replay a workload against one scheme
(:class:`CloudSimulation`) or several schemes sharing a clock
(:class:`MultiSchemeSimulation`), integrating the time-proportional
costs (disk storage and node uptime) between events and collecting the
metrics Figures 4 and 5 report: total operating cost and average
response time.
"""

from repro.simulator.clock import SimulationClock
from repro.simulator.events import (
    Event,
    EventQueue,
    MaintenanceSettlementEvent,
    QueryArrivalEvent,
    StructureFailureCheckEvent,
    WorkloadPhaseChangeEvent,
)
from repro.simulator.handlers import PeriodicRescheduler, SchemeTenant
from repro.simulator.kernel import SimulationKernel
from repro.simulator.metrics import MetricsCollector, MetricsSummary
from repro.simulator.results import SimulationResult
from repro.simulator.simulation import (
    CloudSimulation,
    MultiSchemeSimulation,
    SimulationConfig,
    run_scheme,
    trailing_interval_for,
)

__all__ = [
    "SimulationClock",
    "Event",
    "EventQueue",
    "MaintenanceSettlementEvent",
    "QueryArrivalEvent",
    "StructureFailureCheckEvent",
    "WorkloadPhaseChangeEvent",
    "PeriodicRescheduler",
    "SchemeTenant",
    "SimulationKernel",
    "MetricsCollector",
    "MetricsSummary",
    "SimulationResult",
    "CloudSimulation",
    "MultiSchemeSimulation",
    "SimulationConfig",
    "run_scheme",
    "trailing_interval_for",
]
