"""Unit tests for the cloud account."""

import pytest

from repro.economy.account import CloudAccount
from repro.errors import EconomyError, InsufficientCreditError


class TestCloudAccount:
    def test_starts_with_seed_capital(self):
        account = CloudAccount(initial_credit=50.0)
        assert account.credit == 50.0
        assert account.transactions[0].category == CloudAccount.CATEGORY_SEED

    def test_starts_empty_without_seed(self):
        account = CloudAccount()
        assert account.credit == 0.0
        assert account.transactions == ()

    def test_deposit_and_withdraw(self):
        account = CloudAccount()
        account.deposit(10.0, 1.0, CloudAccount.CATEGORY_QUERY_PAYMENT)
        account.withdraw(4.0, 2.0, CloudAccount.CATEGORY_BUILD)
        assert account.credit == pytest.approx(6.0)
        assert account.total_deposited() == pytest.approx(10.0)
        assert account.total_withdrawn() == pytest.approx(4.0)

    def test_overdraft_rejected_by_default(self):
        account = CloudAccount(initial_credit=1.0)
        with pytest.raises(InsufficientCreditError):
            account.withdraw(2.0, 0.0, CloudAccount.CATEGORY_BUILD)

    def test_overdraft_allowed_when_requested(self):
        account = CloudAccount(initial_credit=1.0, allow_negative=True)
        account.withdraw(2.0, 0.0, CloudAccount.CATEGORY_BUILD)
        assert account.credit == pytest.approx(-1.0)

    def test_can_afford(self):
        account = CloudAccount(initial_credit=5.0)
        assert account.can_afford(5.0)
        assert not account.can_afford(5.1)
        assert CloudAccount(allow_negative=True).can_afford(1e9)

    def test_negative_amounts_rejected(self):
        account = CloudAccount()
        with pytest.raises(EconomyError):
            account.deposit(-1.0, 0.0, "x")
        with pytest.raises(EconomyError):
            account.withdraw(-1.0, 0.0, "x")
        with pytest.raises(EconomyError):
            CloudAccount(initial_credit=-1.0)

    def test_totals_by_category(self):
        account = CloudAccount()
        account.deposit(10.0, 0.0, CloudAccount.CATEGORY_QUERY_PAYMENT)
        account.deposit(5.0, 1.0, CloudAccount.CATEGORY_QUERY_PAYMENT)
        account.withdraw(3.0, 2.0, CloudAccount.CATEGORY_BUILD)
        totals = account.totals_by_category()
        assert totals[CloudAccount.CATEGORY_QUERY_PAYMENT] == pytest.approx(15.0)
        assert totals[CloudAccount.CATEGORY_BUILD] == pytest.approx(-3.0)

    def test_ledger_preserves_order_and_notes(self):
        account = CloudAccount()
        account.deposit(1.0, 0.0, "a", note="first")
        account.deposit(2.0, 1.0, "b", note="second")
        assert [t.note for t in account.transactions] == ["first", "second"]
        assert [t.time_s for t in account.transactions] == [0.0, 1.0]

    def test_credit_never_lost_by_bookkeeping(self):
        account = CloudAccount(initial_credit=100.0)
        account.deposit(20.0, 0.0, "in")
        account.withdraw(30.0, 1.0, "out")
        deposits = account.total_deposited()
        withdrawals = account.total_withdrawn()
        assert account.credit == pytest.approx(deposits - withdrawals)
